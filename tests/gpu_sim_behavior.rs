//! Cross-crate behavioural checks of the simulated-GPU results: the
//! qualitative claims of the paper's §5.1/§5.2 must hold on the simulator.

use ecl_cc::{EclConfig, FiniKind, JumpKind};
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::catalog::{PaperGraph, Scale};

fn cycles(profile: &DeviceProfile, g: &ecl_graph::CsrGraph, cfg: &EclConfig) -> u64 {
    let mut gpu = Gpu::new(profile.clone());
    let (r, s) = ecl_cc::gpu::run(&mut gpu, g, cfg);
    r.verify(g).unwrap();
    s.total_cycles()
}

#[test]
fn jump3_slowest_on_high_diameter_graphs() {
    // Fig. 8: "no pointer jumping performs the worst", especially on road
    // maps and grids where paths grow long.
    let g = PaperGraph::EuropeOsm.generate(Scale::Tiny);
    let titan = DeviceProfile::titan_x();
    let j4 = cycles(&titan, &g, &EclConfig::with_jump(JumpKind::Intermediate));
    let j3 = cycles(&titan, &g, &EclConfig::with_jump(JumpKind::None));
    assert!(j3 > j4, "Jump3 {j3} must exceed Jump4 {j4} on europe_osm");
}

#[test]
fn jump1_two_traversals_slower_than_jump4() {
    let g = PaperGraph::Rmat16.generate(Scale::Tiny);
    let titan = DeviceProfile::titan_x();
    let j4 = cycles(&titan, &g, &EclConfig::with_jump(JumpKind::Intermediate));
    let j1 = cycles(&titan, &g, &EclConfig::with_jump(JumpKind::Multiple));
    assert!(j1 > j4, "Jump1 {j1} must exceed Jump4 {j4}");
}

#[test]
fn fini2_slower_than_fini3() {
    // Fig. 9: multiple-jump finalization pays a second traversal.
    let g = PaperGraph::Delaunay.generate(Scale::Tiny);
    let titan = DeviceProfile::titan_x();
    let f3 = cycles(&titan, &g, &EclConfig::with_fini(FiniKind::Single));
    let f2 = cycles(&titan, &g, &EclConfig::with_fini(FiniKind::Multiple));
    assert!(f2 > f3, "Fini2 {f2} must exceed Fini3 {f3}");
}

#[test]
fn k40_slower_than_titan_x() {
    // Tables 5 vs 6: "the newer, more parallel, and faster Titan X almost
    // always outperforms the K40" — in wall-clock (pseudo-ms), since the
    // K40 has fewer SMs, a slower clock, and slower atomics.
    let g = PaperGraph::Rmat16.generate(Scale::Tiny);
    let titan = DeviceProfile::titan_x();
    let k40 = DeviceProfile::k40();
    let t = titan.cycles_to_ms(cycles(&titan, &g, &EclConfig::default()));
    let k = k40.cycles_to_ms(cycles(&k40, &g, &EclConfig::default()));
    assert!(k > t, "K40 {k:.3} ms must exceed Titan X {t:.3} ms");
}

#[test]
fn ecl_beats_all_gpu_baselines_on_most_graphs() {
    // Fig. 11's headline: ECL-CC faster than Gunrock/IrGL/Soman on all
    // inputs and faster than Groute on most. At tiny scale we require:
    // ECL wins vs every baseline on a strict majority of graphs, and the
    // geomean favors ECL against each baseline.
    use ecl_bench::geomean;
    let titan = DeviceProfile::titan_x();
    let graphs: Vec<_> = [
        PaperGraph::Grid2d,
        PaperGraph::EuropeOsm,
        PaperGraph::Rmat16,
        PaperGraph::Random4,
        PaperGraph::Amazon,
        PaperGraph::Kron21,
    ]
    .iter()
    .map(|pg| pg.generate(Scale::Tiny))
    .collect();

    for (name, runner) in &ecl_bench::runners::GPU_CODES[1..] {
        let mut ratios = Vec::new();
        for g in &graphs {
            let ecl = ecl_bench::runners::run_gpu_code(
                ecl_bench::runners::GPU_CODES[0].1,
                &titan,
                g,
                ecl_gpu_sim::ExecMode::Serial,
            );
            let other =
                ecl_bench::runners::run_gpu_code(*runner, &titan, g, ecl_gpu_sim::ExecMode::Serial);
            ratios.push(other / ecl);
        }
        let gm = geomean(&ratios);
        assert!(
            gm > 1.0,
            "{name}: geomean ratio {gm:.2} should favor ECL-CC (ratios {ratios:?})"
        );
        let wins = ratios.iter().filter(|&&r| r > 1.0).count();
        assert!(
            wins * 2 > ratios.len(),
            "{name}: ECL-CC should win a majority, won {wins}/{}",
            ratios.len()
        );
    }
}

#[test]
fn breakdown_dominated_by_compute_phase() {
    // Fig. 10: "84.5% of the total runtime is spent in the computation
    // phase" — require a clear majority on the simulator.
    let g = PaperGraph::SocLivejournal.generate(Scale::Tiny);
    let mut gpu = Gpu::new(DeviceProfile::titan_x());
    let (r, s) = ecl_cc::gpu::run(&mut gpu, &g, &EclConfig::default());
    r.verify(&g).unwrap();
    let total = s.total_cycles() as f64;
    let compute: u64 = s
        .kernels
        .iter()
        .filter(|k| k.name.starts_with("compute"))
        .map(|k| k.cycles)
        .sum();
    assert!(
        compute as f64 / total > 0.5,
        "compute share {:.1}% too small",
        100.0 * compute as f64 / total
    );
}

#[test]
fn worklist_counts_match_degree_buckets() {
    for pg in [PaperGraph::Kron21, PaperGraph::Amazon, PaperGraph::Grid2d] {
        let g = pg.generate(Scale::Tiny);
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let cfg = EclConfig::default();
        let (_, s) = ecl_cc::gpu::run(&mut gpu, &g, &cfg);
        let expected_mid = g
            .vertices()
            .filter(|&v| g.degree(v) > cfg.warp_threshold && g.degree(v) <= cfg.block_threshold)
            .count();
        let expected_big = g
            .vertices()
            .filter(|&v| g.degree(v) > cfg.block_threshold)
            .count();
        assert_eq!(s.worklist_mid, expected_mid, "{pg:?} mid bucket");
        assert_eq!(s.worklist_big, expected_big, "{pg:?} big bucket");
    }
}
