//! Robustness acceptance tests: fault injection, the certifying checker,
//! kernel watchdogs, and the fallback ladder, working together.
//!
//! The claims pinned here:
//!
//! 1. ECL-CC converges to *certified-correct* labels under every seeded
//!    fault plan — spurious CAS failures, delayed memory, perturbed warp
//!    scheduling, and all three at once. The algorithm's lock-free retry
//!    loops are supposed to absorb exactly these hazards (§3's benign
//!    races); injection makes that claim testable instead of anecdotal.
//! 2. A deliberately broken kernel — hooking without Fig. 6's
//!    `vstat < ostat` guard — is caught by the independent certifying
//!    checker, not by the algorithm's own bookkeeping.
//! 3. An induced livelock is converted by the watchdog into a structured
//!    [`SimError::Watchdog`] instead of hanging the process, and the
//!    fallback ladder then degrades to a CPU backend whose answer is
//!    certified before being returned.

use ecl_cc::gpu::warp_ops::{warp_hook, warp_walk};
use ecl_cc::ladder::{self, Backend, LadderConfig};
use ecl_cc::{EclConfig, EclError};
use ecl_gpu_sim::{DeviceProfile, FaultPlan, Gpu, Lanes, Mask, SimError};
use ecl_graph::{generate, CsrGraph};

fn test_graphs() -> Vec<CsrGraph> {
    vec![
        generate::path(300),
        generate::disjoint_cliques(4, 12),
        generate::gnm_random(400, 1200, 7),
        generate::rmat(8, 8, generate::RmatParams::GALOIS, 11),
        generate::star(500), // exercises the block-granularity kernel
    ]
}

fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("cas-storm", FaultPlan::cas_storm(0xbadca5)),
        ("slow-memory", FaultPlan::slow_memory(0xde1a7)),
        ("scheduler-chaos", FaultPlan::scheduler_chaos(0x5c3d)),
        ("everything", FaultPlan::everything(0xa11)),
    ]
}

// ---------------------------------------------------------------------
// 1. Fault plans: correctness survives, only timing moves.
// ---------------------------------------------------------------------

#[test]
fn ecl_cc_certifies_under_every_fault_plan() {
    let cfg = EclConfig::default();
    for g in &test_graphs() {
        // Fault-free reference labels (already canonical min-IDs).
        let clean = ecl_cc::serial::run(g, &cfg);
        for (name, plan) in fault_plans() {
            let mut gpu = Gpu::new(DeviceProfile::test_tiny());
            gpu.set_fault_plan(plan);
            let (r, _) = ecl_cc::gpu::try_run(&mut gpu, g, &cfg)
                .unwrap_or_else(|e| panic!("plan {name}: {e}"));
            let cert = ecl_verify::certify_canonical(g, &r.labels)
                .unwrap_or_else(|e| panic!("plan {name} produced bad labels: {e}"));
            assert_eq!(cert.num_vertices, g.num_vertices());
            // Min-wins hooking is confluent: faults may reorder the merges
            // but cannot change the answer.
            assert_eq!(r.labels, clean.labels, "plan {name}");
        }
    }
}

#[test]
fn fault_plans_are_deterministic_per_seed() {
    let g = generate::gnm_random(300, 900, 3);
    let cfg = EclConfig::default();
    let run_with = |plan: FaultPlan| {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.set_fault_plan(plan);
        let (r, s) = ecl_cc::gpu::try_run(&mut gpu, &g, &cfg).unwrap();
        (r.labels, s.total_cycles())
    };
    let (l1, c1) = run_with(FaultPlan::everything(42));
    let (l2, c2) = run_with(FaultPlan::everything(42));
    assert_eq!(l1, l2);
    assert_eq!(c1, c2, "same seed must replay the same injected faults");
    let (_, c3) = run_with(FaultPlan::everything(43));
    // A different seed lands faults elsewhere; cycle counts move.
    assert_ne!(c1, c3, "different seeds should perturb timing");
}

#[test]
fn injected_memory_delays_cost_cycles() {
    let g = generate::gnm_random(400, 1600, 5);
    let cfg = EclConfig::default();
    let cycles = |plan: FaultPlan| {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.set_fault_plan(plan);
        let (_, s) = ecl_cc::gpu::try_run(&mut gpu, &g, &cfg).unwrap();
        s.total_cycles()
    };
    let clean = cycles(FaultPlan::none());
    let slowed = cycles(FaultPlan::slow_memory(7));
    assert!(
        slowed > clean,
        "delays must show up in timing: {slowed} vs {clean}"
    );
}

// ---------------------------------------------------------------------
// 2. The certifying checker catches a deliberately broken kernel.
// ---------------------------------------------------------------------

/// ECL-CC with the `vstat < ostat` guard removed from hooking: instead of
/// linking the larger representative under the smaller, it links the
/// *smaller under the larger*. Parent pointers then point upward, the
/// walk-based finalize (which only follows decreasing pointers) cannot
/// reach representatives, and components fall apart. The kernel
/// terminates and returns a plausible-looking label array — only the
/// checker can tell it is wrong.
fn broken_gpu_cc(g: &CsrGraph) -> Vec<u32> {
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    let n = g.num_vertices();
    let nu = n as u32;
    let nidx_host: Vec<u32> = g.offsets().iter().map(|&o| o as u32).collect();
    let nidx = gpu.alloc_from(&nidx_host);
    let nlist = gpu.alloc_from(g.adjacency());
    let parent = gpu.alloc_from(&(0..nu).collect::<Vec<u32>>());
    let total = gpu.suggested_threads(n.max(1));
    let stride = total as u32;

    gpu.launch_warps("broken_compute", total, |w| {
        let mut v = w.thread_ids();
        loop {
            let m = w.launch_mask() & v.lt_scalar(nu);
            if m.none() {
                return;
            }
            let beg = w.load(nidx, &v, m);
            let end = w.load(nidx, &v.add_scalar(1), m);
            let mut i = beg;
            let mut e = m & i.lt(&end);
            while e.any() {
                let u = w.load(nlist, &i, e);
                let proc = e & u.lt(&v);
                if proc.any() {
                    let u_rep = warp_walk(w, parent, &u, proc);
                    let v_rep = warp_walk(w, parent, &v, proc);
                    // THE BUG: swap the operands so the guard inside
                    // warp_hook picks the wrong direction — the smaller
                    // representative is hooked under the larger one.
                    let smaller = u_rep.zip(&v_rep, u32::min);
                    let larger = u_rep.zip(&v_rep, u32::max);
                    let differ = proc & smaller.ne_mask(&larger);
                    // An unguarded plain store, exactly what Fig. 6's CAS
                    // guard exists to forbid.
                    w.store(parent, &smaller, &larger, differ);
                }
                i = i.add_scalar(1);
                e &= i.lt(&end);
                w.alu(2);
            }
            v = v.add_scalar(stride);
            w.alu(1);
        }
    });

    gpu.launch_warps("broken_finalize", total, |w| {
        let mut v = w.thread_ids();
        loop {
            let m = w.launch_mask() & v.lt_scalar(nu);
            if m.none() {
                return;
            }
            let root = warp_walk(w, parent, &v, m);
            w.store(parent, &v, &root, m);
            v = v.add_scalar(stride);
            w.alu(1);
        }
    });

    gpu.download(parent)[..n].to_vec()
}

#[test]
fn certifier_catches_hook_without_guard() {
    // A connected graph: correct output is all-zero labels.
    let g = generate::gnm_random(200, 800, 13);
    assert_eq!(ecl_graph::stats::count_components(&g), 1);

    let labels = broken_gpu_cc(&g);
    let err = ecl_verify::certify(&g, &labels)
        .expect_err("checker must reject the unguarded-hook labeling");
    // The witness is concrete: an edge split or a dangling representative.
    let msg = err.to_string();
    assert!(!msg.is_empty());

    // Control: the real kernel on the same graph certifies.
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    let (r, _) = ecl_cc::gpu::try_run(&mut gpu, &g, &EclConfig::default()).unwrap();
    ecl_verify::certify_canonical(&g, &r.labels).unwrap();
}

#[test]
fn certifier_catches_unguarded_cas_direction() {
    // Same bug expressed through warp_hook itself with swapped reps: the
    // hook's internal guard re-derives the direction from its operands,
    // so to simulate the missing guard we bypass it with a raw CAS chain.
    let g = generate::path(64);
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    let n = g.num_vertices() as u32;
    let parent = gpu.alloc_from(&(0..n).collect::<Vec<u32>>());
    gpu.launch_warps("bad_hook", 64, |w| {
        let v = w.thread_ids();
        let m = w.launch_mask() & v.lt_scalar(n) & v.gt(&Lanes::splat(0));
        // Hook v-1 under v: upward links, no guard.
        let prev = v.map(|x| x.wrapping_sub(1));
        let _ = w.atomic_cas(parent, &prev, &prev, &v, m);
        w.alu(1);
    });
    let labels = gpu.download(parent)[..64].to_vec();
    assert!(
        ecl_verify::certify(&g, &labels).is_err(),
        "upward-linked parents must not certify"
    );
    // Sanity: warp_hook with the same operands does respect the guard.
    let mut gpu2 = Gpu::new(DeviceProfile::test_tiny());
    let parent2 = gpu2.alloc_from(&(0..n).collect::<Vec<u32>>());
    gpu2.launch_warps("good_hook", 64, |w| {
        let v = w.thread_ids();
        let m = w.launch_mask() & v.lt_scalar(n) & v.gt(&Lanes::splat(0));
        let prev = v.map(|x| x.wrapping_sub(1));
        let _ = warp_hook(w, parent2, &prev, &v, m);
    });
    let after = gpu2.download(parent2);
    assert!(after.iter().enumerate().all(|(i, &p)| p as usize <= i));
}

// ---------------------------------------------------------------------
// 3. Watchdog: livelock becomes a structured error; the ladder degrades.
// ---------------------------------------------------------------------

#[test]
fn watchdog_converts_livelock_into_structured_error() {
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    let flag = gpu.alloc(1);
    gpu.set_watchdog(Some(50_000));
    // Spin-wait on a flag nothing ever sets: a textbook livelock.
    let err = gpu
        .try_launch_warps("spin_forever", 32, |w| loop {
            let v = w.load(flag, &Lanes::splat(0), Mask(1));
            if v.get(0) != 0 {
                return;
            }
            w.alu(1);
        })
        .expect_err("watchdog must abort the spin");
    match err {
        SimError::Watchdog {
            kernel,
            budget,
            spent,
        } => {
            assert_eq!(kernel, "spin_forever");
            assert_eq!(budget, 50_000);
            assert!(spent > budget, "spent {spent} must exceed budget {budget}");
        }
        other => panic!("expected Watchdog, got {other}"),
    }
}

#[test]
fn watchdog_spares_healthy_runs() {
    let g = generate::gnm_random(300, 900, 17);
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    // Generous budget: a correct run fits comfortably.
    gpu.set_watchdog(Some(1_000_000_000));
    let (r, _) = ecl_cc::gpu::try_run(&mut gpu, &g, &EclConfig::default()).unwrap();
    ecl_verify::certify_canonical(&g, &r.labels).unwrap();
}

#[test]
fn oob_access_becomes_memory_fault() {
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    let buf = gpu.alloc(4);
    let err = gpu
        .try_launch_warps("oob", 32, |w| {
            let _ = w.load(buf, &Lanes::splat(100), Mask(1));
        })
        .expect_err("out-of-bounds read must be caught");
    assert!(matches!(err, SimError::MemoryFault { .. }), "got {err}");
}

#[test]
fn ladder_degrades_to_certified_cpu_answer_under_starved_watchdog() {
    // Budget too small for *any* GPU kernel: both GPU attempts trip the
    // watchdog, the ladder degrades to the multicore CPU backend, and the
    // returned component count is certified against BFS ground truth.
    let g = generate::disjoint_cliques(5, 20);
    let cfg = LadderConfig {
        watchdog: Some(10),
        ..LadderConfig::default()
    };
    let out = ladder::run_with_fallback(&g, &cfg).unwrap();
    assert_eq!(out.backend, Backend::ParallelCpu);
    assert_eq!(out.certificate.num_components, 5);
    assert_eq!(out.result.num_components(), 5);
    let gpu_failures = out
        .attempts
        .iter()
        .filter(|a| a.backend == Backend::GpuSim)
        .count();
    assert_eq!(gpu_failures, 2, "retry once, then degrade");
}

#[test]
fn oversized_graph_reports_structured_error() {
    // try_run refuses graphs that don't fit 32-bit device indices without
    // allocating anything. Build a fake CSR via from_parts_unchecked? Not
    // possible at u32::MAX scale — instead check the boundary arithmetic
    // through the public error type on a graph we *can* build.
    let g = generate::path(10);
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    // Healthy path: no error.
    assert!(ecl_cc::gpu::try_run(&mut gpu, &g, &EclConfig::default()).is_ok());
    // The error type is constructible and displays its numbers.
    let e = EclError::GraphTooLarge {
        vertices: u32::MAX as usize,
        directed_edges: 0,
    };
    assert!(e.to_string().contains("32-bit"));
}
