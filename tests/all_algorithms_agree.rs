//! Cross-crate agreement: every CC implementation in the workspace must
//! produce the reference partition on every corpus graph — the workspace
//! equivalent of the paper's §4 verification ("for all codes, we made
//! sure that the number of CCs is correct").

use ecl_integration::{all_algorithms, corpus};

#[test]
fn every_algorithm_matches_reference_on_every_graph() {
    for (gname, g) in corpus() {
        let reference = ecl_graph::stats::reference_labels(&g);
        let ref_canon = ecl_graph::stats::canonicalize_labels(&reference);
        for (aname, run) in all_algorithms() {
            let Some(result) = run(&g) else {
                continue; // documented refusal (CRONO memory model)
            };
            assert_eq!(
                result.labels.len(),
                g.num_vertices(),
                "{aname} on {gname}: label count"
            );
            let canon = ecl_graph::stats::canonicalize_labels(&result.labels);
            assert_eq!(canon, ref_canon, "{aname} on {gname}: wrong partition");
        }
    }
}

#[test]
fn component_counts_match_table2_column() {
    for (gname, g) in corpus() {
        let expected = ecl_graph::stats::count_components(&g);
        for (aname, run) in all_algorithms() {
            if let Some(result) = run(&g) {
                assert_eq!(
                    result.num_components(),
                    expected,
                    "{aname} on {gname}: component count"
                );
            }
        }
    }
}

#[test]
fn min_wins_implementations_agree_on_exact_labels() {
    // The union-find family all uses smaller-representative-wins hooking,
    // so their labels (not just partitions) are identical and equal to the
    // component-minimum labeling.
    let exact: &[&str] = &[
        "ecl-serial",
        "ecl-parallel",
        "ecl-gpu",
        "galois-async",
        "serial-dfs",
        "serial-bfs",
        "serial-igraph",
        "serial-uf",
    ];
    for (gname, g) in corpus() {
        let reference = ecl_graph::stats::reference_labels(&g);
        for (aname, run) in all_algorithms() {
            if !exact.contains(&aname) {
                continue;
            }
            let result = run(&g).unwrap();
            assert_eq!(result.labels, reference, "{aname} on {gname}");
        }
    }
}
