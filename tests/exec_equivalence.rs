//! The determinism contract between the simulator's two execution modes.
//!
//! * **Serial mode is the timing record**: cycles, cache statistics, and
//!   fault behaviour are bit-for-bit reproducible, and this file pins
//!   them to golden values captured from the original single-threaded
//!   implementation — any refactor of the simulator's internals must
//!   keep these numbers exactly.
//! * **Host-parallel mode is the throughput path**: thread interleaving
//!   makes cycle counts indicative only, but ECL-CC's min-wins hooking
//!   converges to the same canonical labeling under any schedule, so
//!   final labels must be *byte-identical* to serial mode for every
//!   worker count and fault plan — and certified by the independent
//!   checker on top.

use ecl_cc::EclConfig;
use ecl_gpu_sim::{DeviceProfile, ExecMode, FaultPlan, Gpu};
use ecl_graph::{generate, CsrGraph};

/// One golden per-kernel row:
/// (cycles, instructions, l1 hits, l2 reads, l2 writes, dram, atomics, warps).
type KernelRow = (u64, u64, u64, u64, u64, u64, u64, u64);

/// One golden serial run.
struct Golden {
    total_cycles: u64,
    l2_reads: u64,
    l2_writes: u64,
    components: usize,
    kernels: [KernelRow; 5],
}

fn check_golden(g: &CsrGraph, profile: DeviceProfile, fault: FaultPlan, want: &Golden) {
    // Every golden must hold with recording off AND on: the observability
    // recorder is observation-only, so attaching an enabled recorder must
    // not move a single cycle, cache access, or fault-RNG draw.
    for recorder in [None, Some(ecl_obs::Recorder::new())] {
        let tag = if recorder.is_some() {
            "recording"
        } else {
            "plain"
        };
        let mut gpu = Gpu::new(profile.clone());
        gpu.set_fault_plan(fault);
        gpu.set_recorder(recorder);
        let (r, s) = ecl_cc::gpu::run(&mut gpu, g, &EclConfig::default());
        assert_eq!(s.total_cycles(), want.total_cycles, "{tag}: total_cycles");
        assert_eq!(s.l2_reads(), want.l2_reads, "{tag}: l2_reads");
        assert_eq!(s.l2_writes(), want.l2_writes, "{tag}: l2_writes");
        assert_eq!(r.num_components(), want.components, "{tag}: components");
        assert_eq!(s.kernels.len(), want.kernels.len());
        for (k, w) in s.kernels.iter().zip(&want.kernels) {
            let got = (
                k.cycles,
                k.instructions,
                k.l1_hit_transactions,
                k.l2_read_accesses,
                k.l2_write_accesses,
                k.dram_transactions,
                k.atomics,
                k.warps,
            );
            assert_eq!(got, *w, "{tag}: kernel {}", k.name);
        }
    }
}

#[test]
fn serial_cycles_pinned_gnm_titan() {
    check_golden(
        &generate::gnm_random(2000, 6000, 42),
        DeviceProfile::titan_x(),
        FaultPlan::none(),
        &Golden {
            total_cycles: 58350,
            l2_reads: 3260,
            l2_writes: 343,
            components: 5,
            kernels: [
                (24996, 1152, 1634, 1950, 0, 1933, 0, 64),
                (20938, 5740, 18818, 1310, 343, 68, 343, 64),
                (4000, 0, 0, 0, 0, 0, 0, 64),
                (4000, 0, 0, 0, 0, 0, 0, 0),
                (4416, 546, 717, 0, 0, 0, 0, 64),
            ],
        },
    );
}

#[test]
fn serial_cycles_pinned_star_tiny() {
    check_golden(
        &generate::star(1000),
        DeviceProfile::test_tiny(),
        FaultPlan::none(),
        &Golden {
            total_cycles: 56270,
            l2_reads: 1370,
            l2_writes: 268,
            components: 1,
            kernels: [
                (28662, 3218, 1006, 588, 145, 505, 0, 16),
                (14920, 354, 184, 476, 14, 375, 1, 16),
                (100, 0, 0, 0, 0, 0, 0, 16),
                (9512, 101, 2, 159, 0, 127, 0, 2),
                (3076, 256, 198, 147, 109, 37, 0, 16),
            ],
        },
    );
}

#[test]
fn serial_cycles_pinned_rmat_k40() {
    check_golden(
        &generate::rmat(10, 8, generate::RmatParams::GALOIS, 7),
        DeviceProfile::k40(),
        FaultPlan::none(),
        &Golden {
            total_cycles: 102483,
            l2_reads: 3391,
            l2_writes: 353,
            components: 6,
            kernels: [
                (31107, 491, 319, 1197, 0, 1188, 0, 32),
                (31495, 3510, 10648, 785, 353, 236, 353, 32),
                (31384, 4009, 5091, 1409, 0, 770, 0, 32),
                (4000, 0, 0, 0, 0, 0, 0, 0),
                (4497, 259, 354, 0, 0, 0, 0, 32),
            ],
        },
    );
}

/// Fault injection exercises the RNG draw order, warp shuffling, and
/// spurious-CAS paths — the parts of the refactor most likely to disturb
/// serial reproducibility. The totals and the SM load-balance metric are
/// pinned from the pre-refactor implementation.
#[test]
fn serial_fault_run_pinned() {
    let g = generate::gnm_random(2000, 6000, 42);
    // The fault-RNG draw sequence is the part of the timing record most
    // easily perturbed by a stray observation, so this golden also runs
    // with an enabled recorder attached.
    for recorder in [None, Some(ecl_obs::Recorder::new())] {
        let mut gpu = Gpu::new(DeviceProfile::titan_x());
        gpu.set_fault_plan(FaultPlan::everything(0xfa11));
        gpu.set_recorder(recorder);
        let (r, s) = ecl_cc::gpu::run(&mut gpu, &g, &EclConfig::default());
        assert_eq!(s.total_cycles(), 158142);
        assert_eq!(s.l2_reads(), 3293);
        assert_eq!(s.l2_writes(), 376);
        assert_eq!(r.num_components(), 5);
        let cycles: Vec<u64> = s.kernels.iter().map(|k| k.cycles).collect();
        assert_eq!(cycles, [44418, 98932, 4000, 4000, 6792]);
        assert_eq!(s.kernels[1].atomics, 376);
        assert!((gpu.sm_balance() - 0.262795).abs() < 1e-6);
    }
}

/// The certified-equivalence contract: across worker counts and fault
/// plans, host-parallel labels are byte-identical to serial labels, and
/// both certify. (A property test in spirit: the worker counts cover
/// degenerate (1), divisor, non-divisor, and oversubscribed (8 > SMs)
/// schedules; the fault plans cover none, CAS-heavy, and everything.)
#[test]
fn parallel_labels_byte_identical_to_serial() {
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("gnm", generate::gnm_random(1500, 4000, 11)),
        ("star", generate::star(900)),
        ("cliques", generate::disjoint_cliques(5, 50)),
        (
            "rmat",
            generate::rmat(9, 7, generate::RmatParams::GALOIS, 3),
        ),
    ];
    let plans = [
        ("none", FaultPlan::none()),
        ("cas-storm", FaultPlan::cas_storm(0xc0de)),
        ("everything", FaultPlan::everything(0xfa11)),
    ];
    for (gname, g) in &graphs {
        for (pname, plan) in &plans {
            let mut serial_gpu = Gpu::new(DeviceProfile::test_tiny());
            serial_gpu.set_fault_plan(*plan);
            let (serial, _) = ecl_cc::gpu::run(&mut serial_gpu, g, &EclConfig::default());
            let cert = ecl_verify::certify(g, &serial.labels)
                .unwrap_or_else(|e| panic!("{gname}/{pname}: serial labels: {e}"));

            for workers in [1usize, 2, 3, 8] {
                let mut gpu = Gpu::new(DeviceProfile::test_tiny());
                gpu.set_fault_plan(*plan);
                gpu.set_exec_mode(ExecMode::HostParallel(workers));
                let (par, _) = ecl_cc::gpu::run(&mut gpu, g, &EclConfig::default());
                assert_eq!(
                    par.labels, serial.labels,
                    "{gname}/{pname}/workers={workers}: labels diverged"
                );
                let par_cert = ecl_verify::certify(g, &par.labels)
                    .unwrap_or_else(|e| panic!("{gname}/{pname}/{workers}: {e}"));
                assert_eq!(par_cert.num_components, cert.num_components);
            }
        }
    }
}

/// Per-level cache statistics are part of the serial timing record: the
/// L1 and L2 `CacheStats` of the three golden configs are pinned to the
/// values captured from the original implementation. These are the
/// numbers the paper's Table 3 is regenerated from, so a cache refactor
/// that preserves cycle totals but shifts hit/miss classification still
/// fails here.
#[test]
fn serial_cache_stats_pinned_per_level() {
    // (read_accesses, write_accesses, read_hits, write_hits, writebacks)
    type Row = (u64, u64, u64, u64, u64);
    let project = |s: ecl_gpu_sim::CacheStats| -> Row {
        (
            s.read_accesses,
            s.write_accesses,
            s.read_hits,
            s.write_hits,
            s.writebacks,
        )
    };
    let cases: [(&str, CsrGraph, DeviceProfile, Row, Row); 3] = [
        (
            "gnm/titan",
            generate::gnm_random(2000, 6000, 42),
            DeviceProfile::titan_x(),
            (22596, 1490, 19937, 1232, 0),
            (3260, 343, 1259, 343, 0),
        ),
        (
            "star/tiny",
            generate::star(1000),
            DeviceProfile::test_tiny(),
            (2445, 314, 1234, 156, 267),
            (1370, 268, 326, 268, 65),
        ),
        (
            "rmat/k40",
            generate::rmat(10, 8, generate::RmatParams::GALOIS, 7),
            DeviceProfile::k40(),
            (18633, 817, 15775, 637, 0),
            (3391, 353, 1197, 353, 0),
        ),
    ];
    for (name, g, profile, l1_want, l2_want) in cases {
        // Cache goldens, like cycle goldens, must hold with recording on.
        for recorder in [None, Some(ecl_obs::Recorder::new())] {
            let tag = if recorder.is_some() {
                "recording"
            } else {
                "plain"
            };
            let mut gpu = Gpu::new(profile.clone());
            gpu.set_recorder(recorder);
            let _ = ecl_cc::gpu::run(&mut gpu, &g, &EclConfig::default());
            assert_eq!(project(gpu.l1_stats()), l1_want, "{name}/{tag}: L1 stats");
            assert_eq!(project(gpu.l2_stats()), l2_want, "{name}/{tag}: L2 stats");
        }
    }
}

/// Host-parallel cache statistics must be a pure function of the kernel,
/// not of the worker count or the thread schedule, for any kernel whose
/// memory traffic does not race across SMs: each SM's private L1 and L2
/// slice see exactly that SM's fixed work list. The kernel here reads a
/// shared buffer and writes disjoint per-thread cells — data-independent
/// by construction, so this pin holds on any host core count. L1 traffic
/// is also mode-independent (per-SM work lists are identical in serial
/// mode), so parallel L1 stats must equal serial L1 stats exactly.
#[test]
fn parallel_cache_stats_deterministic_across_workers() {
    const N: usize = 4096;
    let run_one = |mode: ExecMode| -> (ecl_gpu_sim::CacheStats, ecl_gpu_sim::CacheStats) {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.set_exec_mode(mode);
        let src = gpu.alloc_from(&(0..N as u32).collect::<Vec<u32>>());
        let dst = gpu.alloc(N);
        gpu.try_launch_warps_sync("scale", N, |w| {
            let ids = w.thread_ids();
            let m = w.launch_mask();
            let vals = w.load(src, &ids, m);
            w.store(dst, &ids, &vals.map(|x| x.wrapping_mul(3)), m);
        })
        .expect("clean launch");
        (gpu.l1_stats(), gpu.l2_stats())
    };

    let (serial_l1, _) = run_one(ExecMode::Serial);
    let (ref_l1, ref_l2) = run_one(ExecMode::HostParallel(1));
    assert_eq!(ref_l1, serial_l1, "parallel L1 stats diverged from serial");
    for workers in [2usize, 3, 8] {
        let (l1, l2) = run_one(ExecMode::HostParallel(workers));
        assert_eq!(l1, ref_l1, "workers={workers}: L1 stats not deterministic");
        assert_eq!(l2, ref_l2, "workers={workers}: L2 stats not deterministic");
    }
}

/// Serial stats after a host-parallel run must not depend on how the
/// parallel run's threads happened to interleave: per-SM L1 content is a
/// function of that SM's own (deterministic) work list, and switching
/// modes rebuilds the shared L2 cold. Two devices with identical
/// histories must therefore agree exactly, run after run.
#[test]
fn mode_switch_does_not_perturb_serial_stats() {
    let g = generate::gnm_random(800, 2400, 5);
    let cfg = EclConfig::default();

    let project = |s: &ecl_cc::gpu::GpuRunStats| -> Vec<(u64, u64, u64, u64)> {
        s.kernels
            .iter()
            .map(|k| (k.cycles, k.instructions, k.l2_read_accesses, k.atomics))
            .collect()
    };

    let history = || {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.set_exec_mode(ExecMode::HostParallel(3));
        let _ = ecl_cc::gpu::run(&mut gpu, &g, &cfg);
        gpu.set_exec_mode(ExecMode::Serial);
        let (r, s) = ecl_cc::gpu::run(&mut gpu, &g, &cfg);
        (r.labels, project(&s))
    };

    let (labels_a, stats_a) = history();
    let (labels_b, stats_b) = history();
    assert_eq!(labels_a, labels_b);
    assert_eq!(stats_a, stats_b);
}
