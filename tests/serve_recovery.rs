//! Crash-recovery and protocol-robustness tests for `ecl-serve`.
//!
//! The durability contract under test: an `ADD` is acknowledged only
//! after its WAL record is fsync'd, so a server killed at ANY point and
//! restarted with `--resume` must answer `CONN`/`STATS` exactly as an
//! unkilled oracle over the acknowledged prefix. Dropping a
//! [`ServeState`] without a graceful close is equivalent to `SIGKILL`
//! here because every acknowledged record is already on disk — the
//! harness (`harness serve`) additionally kills the real process with
//! a real signal mid-load.

use ecl_cc::incremental::IncrementalCc;
use ecl_gpu_sim::FaultRng;
use ecl_serve::state::{ServeState, SNAP_FILE, WAL_FILE};
use ecl_serve::{Client, JobsConfig, ServeConfig, Server};
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ecl_serve_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A deterministic edge stream with enough duplicates and merges to
/// exercise both snapshot-covered and WAL-replayed regimes.
fn edge_stream(n: u32, count: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = FaultRng::new(seed, 0);
    (0..count)
        .map(|_| (rng.below(n as u64) as u32, rng.below(n as u64) as u32))
        .collect()
}

/// The headline resume property, mirroring `engine_batch`'s
/// kill-anywhere test: for EVERY prefix length k of the edge stream, a
/// state killed after k acknowledged edges and resumed answers
/// connectivity and stats identically to an in-memory oracle holding
/// exactly those k edges.
#[test]
fn kill_after_every_acked_edge_then_resume_matches_oracle() {
    let n = 64u32;
    let edges = edge_stream(n, 48, 11);
    let dir = tmpdir("kill_anywhere");
    for k in 0..=edges.len() {
        // snapshot_every=7 so successive kill points land before,
        // on, and after snapshot boundaries.
        let state = ServeState::open_fresh(&dir, n as usize, 7).unwrap();
        let oracle = IncrementalCc::new(n as usize);
        for &(u, v) in &edges[..k] {
            state.add_edge(u, v).unwrap();
            oracle.add_edge(u, v);
        }
        drop(state); // no graceful close: acks are already durable

        let resumed = ServeState::resume(&dir, 7)
            .unwrap_or_else(|e| panic!("resume after {k} acked edges: {e}"));
        let stats = resumed.stats();
        assert_eq!(stats.vertices, n as usize, "k={k}");
        assert_eq!(stats.edges, k as u64, "k={k}: acked-edge count");
        assert_eq!(stats.components, oracle.num_components(), "k={k}");
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(
                    resumed.connected(u, v).unwrap(),
                    oracle.connected(u, v),
                    "k={k}: CONN {u} {v} diverged after resume"
                );
            }
        }
    }
}

#[test]
fn tampered_snapshot_digest_is_refused() {
    let dir = tmpdir("tamper");
    let state = ServeState::open_fresh(&dir, 32, 4).unwrap();
    for &(u, v) in &edge_stream(32, 20, 3) {
        state.add_edge(u, v).unwrap();
    }
    state.snapshot().unwrap();
    drop(state);

    // Corrupt one byte of the snapshot body.
    let snap_path = dir.join(SNAP_FILE);
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let idx = bytes.len() - 2;
    bytes[idx] = bytes[idx].wrapping_add(1);
    std::fs::write(&snap_path, &bytes).unwrap();

    match ServeState::resume(&dir, 4) {
        Err(e) => assert!(e.contains("digest mismatch"), "wrong refusal reason: {e}"),
        Ok(_) => panic!("tampered snapshot was accepted"),
    }
}

#[test]
fn torn_wal_tail_is_discarded_not_fatal() {
    let dir = tmpdir("torn");
    let state = ServeState::open_fresh(&dir, 32, 0).unwrap();
    let edges = edge_stream(32, 12, 5);
    for &(u, v) in &edges {
        state.add_edge(u, v).unwrap();
    }
    drop(state);

    // Simulate a record half-written at the instant of the kill. It was
    // never acknowledged, so discarding it is correct.
    let wal_path = dir.join(WAL_FILE);
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&wal_path)
        .unwrap();
    f.write_all(b"e\t9").unwrap();
    drop(f);

    let resumed = ServeState::resume(&dir, 0).unwrap();
    assert_eq!(resumed.stats().edges, edges.len() as u64);
    let oracle = IncrementalCc::new(32);
    for &(u, v) in &edges {
        oracle.add_edge(u, v);
    }
    assert_eq!(resumed.stats().components, oracle.num_components());
}

fn test_config(dir: PathBuf) -> ServeConfig {
    ServeConfig {
        dir,
        vertices: 1000,
        max_conns: 2,
        snapshot_every: 5,
        idle_timeout_ms: 30_000,
        jobs: JobsConfig {
            workers: 1,
            queue_capacity: 4,
            ..JobsConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// End-to-end smoke over a real socket: protocol surface, malformed
/// frames, BUSY admission, jobs, graceful drain, and resume.
#[test]
fn live_server_protocol_busy_jobs_and_drain_resume() {
    let dir = tmpdir("live");
    let server = Server::start(test_config(dir.clone())).unwrap();
    let addr = server.local_addr().to_string();

    let mut c = Client::connect(&addr).unwrap();
    assert!(c.accepted(), "greeting: {}", c.greeting);
    assert!(c.greeting.contains("vertices=1000"), "{}", c.greeting);

    // Happy-path protocol surface.
    assert_eq!(c.request("ADD 1 2").unwrap(), "OK linked=true");
    assert_eq!(c.request("ADD 1 2").unwrap(), "OK linked=false");
    assert_eq!(c.request("CONN 1 2").unwrap(), "OK true");
    assert_eq!(c.request("CONN 1 3").unwrap(), "OK false");
    assert_eq!(c.request("COMP 2").unwrap(), "OK 1");
    assert_eq!(
        c.request("STATS").unwrap(),
        "OK vertices=1000 edges=2 components=999"
    );
    assert_eq!(c.request("PING").unwrap(), "OK pong");

    // Malformed frames get structured errors and the session survives.
    assert!(c.request("FROB").unwrap().starts_with("ERR bad-command"));
    assert!(c.request("ADD 1").unwrap().starts_with("ERR bad-arity"));
    assert!(c.request("ADD x y").unwrap().starts_with("ERR bad-vertex"));
    assert!(c
        .request("ADD 5000 1")
        .unwrap()
        .starts_with("ERR invalid-vertex"));
    assert!(c.request("").unwrap().starts_with("ERR empty"));
    let long = "ADD ".to_string() + &"7".repeat(2000);
    assert!(c.request(&long).unwrap().starts_with("ERR too-long"));
    assert_eq!(c.request("PING").unwrap(), "OK pong", "session survived");

    // Admission control: with max_conns=2 and one slot used, a second
    // client fits and a third is rejected with a structured BUSY line.
    let c2 = Client::connect(&addr).unwrap();
    assert!(c2.accepted());
    let c3 = Client::connect(&addr).unwrap();
    assert!(!c3.accepted());
    assert!(c3.greeting.starts_with("BUSY max-conns"), "{}", c3.greeting);
    drop(c3);
    drop(c2);

    // Batch job through the engine queue to certified completion.
    let resp = c.request("SUBMIT smoke cycle:300").unwrap();
    let job_id = resp.strip_prefix("OK job=").unwrap().to_string();
    let mut status = String::new();
    for _ in 0..200 {
        status = c.request(&format!("JOB {job_id}")).unwrap();
        if status.starts_with("OK done") || status.starts_with("OK failed") {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        status.starts_with("OK done") && status.contains("components=1"),
        "job status: {status}"
    );
    assert!(c
        .request("SUBMIT bad not-a-spec")
        .unwrap()
        .starts_with("ERR bad-spec"));

    // METRICS reflects the session counters.
    let metrics = c.request("METRICS").unwrap();
    assert!(metrics.starts_with("OK sessions="), "{metrics}");
    assert!(metrics.contains("panics=0"), "{metrics}");

    // Graceful drain: stop accepting, flush, snapshot, exit cleanly.
    assert_eq!(c.request("SHUTDOWN").unwrap(), "OK draining");
    drop(c);
    server.join().unwrap();

    // Resume sees the exact acknowledged state.
    let mut cfg = test_config(dir);
    cfg.resume = true;
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert!(c.accepted());
    assert_eq!(c.request("CONN 1 2").unwrap(), "OK true");
    assert_eq!(
        c.request("STATS").unwrap(),
        "OK vertices=1000 edges=2 components=999"
    );
    assert_eq!(c.request("SHUTDOWN").unwrap(), "OK draining");
    drop(c);
    server.join().unwrap();
}
