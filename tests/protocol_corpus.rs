//! Malformed-frame corpus for the ECL/1 line protocol.
//!
//! One live server, one table of hostile frames: every `ERR <kind>`
//! branch in the server must be reachable, reply with its structured
//! kind, and leave the session alive (verified with a `PING` probe
//! after each frame). The corpus includes the byte-level cases a
//! line-oriented parser gets wrong first — over-length lines and
//! non-UTF-8 bytes — plus the session- and job-layer errors
//! (`BUSY max-conns`, `queue-full`, `no-such-job`, `bad-graph`,
//! `draining`, `idle-timeout`) that only exist above the parser.

use ecl_serve::{Client, JobsConfig, ServeConfig, Server};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ecl_proto_corpus_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn config(dir: PathBuf) -> ServeConfig {
    ServeConfig {
        dir,
        vertices: 100,
        max_conns: 2,
        snapshot_every: 0,
        idle_timeout_ms: 30_000,
        jobs: JobsConfig {
            workers: 1,
            queue_capacity: 1,
            ..JobsConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// Every parser-level `ERR` kind, exhaustively: the reply must carry the
/// structured kind and the session must answer the next request.
#[test]
fn parser_corpus_hits_every_err_kind_and_session_survives() {
    let dir = tmpdir("parser");
    let server = Server::start(config(dir)).unwrap();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert!(c.accepted(), "{}", c.greeting);

    // (frame, expected kind) — one entry per rejection branch.
    let corpus: &[(&str, &str)] = &[
        // empty: nothing but whitespace.
        ("", "empty"),
        ("   ", "empty"),
        ("\t\t", "empty"),
        // bad-command: unknown verbs, wrong case, punctuation soup.
        ("FROB", "bad-command"),
        ("add 1 2", "bad-command"),
        ("Ping", "bad-command"),
        ("ADD;DROP TABLE edges", "bad-command"),
        ("\u{1F980} 1 2", "bad-command"),
        // bad-arity: too few and too many, for each arity class.
        ("ADD 1", "bad-arity"),
        ("ADD 1 2 3", "bad-arity"),
        ("CONN 1", "bad-arity"),
        ("COMP", "bad-arity"),
        ("COMP 1 2", "bad-arity"),
        ("STATS now", "bad-arity"),
        ("METRICS please", "bad-arity"),
        ("SUBMIT onlyname", "bad-arity"),
        ("JOB", "bad-arity"),
        ("PING PING", "bad-arity"),
        ("QUIT 0", "bad-arity"),
        ("SHUTDOWN --force", "bad-arity"),
        // bad-vertex: non-numeric, negative, overflowing.
        ("ADD x 2", "bad-vertex"),
        ("ADD -1 2", "bad-vertex"),
        ("ADD 1 99999999999999999999", "bad-vertex"),
        ("CONN 1 1.5", "bad-vertex"),
        ("COMP v0", "bad-vertex"),
        // bad-job-id: JOB wants a u64.
        ("JOB abc", "bad-job-id"),
        ("JOB -1", "bad-job-id"),
        ("JOB 1.0", "bad-job-id"),
        // invalid-vertex: parses fine, out of the structure's range.
        ("ADD 100 0", "invalid-vertex"),
        ("CONN 0 4000000", "invalid-vertex"),
        ("COMP 100", "invalid-vertex"),
        // bad-spec: SUBMIT grammar rejects at the submission point.
        ("SUBMIT j not-a-spec", "bad-spec"),
        ("SUBMIT j gnm:definitely:not:numbers", "bad-spec"),
        // no-such-job: well-formed id that was never issued.
        ("JOB 424242", "no-such-job"),
    ];
    for &(frame, kind) in corpus {
        let reply = c.request(frame).unwrap();
        assert!(
            reply.starts_with(&format!("ERR {kind}")),
            "frame {frame:?}: expected ERR {kind}, got {reply:?}"
        );
        assert_eq!(
            c.request("PING").unwrap(),
            "OK pong",
            "session died after {frame:?}"
        );
    }

    assert_eq!(c.request("SHUTDOWN").unwrap(), "OK draining");
    drop(c);
    server.join().unwrap();
}

/// Byte-level hostility: over-length lines (with and without interior
/// structure) and non-UTF-8 bytes. The reader must bound memory, reply
/// `ERR too-long` once per oversized line, lossily decode invalid UTF-8
/// into a structured parser error, and keep the session usable.
#[test]
fn over_length_and_non_utf8_frames_get_structured_errors() {
    let dir = tmpdir("bytes");
    let server = Server::start(config(dir)).unwrap();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert!(c.accepted());

    // Just over the 1024-byte line cap.
    let long = format!("ADD {} 1", "7".repeat(1100));
    assert!(c.request(&long).unwrap().starts_with("ERR too-long"));
    assert_eq!(c.request("PING").unwrap(), "OK pong");

    // Vastly over it — a multi-read flood in one line.
    let flood = "A".repeat(64 * 1024);
    assert!(c.request(&flood).unwrap().starts_with("ERR too-long"));
    assert_eq!(c.request("PING").unwrap(), "OK pong");

    // Non-UTF-8 bytes: a complete line of invalid sequences. The server
    // decodes lossily, so this reaches the parser as replacement runes
    // and fails as an unknown command — never a panic, never a hang.
    c.send_raw(b"\xff\xfe\x80garbage \x9f 1 2\n").unwrap();
    let reply = c.read_line().unwrap();
    assert!(
        reply.starts_with("ERR bad-command"),
        "non-UTF-8 frame: {reply:?}"
    );
    assert_eq!(c.request("PING").unwrap(), "OK pong");

    // Non-UTF-8 bytes inside an argument position.
    c.send_raw(b"ADD \xc3\x28 2\n").unwrap();
    let reply = c.read_line().unwrap();
    assert!(
        reply.starts_with("ERR bad-vertex"),
        "invalid-UTF-8 vertex: {reply:?}"
    );

    // A torn frame (no newline) followed by the rest: reassembled into
    // one request, not treated as two.
    c.send_raw(b"CONN 1").unwrap();
    std::thread::sleep(Duration::from_millis(60));
    c.send_raw(b" 2\n").unwrap();
    assert_eq!(c.read_line().unwrap(), "OK false");

    assert_eq!(c.request("SHUTDOWN").unwrap(), "OK draining");
    drop(c);
    server.join().unwrap();
}

/// Session- and job-layer error branches: `BUSY max-conns` admission,
/// `queue-full` overflow, `bad-graph` from a spec that parses but cannot
/// build, and the `idle-timeout` reap.
#[test]
fn session_and_job_layer_err_branches() {
    let dir = tmpdir("layers");
    let server = Server::start(config(dir)).unwrap();
    let addr = server.local_addr().to_string();

    // BUSY max-conns: cap 2, third connection refused with a greeting.
    let mut c = Client::connect(&addr).unwrap();
    assert!(c.accepted());
    let c2 = Client::connect(&addr).unwrap();
    assert!(c2.accepted());
    let c3 = Client::connect(&addr).unwrap();
    assert!(c3.greeting.starts_with("BUSY max-conns"), "{}", c3.greeting);
    drop(c3);
    drop(c2);

    // queue-full: capacity 1, one slow worker — a burst must overflow.
    let mut rejected = false;
    for i in 0..20 {
        let reply = c
            .request(&format!("SUBMIT burst{i} gnm:2000:6000:1"))
            .unwrap();
        if reply.starts_with("ERR queue-full") {
            rejected = true;
            break;
        }
        assert!(reply.starts_with("OK job="), "{reply}");
    }
    assert!(rejected, "queue never filled");

    // bad-graph: the spec grammar accepts `file:` but the build fails;
    // the error surfaces through JOB status, not SUBMIT.
    let id = loop {
        let reply = c
            .request("SUBMIT ghost file:/nonexistent/ghost.el")
            .unwrap();
        if let Some(id) = reply.strip_prefix("OK job=") {
            break id.to_string();
        }
        // Queue still saturated from the burst above; let it drain.
        assert!(reply.starts_with("ERR queue-full"), "{reply}");
        std::thread::sleep(Duration::from_millis(25));
    };
    let mut status = String::new();
    for _ in 0..400 {
        status = c.request(&format!("JOB {id}")).unwrap();
        if status.starts_with("OK failed") || status.starts_with("OK done") {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        status.starts_with("OK failed kind=bad-graph"),
        "ghost job: {status}"
    );

    assert_eq!(c.request("SHUTDOWN").unwrap(), "OK draining");
    drop(c);
    server.join().unwrap();
}

/// `idle-timeout`: a session that goes silent past the deadline is
/// reaped with a structured error line, not a bare disconnect.
#[test]
fn idle_session_is_reaped_with_structured_error() {
    let dir = tmpdir("idle");
    let mut cfg = config(dir);
    cfg.idle_timeout_ms = 200;
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr().to_string();

    let mut idle = Client::connect(&addr).unwrap();
    assert!(idle.accepted());
    let reply = idle.read_line().unwrap();
    assert!(
        reply.starts_with("ERR idle-timeout"),
        "idle session reply: {reply:?}"
    );
    drop(idle);

    let mut c = Client::connect(&addr).unwrap();
    assert!(c.accepted());
    assert_eq!(c.request("SHUTDOWN").unwrap(), "OK draining");
    drop(c);
    server.join().unwrap();
}

/// `draining` over the wire: while the server winds down after SHUTDOWN,
/// an in-flight session's SUBMIT gets the structured refusal rather than
/// a hang or an unexplained disconnect.
#[test]
fn submit_after_shutdown_is_refused_as_draining() {
    let dir = tmpdir("draining");
    let server = Server::start(config(dir)).unwrap();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    assert!(c.accepted());
    let mut c2 = Client::connect(&addr).unwrap();
    assert!(c2.accepted());

    assert_eq!(c.request("SHUTDOWN").unwrap(), "OK draining");
    drop(c);
    // The second session was admitted before the drain began; its
    // submissions must now be refused, structured, without a hang.
    // The drain may already have torn the session down — an `Err` here
    // (EOF / reset / broken pipe) is a prompt close, not a hang.
    if let Ok(r) = c2.request("SUBMIT late path:50") {
        assert!(
            r.starts_with("ERR draining") || r.starts_with("ERR queue-full"),
            "late submit: {r:?}"
        );
    }
    drop(c2);
    server.join().unwrap();
}
