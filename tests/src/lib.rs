//! Shared utilities for the cross-crate integration tests: a named corpus
//! of graphs and a registry of every CC implementation in the workspace.

use ecl_cc::{CcResult, EclConfig};
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::{generate, CsrGraph};

/// A varied corpus exercising every degree/topology regime the paper's
/// kernels bucket on, plus degenerate shapes.
pub fn corpus() -> Vec<(String, CsrGraph)> {
    let mut graphs: Vec<(String, CsrGraph)> = vec![
        ("empty".into(), ecl_graph::GraphBuilder::new(0).build()),
        ("singleton".into(), ecl_graph::GraphBuilder::new(1).build()),
        ("isolated".into(), ecl_graph::GraphBuilder::new(37).build()),
        ("path".into(), generate::path(400)),
        ("cycle".into(), generate::cycle(401)),
        ("star".into(), generate::star(500)),
        ("tree".into(), generate::binary_tree(255)),
        ("cliques".into(), generate::disjoint_cliques(9, 8)),
        ("grid".into(), generate::grid2d(19, 21)),
        ("delaunay".into(), generate::delaunay_like(16, 16, 3)),
        ("road".into(), generate::road_network(22, 22, 0.25, 1.0, 4)),
        (
            "road-frag".into(),
            generate::road_network(20, 20, 0.3, 0.0, 5),
        ),
        ("random".into(), generate::gnm_random(700, 1800, 6)),
        (
            "rmat".into(),
            generate::rmat(9, 7, generate::RmatParams::GALOIS, 7),
        ),
        ("kron".into(), generate::kronecker(9, 9, 8)),
        ("ba".into(), generate::preferential_attachment(600, 3, 9)),
        ("web".into(), generate::web_graph(600, 8, 0.5, 0.1, 10)),
    ];
    // One catalog entry per topology family at tiny scale.
    for pg in [
        ecl_graph::catalog::PaperGraph::EuropeOsm,
        ecl_graph::catalog::PaperGraph::Rmat16,
        ecl_graph::catalog::PaperGraph::Amazon,
    ] {
        graphs.push((
            pg.info().name.to_string(),
            pg.generate(ecl_graph::catalog::Scale::Tiny),
        ));
    }
    graphs
}

/// Every CC implementation in the workspace, by name. Returns `None` when
/// an implementation legitimately refuses an input (CRONO's memory model).
pub type Algorithm = (&'static str, fn(&CsrGraph) -> Option<CcResult>);

fn ecl_serial(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_cc::connected_components(g))
}
fn ecl_parallel(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_cc::connected_components_par(g, 4))
}
fn ecl_gpu(g: &CsrGraph) -> Option<CcResult> {
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    Some(ecl_cc::gpu::run(&mut gpu, g, &EclConfig::default()).0)
}
fn b_soman(g: &CsrGraph) -> Option<CcResult> {
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    Some(ecl_baselines::gpu::soman::run(&mut gpu, g).result)
}
fn b_groute(g: &CsrGraph) -> Option<CcResult> {
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    Some(ecl_baselines::gpu::groute::run(&mut gpu, g).result)
}
fn b_gunrock(g: &CsrGraph) -> Option<CcResult> {
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    Some(ecl_baselines::gpu::gunrock::run(&mut gpu, g).result)
}
fn b_irgl(g: &CsrGraph) -> Option<CcResult> {
    let mut gpu = Gpu::new(DeviceProfile::test_tiny());
    Some(ecl_baselines::gpu::irgl::run(&mut gpu, g).result)
}
fn b_lp(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::cpu::label_prop::run(g, 4))
}
fn b_bfscc(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::cpu::bfscc::run(g, 4))
}
fn b_bfscc_hybrid(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::cpu::bfscc::run_direction_optimizing(g, 4))
}
fn b_afforest(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::cpu::afforest::run(g, 4))
}
fn b_multistep(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::cpu::multistep::run(g, 4))
}
fn b_crono(g: &CsrGraph) -> Option<CcResult> {
    ecl_baselines::cpu::crono::run(g, 4)
}
fn b_galois(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::cpu::galois_async::run(g, 4))
}
fn b_ndhybrid(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::cpu::ndhybrid::run(g, 4))
}
fn s_dfs(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::serial::dfs_cc(g))
}
fn s_bfs(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::serial::bfs_cc(g))
}
fn s_igraph(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::serial::igraph_cc(g))
}
fn s_uf(g: &CsrGraph) -> Option<CcResult> {
    Some(ecl_baselines::serial::unionfind_cc(g))
}

/// All nineteen implementations.
pub fn all_algorithms() -> Vec<Algorithm> {
    vec![
        ("ecl-serial", ecl_serial),
        ("ecl-parallel", ecl_parallel),
        ("ecl-gpu", ecl_gpu),
        ("soman", b_soman),
        ("groute", b_groute),
        ("gunrock", b_gunrock),
        ("irgl", b_irgl),
        ("label-prop", b_lp),
        ("bfscc", b_bfscc),
        ("bfscc-hybrid", b_bfscc_hybrid),
        ("afforest", b_afforest),
        ("multistep", b_multistep),
        ("crono", b_crono),
        ("galois-async", b_galois),
        ("ndhybrid", b_ndhybrid),
        ("serial-dfs", s_dfs),
        ("serial-bfs", s_bfs),
        ("serial-igraph", s_igraph),
        ("serial-uf", s_uf),
    ]
}
