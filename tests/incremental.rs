//! Concurrency property tests for the streaming [`IncrementalCc`]
//! structure that backs the `ecl-serve` server.
//!
//! The headline property: N threads racing `add_edge` over a shuffled
//! partition of a graph's edges must converge to a labeling that the
//! independent checker certifies as canonically identical to serial
//! ECL-CC on the same graph — the lock-free hooking protocol loses no
//! edge under any interleaving. Alongside it: `connected` must never
//! contradict an insertion that has completed (monotonicity — once a
//! client has been told an edge is in, connectivity through it can
//! never be un-observed), and the fallible `try_*` API must reject
//! out-of-range vertices with a structured error instead of panicking.

use ecl_cc::incremental::IncrementalCc;
use ecl_cc::EclError;
use ecl_gpu_sim::FaultRng;
use ecl_graph::CsrGraph;
use std::sync::Arc;

/// All undirected edges of `g`, one direction each.
fn edge_list(g: &CsrGraph) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for u in 0..g.num_vertices() as u32 {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Races `threads` workers over a shuffled partition of the edges and
/// returns the converged structure.
fn race_insert(n: usize, edges: &[(u32, u32)], threads: usize, seed: u64) -> IncrementalCc {
    let mut shuffled = edges.to_vec();
    FaultRng::new(seed, 0).shuffle(&mut shuffled);
    let cc = Arc::new(IncrementalCc::new(n));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let cc = Arc::clone(&cc);
            let mine: Vec<(u32, u32)> = shuffled.iter().copied().skip(t).step_by(threads).collect();
            std::thread::spawn(move || {
                for (u, v) in mine {
                    cc.add_edge(u, v);
                    // Monotonicity: a completed insertion is immediately
                    // and permanently visible to connectivity queries,
                    // no matter what the other threads are doing.
                    assert!(
                        cc.connected(u, v),
                        "connected({u},{v}) contradicted a completed add_edge"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("racing inserter panicked");
    }
    match Arc::try_unwrap(cc) {
        Ok(cc) => cc,
        Err(_) => panic!("a worker still holds the structure"),
    }
}

#[test]
fn racing_inserters_converge_to_certified_serial_labels() {
    for (name, g) in ecl_integration::corpus() {
        let n = g.num_vertices();
        let edges = edge_list(&g);
        let serial = ecl_cc::connected_components(&g);
        let serial_cert = ecl_verify::certify_canonical(&g, &serial.labels)
            .unwrap_or_else(|e| panic!("{name}: serial labels failed certification: {e}"));
        for (threads, seed) in [(2, 1u64), (4, 7), (8, 23)] {
            let cc = race_insert(n, &edges, threads, seed);
            let labels = cc.finish().labels;
            let cert = ecl_verify::certify_canonical(&g, &labels).unwrap_or_else(|e| {
                panic!("{name} ({threads} threads, seed {seed}): concurrent labels rejected: {e}")
            });
            assert_eq!(
                cert.num_components, serial_cert.num_components,
                "{name}: component count diverged"
            );
            // Both labelings are certified canonical (component-minimum
            // representatives), so equivalence means equality.
            assert_eq!(
                labels, serial.labels,
                "{name} ({threads} threads, seed {seed}): labels diverged from serial ECL-CC"
            );
        }
    }
}

#[test]
fn concurrent_queries_never_contradict_completed_inserts() {
    // Writers stream a long path while readers hammer connectivity
    // queries over the prefix each writer has already completed. Reads
    // racing in-flight inserts may say either true or false; reads of
    // completed prefixes must always say true.
    let n = 4_000usize;
    let cc = Arc::new(IncrementalCc::new(n));
    let done = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let writer = {
        let cc = Arc::clone(&cc);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for v in 1..n as u32 {
                cc.add_edge(v - 1, v);
                done.store(v, std::sync::atomic::Ordering::Release);
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let cc = Arc::clone(&cc);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut rng = FaultRng::new(99, r);
                for _ in 0..20_000 {
                    let frontier = done.load(std::sync::atomic::Ordering::Acquire);
                    if frontier == 0 {
                        continue;
                    }
                    let u = rng.below(u64::from(frontier) + 1) as u32;
                    let v = rng.below(u64::from(frontier) + 1) as u32;
                    assert!(
                        cc.connected(u, v),
                        "query ({u},{v}) under frontier {frontier} returned false"
                    );
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert!(cc.connected(0, n as u32 - 1));
}

#[test]
fn try_api_is_total_over_arbitrary_inputs() {
    let cc = IncrementalCc::new(10);
    for bad in [10u32, 11, 1 << 20, u32::MAX] {
        match cc.try_add_edge(bad, 3) {
            Err(EclError::InvalidVertex { vertex, len }) => {
                assert_eq!(vertex, bad);
                assert_eq!(len, 10);
            }
            other => panic!("try_add_edge({bad}, 3) = {other:?}, wanted InvalidVertex"),
        }
        assert!(cc.try_connected(3, bad).is_err());
        assert!(cc.try_component(bad).is_err());
    }
    // The failed calls must not have perturbed the structure.
    assert!(cc.try_add_edge(2, 3).unwrap());
    assert!(cc.try_connected(2, 3).unwrap());
    assert_eq!(cc.num_components(), 9);
}
