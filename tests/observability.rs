//! Cross-crate contracts for the observability layer (`ecl-obs`):
//!
//! * **Observation only**: attaching an enabled recorder to the GPU
//!   simulator must not move a single cycle, cache access, or label —
//!   the disabled-recorder and enabled-recorder runs are bit-identical.
//!   (`tests/exec_equivalence.rs` additionally pins the absolute golden
//!   values with recording enabled.)
//! * **Round trip**: the Chrome trace-event exporter and the parser are
//!   inverse functions — export → parse reproduces the exact span tree.
//! * **HostParallel determinism**: for a data-independent kernel, the
//!   recorded metric totals are a pure function of the kernel, not of
//!   the worker count or thread schedule.
//! * **Engine traces**: a batch run with a recorder in the ladder config
//!   produces schema-valid traces with one job span per job and the
//!   full kernel/ladder/queue event complement.

use ecl_cc::EclConfig;
use ecl_gpu_sim::{DeviceProfile, ExecMode, Gpu};
use ecl_graph::generate;
use ecl_obs::{
    parse_chrome_trace, validate_chrome_trace, EventKind, Recorder, PID_ENGINE, PID_SIM,
};

/// Runs ECL-CC serially with the given recorder and projects everything
/// the timing record contains.
#[allow(clippy::type_complexity)]
fn run_observed(
    recorder: Option<Recorder>,
) -> (
    Vec<u32>,
    u64,
    Vec<(String, u64, u64, u64, u64, u64)>,
    ecl_gpu_sim::CacheStats,
    ecl_gpu_sim::CacheStats,
) {
    let g = generate::gnm_random(1500, 4500, 9);
    let mut gpu = Gpu::new(DeviceProfile::titan_x());
    gpu.set_recorder(recorder);
    let (r, s) = ecl_cc::gpu::run(&mut gpu, &g, &EclConfig::default());
    let kernels = s
        .kernels
        .iter()
        .map(|k| {
            (
                k.name.clone(),
                k.cycles,
                k.instructions,
                k.l2_read_accesses,
                k.dram_transactions,
                k.atomics,
            )
        })
        .collect();
    (
        r.labels,
        s.total_cycles(),
        kernels,
        gpu.l1_stats(),
        gpu.l2_stats(),
    )
}

/// Recording on, recording off, and no recorder at all produce the same
/// labels, cycles, per-kernel stats, and per-level cache stats.
#[test]
fn recording_is_observation_only() {
    let plain = run_observed(None);
    let disabled = run_observed(Some(Recorder::disabled()));
    let enabled = run_observed(Some(Recorder::new()));
    assert_eq!(plain, disabled, "disabled recorder perturbed the run");
    assert_eq!(plain, enabled, "enabled recorder perturbed the run");
}

/// Export → parse is the identity on the recorded event list, and the
/// kernel spans land on the simulated-cycle track with the per-phase
/// breakdown attached.
#[test]
fn chrome_trace_round_trips_the_span_tree() {
    let g = generate::gnm_random(1200, 3600, 21);
    let rec = Recorder::new();
    let mut gpu = Gpu::new(DeviceProfile::titan_x());
    gpu.set_recorder(Some(rec.clone()));
    let (_, s) = ecl_cc::gpu::run(&mut gpu, &g, &EclConfig::default());

    let doc = rec.chrome_trace_json(&[("tool".into(), "test".into())]);
    let parsed = parse_chrome_trace(&doc).expect("exporter output must parse");
    assert_eq!(parsed, rec.events(), "round trip changed the event list");

    let summary = validate_chrome_trace(&doc).expect("exporter output must validate");
    assert_eq!(summary.events, parsed.len());
    assert!(summary.spans > 0, "no spans recorded");

    // One kernel span per launched kernel, on the simulated-cycle track,
    // carrying the cycle breakdown and contention counters as args.
    let kernel_spans: Vec<_> = parsed.iter().filter(|e| e.cat == "kernel").collect();
    assert_eq!(kernel_spans.len(), s.kernels.len());
    for (span, k) in kernel_spans.iter().zip(&s.kernels) {
        assert_eq!(span.pid, PID_SIM);
        assert_eq!(span.name, k.name);
        assert_eq!(span.kind, EventKind::Span { dur: k.cycles });
        for key in [
            "alu_cycles",
            "dram_cycles",
            "cas_attempts",
            "warp_occupancy",
        ] {
            assert!(
                span.args.iter().any(|(n, _)| n == key),
                "kernel span {} lost arg {key}",
                k.name
            );
        }
    }

    // Kernel spans tile the simulated timeline: each starts where the
    // previous ended.
    let mut cursor = 0u64;
    for span in &kernel_spans {
        assert_eq!(span.ts, cursor, "kernel {} overlaps", span.name);
        let EventKind::Span { dur } = span.kind else {
            unreachable!()
        };
        cursor += dur;
    }
}

/// For a data-independent kernel (shared reads, disjoint writes) the
/// recorded metric totals must not depend on the execution mode or the
/// host worker count.
#[test]
fn host_parallel_metric_totals_deterministic_across_workers() {
    const N: usize = 4096;
    let run_one = |mode: ExecMode| {
        let rec = Recorder::new();
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.set_exec_mode(mode);
        gpu.set_recorder(Some(rec.clone()));
        let src = gpu.alloc_from(&(0..N as u32).collect::<Vec<u32>>());
        let dst = gpu.alloc(N);
        gpu.try_launch_warps_sync("scale", N, |w| {
            let ids = w.thread_ids();
            let m = w.launch_mask();
            let vals = w.load(src, &ids, m);
            w.store(dst, &ids, &vals.map(|x| x.wrapping_mul(3)), m);
        })
        .expect("clean launch");
        rec.metrics()
    };

    let reference = run_one(ExecMode::Serial);
    assert!(reference.contains_key("sim.instructions"));
    assert!(reference.contains_key("sim.cycles"));
    for workers in [1usize, 2, 3, 8] {
        let got = run_one(ExecMode::HostParallel(workers));
        assert_eq!(
            got, reference,
            "workers={workers}: metric totals diverged from serial"
        );
    }
}

/// A batch run with a recorder plugged into the ladder config emits a
/// schema-valid trace: one job span per job on the engine track, at
/// least one ladder span and one kernel span per job, and queue-depth
/// counter samples.
#[test]
fn engine_batch_trace_covers_jobs_ladder_and_kernels() {
    let jobs = ecl_engine::parse_jobs(
        "ring cycle:800\nrand gnm:1200:3600:5\ngrid grid:20:25\nstar star:600\n",
    )
    .unwrap();
    let rec = Recorder::new();
    let cfg = ecl_engine::EngineConfig {
        workers: 2,
        ladder: ecl_cc::LadderConfig {
            recorder: Some(rec.clone()),
            ..ecl_cc::LadderConfig::default()
        },
        ..ecl_engine::EngineConfig::default()
    };
    let report = ecl_engine::run_batch(&jobs, &cfg).unwrap();
    assert!(report.is_complete());

    let doc = rec.chrome_trace_json(&[]);
    let summary = validate_chrome_trace(&doc).unwrap();
    assert!(summary.counters > 0, "no queue-depth samples");
    let events = parse_chrome_trace(&doc).unwrap();

    let job_spans: Vec<_> = events.iter().filter(|e| e.cat == "job").collect();
    assert_eq!(job_spans.len(), jobs.len(), "one job span per job");
    for span in &job_spans {
        assert_eq!(span.pid, PID_ENGINE);
        assert!(
            span.args
                .iter()
                .any(|(k, v)| k == "status" && v == &ecl_obs::ArgValue::Str("done".into())),
            "job span {} not done: {:?}",
            span.name,
            span.args
        );
    }
    let ladder_spans = events.iter().filter(|e| e.cat == "ladder").count();
    assert!(ladder_spans >= jobs.len(), "missing ladder attempt spans");
    let kernel_spans = events.iter().filter(|e| e.cat == "kernel").count();
    assert!(kernel_spans >= 5 * jobs.len(), "missing simulator spans");
    assert_eq!(rec.metrics()["engine.jobs"], jobs.len() as f64);
    assert_eq!(rec.metrics()["ladder.certified"], jobs.len() as f64);
}
