//! Property-based tests over random graphs: algorithm agreement, CSR
//! builder invariants, and union-find invariants under random workloads.

use ecl_integration::all_algorithms;
use proptest::prelude::*;

/// Random edge list over up to 64 vertices (dense enough to form
/// interesting component structures, small enough to run every algorithm).
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..64).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..200))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_algorithms_agree_on_random_graphs((n, edges) in edges_strategy()) {
        let g = ecl_graph::builder::from_edges(n, &edges);
        let reference = ecl_graph::stats::canonicalize_labels(
            &ecl_graph::stats::reference_labels(&g),
        );
        for (name, run) in all_algorithms() {
            if let Some(result) = run(&g) {
                let canon = ecl_graph::stats::canonicalize_labels(&result.labels);
                prop_assert_eq!(&canon, &reference, "algorithm {}", name);
            }
        }
    }

    #[test]
    fn builder_produces_valid_csr((n, edges) in edges_strategy()) {
        let g = ecl_graph::builder::from_edges(n, &edges);
        // Re-validating through the checked constructor must succeed.
        let revalidated = ecl_graph::CsrGraph::from_parts(
            g.offsets().to_vec(),
            g.adjacency().to_vec(),
        );
        prop_assert!(revalidated.is_ok(), "{:?}", revalidated.err());
        // Edge count conservation: distinct non-loop undirected inputs.
        let mut distinct: Vec<(u32, u32)> = edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(g.num_edges(), distinct.len());
    }

    #[test]
    fn union_find_partition_matches_graph_components((n, edges) in edges_strategy()) {
        let g = ecl_graph::builder::from_edges(n, &edges);
        let mut ds = ecl_unionfind::DisjointSets::new(g.num_vertices());
        for (u, v) in g.edges() {
            ds.union(u, v);
        }
        prop_assert_eq!(ds.count_sets(), ecl_graph::stats::count_components(&g));
        // flatten: every parent is a root, and equals the component min.
        ds.flatten();
        let reference = ecl_graph::stats::reference_labels(&g);
        prop_assert_eq!(ds.parents(), &reference[..]);
    }

    #[test]
    fn concurrent_union_find_agrees_with_sequential((n, edges) in edges_strategy()) {
        let g = ecl_graph::builder::from_edges(n, &edges);
        let par = ecl_unionfind::AtomicParents::new(g.num_vertices());
        {
            let par = &par;
            let edge_vec: Vec<_> = g.edges().collect();
            ecl_parallel::parallel_for(
                4,
                edge_vec.len(),
                ecl_parallel::Schedule::Dynamic { chunk: 3 },
                move |i| {
                    let (u, v) = edge_vec[i];
                    par.unite(u, v);
                },
            );
        }
        prop_assert_eq!(par.count_sets(), ecl_graph::stats::count_components(&g));
        // Representatives must be component minima (min-wins hooking).
        let reference = ecl_graph::stats::reference_labels(&g);
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(par.find_repres(v), reference[v as usize]);
        }
    }

    #[test]
    fn path_lengths_never_grow_under_find(seq in proptest::collection::vec((0u32..40, 0u32..40), 1..80)) {
        let mut ds = ecl_unionfind::DisjointSets::new(40);
        for &(a, b) in &seq {
            ds.union(a, b);
        }
        for v in 0..40u32 {
            let before = ds.path_length(v);
            ds.find(v);
            let after = ds.path_length(v);
            prop_assert!(after <= before, "find lengthened path of {}: {} -> {}", v, before, after);
        }
    }

    #[test]
    fn canonicalize_is_idempotent(labels in proptest::collection::vec(0u32..20, 0..60)) {
        let labels: Vec<u32> = labels.iter().map(|&l| l % (labels.len().max(1) as u32)).collect();
        let once = ecl_graph::stats::canonicalize_labels(&labels);
        let twice = ecl_graph::stats::canonicalize_labels(&once);
        prop_assert_eq!(once, twice);
    }
}
