//! Property-based tests over random graphs: algorithm agreement, CSR
//! builder invariants, and union-find invariants under random workloads.
//!
//! Randomness is the workspace's own deterministic PCG32 stream with
//! fixed seeds, so every case is hermetic and exactly reproducible.

use ecl_graph::generate::Pcg32;
use ecl_integration::all_algorithms;

/// Random edge list over up to 64 vertices (dense enough to form
/// interesting component structures, small enough to run every algorithm).
fn random_edges(rng: &mut Pcg32) -> (usize, Vec<(u32, u32)>) {
    let n = 2 + rng.below(62) as usize;
    let m = rng.below(200) as usize;
    let edges = (0..m)
        .map(|_| (rng.below(n as u32), rng.below(n as u32)))
        .collect();
    (n, edges)
}

#[test]
fn all_algorithms_agree_on_random_graphs() {
    let mut rng = Pcg32::new(0xa9bee);
    for _ in 0..48 {
        let (n, edges) = random_edges(&mut rng);
        let g = ecl_graph::builder::from_edges(n, &edges);
        let reference =
            ecl_graph::stats::canonicalize_labels(&ecl_graph::stats::reference_labels(&g));
        for (name, run) in all_algorithms() {
            if let Some(result) = run(&g) {
                let canon = ecl_graph::stats::canonicalize_labels(&result.labels);
                assert_eq!(&canon, &reference, "algorithm {name}");
            }
        }
    }
}

#[test]
fn builder_produces_valid_csr() {
    let mut rng = Pcg32::new(0xc5a);
    for _ in 0..48 {
        let (n, edges) = random_edges(&mut rng);
        let g = ecl_graph::builder::from_edges(n, &edges);
        // Re-validating through the checked constructor must succeed.
        let revalidated =
            ecl_graph::CsrGraph::from_parts(g.offsets().to_vec(), g.adjacency().to_vec());
        assert!(revalidated.is_ok(), "{:?}", revalidated.err());
        // Edge count conservation: distinct non-loop undirected inputs.
        let mut distinct: Vec<(u32, u32)> = edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(g.num_edges(), distinct.len());
    }
}

#[test]
fn union_find_partition_matches_graph_components() {
    let mut rng = Pcg32::new(0x9a27);
    for _ in 0..48 {
        let (n, edges) = random_edges(&mut rng);
        let g = ecl_graph::builder::from_edges(n, &edges);
        let mut ds = ecl_unionfind::DisjointSets::new(g.num_vertices());
        for (u, v) in g.edges() {
            ds.union(u, v);
        }
        assert_eq!(ds.count_sets(), ecl_graph::stats::count_components(&g));
        // flatten: every parent is a root, and equals the component min.
        ds.flatten();
        let reference = ecl_graph::stats::reference_labels(&g);
        assert_eq!(ds.parents(), &reference[..]);
    }
}

#[test]
fn concurrent_union_find_agrees_with_sequential() {
    let mut rng = Pcg32::new(0xc0bc);
    for _ in 0..48 {
        let (n, edges) = random_edges(&mut rng);
        let g = ecl_graph::builder::from_edges(n, &edges);
        let par = ecl_unionfind::AtomicParents::new(g.num_vertices());
        {
            let par = &par;
            let edge_vec: Vec<_> = g.edges().collect();
            ecl_parallel::parallel_for(
                4,
                edge_vec.len(),
                ecl_parallel::Schedule::Dynamic { chunk: 3 },
                move |i| {
                    let (u, v) = edge_vec[i];
                    par.unite(u, v);
                },
            );
        }
        assert_eq!(par.count_sets(), ecl_graph::stats::count_components(&g));
        // Representatives must be component minima (min-wins hooking).
        let reference = ecl_graph::stats::reference_labels(&g);
        for v in 0..g.num_vertices() as u32 {
            assert_eq!(par.find_repres(v), reference[v as usize]);
        }
    }
}

#[test]
fn path_lengths_never_grow_under_find() {
    let mut rng = Pcg32::new(0x9478);
    for _ in 0..48 {
        let len = 1 + rng.below(79) as usize;
        let seq: Vec<(u32, u32)> = (0..len).map(|_| (rng.below(40), rng.below(40))).collect();
        let mut ds = ecl_unionfind::DisjointSets::new(40);
        for &(a, b) in &seq {
            ds.union(a, b);
        }
        for v in 0..40u32 {
            let before = ds.path_length(v);
            ds.find(v);
            let after = ds.path_length(v);
            assert!(
                after <= before,
                "find lengthened path of {v}: {before} -> {after}"
            );
        }
    }
}

#[test]
fn canonicalize_is_idempotent() {
    let mut rng = Pcg32::new(0x1de8);
    for _ in 0..48 {
        let len = rng.below(60) as usize;
        let labels: Vec<u32> = (0..len)
            .map(|_| rng.below(20) % (len.max(1) as u32))
            .collect();
        let once = ecl_graph::stats::canonicalize_labels(&labels);
        let twice = ecl_graph::stats::canonicalize_labels(&once);
        assert_eq!(once, twice);
    }
}
