//! Acceptance matrix for sharded multi-device execution: final labels
//! must be byte-identical to single-device serial ECL-CC for every
//! shard count, worker count, and seeded fault schedule — certified
//! canonical by `ecl-verify` — including device-crash recovery in
//! degraded N−1 mode.

use ecl_gpu_sim::{ExecMode, FaultPlan};
use ecl_graph::catalog::{PaperGraph, Scale};
use ecl_shard::{run_sharded, ShardConfig};

fn serial_labels(g: &ecl_graph::CsrGraph) -> Vec<u32> {
    ecl_cc::connected_components(g).labels
}

/// Clean runs: shard counts {2, 4, 8} across all eighteen bundled
/// graphs.
#[test]
fn sharded_byte_identical_on_all_bundled_graphs() {
    for pg in PaperGraph::ALL {
        let g = pg.generate(Scale::Tiny);
        let want = serial_labels(&g);
        for shards in [2usize, 4, 8] {
            let cfg = ShardConfig {
                shards,
                ..ShardConfig::default()
            };
            let out = run_sharded(&g, &cfg).unwrap();
            assert_eq!(
                out.result.labels,
                want,
                "{}: shards={shards} diverged from serial",
                pg.info().name
            );
            assert!(out.certificate.canonical, "{}", pg.info().name);
            assert_eq!(out.certificate.num_vertices, g.num_vertices());
            assert!(!out.report.degraded);
        }
    }
}

/// Seeded shard-chaos schedules (dropped + corrupted frames) on the
/// quick catalog subset: answers stay byte-identical, faults only cost
/// retransmissions.
#[test]
fn sharded_byte_identical_under_shard_chaos() {
    let quick = [
        PaperGraph::Grid2d,
        PaperGraph::EuropeOsm,
        PaperGraph::Rmat16,
        PaperGraph::SocLivejournal,
    ];
    for pg in quick {
        let g = pg.generate(Scale::Tiny);
        let want = serial_labels(&g);
        for shards in [2usize, 4] {
            for seed in [1u64, 7, 1234] {
                let cfg = ShardConfig {
                    shards,
                    fault: FaultPlan::shard_chaos(seed),
                    ..ShardConfig::default()
                };
                let out = run_sharded(&g, &cfg).unwrap();
                assert_eq!(
                    out.result.labels,
                    want,
                    "{}: shards={shards} seed={seed} diverged",
                    pg.info().name
                );
                assert!(!out.report.degraded);
            }
        }
    }
}

/// Worker counts: the host-parallel execution mode on each simulated
/// device must not change a single label byte.
#[test]
fn sharded_byte_identical_across_worker_counts() {
    let g = PaperGraph::Rmat16.generate(Scale::Tiny);
    let want = serial_labels(&g);
    for workers in [1usize, 2, 4] {
        let cfg = ShardConfig {
            shards: 4,
            exec: ExecMode::HostParallel(workers),
            fault: FaultPlan::shard_chaos(3),
            ..ShardConfig::default()
        };
        let out = run_sharded(&g, &cfg).unwrap();
        assert_eq!(out.result.labels, want, "workers={workers} diverged");
    }
}

/// A mid-run device crash with checkpoint-resume: the coordinator
/// reassigns the lost shard to survivors (degraded N−1 mode) and the
/// final labels still match serial byte-for-byte.
#[test]
fn sharded_crash_recovery_byte_identical() {
    let dir = std::env::temp_dir().join(format!("ecl-sharded-it-{}", std::process::id()));
    for pg in [PaperGraph::Grid2d, PaperGraph::SocLivejournal] {
        let g = pg.generate(Scale::Tiny);
        let want = serial_labels(&g);
        for seed in [1u64, 5] {
            let _ = std::fs::remove_dir_all(&dir);
            let mut fault = FaultPlan::shard_chaos(seed);
            fault.device_crash_at_round = 2;
            let cfg = ShardConfig {
                shards: 4,
                fault,
                checkpoint_dir: Some(dir.clone()),
                crash_budget: 1,
                ..ShardConfig::default()
            };
            let out = run_sharded(&g, &cfg).unwrap();
            assert_eq!(
                out.result.labels,
                want,
                "{} seed={seed}: crash recovery diverged",
                pg.info().name
            );
            assert_eq!(out.report.device_crashes, 1);
            assert!(
                out.report.shards_recovered >= 1,
                "a shard must be re-hosted"
            );
            assert!(!out.report.degraded, "one crash is within budget");
            assert!(
                out.report.checkpoint_writes >= 1,
                "round boundaries must checkpoint"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Determinism: the same seeded schedule replays to identical exchange
/// counters, not just identical labels.
#[test]
fn sharded_chaos_replays_bit_for_bit() {
    let g = PaperGraph::EuropeOsm.generate(Scale::Tiny);
    let run = || {
        let cfg = ShardConfig {
            shards: 4,
            fault: FaultPlan::shard_chaos(21),
            ..ShardConfig::default()
        };
        let out = run_sharded(&g, &cfg).unwrap();
        (
            out.result.labels,
            out.report.rounds,
            out.report.exchange.frames_sent,
            out.report.exchange.retransmits,
            out.report.exchange.bytes_sent,
            out.report.exchange.cycles,
        )
    };
    assert_eq!(run(), run());
}

/// Observability: a sharded run with a recorder produces per-device
/// kernel spans in disjoint timeline windows, round spans, and the
/// `shard.*` metrics document.
#[test]
fn sharded_run_is_observable() {
    let g = PaperGraph::Grid2d.generate(Scale::Tiny);
    let rec = ecl_obs::Recorder::new();
    let mut fault = FaultPlan::shard_chaos(2);
    fault.device_crash_at_round = 1;
    let cfg = ShardConfig {
        shards: 3,
        fault,
        crash_budget: 1,
        recorder: Some(rec.clone()),
        ..ShardConfig::default()
    };
    let out = run_sharded(&g, &cfg).unwrap();
    assert!(!out.report.degraded);

    let metrics = rec.metrics();
    for key in [
        "shard.devices",
        "shard.rounds",
        "shard.frames_sent",
        "shard.exchange_bytes",
        "shard.crashes",
        "shard.recovered",
    ] {
        assert!(metrics.contains_key(key), "missing metric {key}");
    }
    assert_eq!(metrics["shard.devices"], 3.0);
    assert_eq!(metrics["shard.crashes"], 1.0);

    let events = rec.events();
    let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with("shard.round")),
        "round spans missing"
    );
    assert!(
        names.iter().any(|n| n.starts_with("shard.crash")),
        "crash instant missing"
    );
    assert!(
        names.iter().any(|n| n.starts_with("shard.recover")),
        "recovery instant missing"
    );
    // The trace document stays schema-valid with the shard events in it.
    let trace = rec.chrome_trace_json(&[("experiment".into(), "sharded-test".into())]);
    ecl_obs::validate_chrome_trace(&trace).expect("sharded trace validates");
}
