//! Determinism guarantees across the workspace: generators, the GPU
//! simulator, and the min-wins union-find family must all be exactly
//! reproducible, because the benchmark harness depends on it.

use ecl_cc::EclConfig;
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::catalog::{PaperGraph, Scale};

#[test]
fn catalog_graphs_are_bit_identical_across_calls() {
    for pg in PaperGraph::ALL {
        let a = pg.generate(Scale::Tiny);
        let b = pg.generate(Scale::Tiny);
        assert_eq!(a, b, "{pg:?}");
    }
}

#[test]
fn gpu_simulation_cycles_are_reproducible() {
    let g = PaperGraph::Rmat16.generate(Scale::Tiny);
    let runs: Vec<u64> = (0..3)
        .map(|_| {
            let mut gpu = Gpu::new(DeviceProfile::titan_x());
            let (_, s) = ecl_cc::gpu::run(&mut gpu, &g, &EclConfig::default());
            s.total_cycles()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn gpu_baselines_are_reproducible() {
    let g = PaperGraph::Grid2d.generate(Scale::Tiny);
    for _ in 0..2 {
        let mut a = Gpu::new(DeviceProfile::k40());
        let mut b = Gpu::new(DeviceProfile::k40());
        let ra = ecl_baselines::gpu::gunrock::run(&mut a, &g);
        let rb = ecl_baselines::gpu::gunrock::run(&mut b, &g);
        assert_eq!(ra.result.labels, rb.result.labels);
        assert_eq!(ra.total_cycles(), rb.total_cycles());
    }
}

#[test]
fn parallel_labels_deterministic_despite_races() {
    // The benign races reorder intermediate states but the min-wins final
    // labeling is unique.
    let g = PaperGraph::Kron21.generate(Scale::Tiny);
    let first = ecl_cc::connected_components_par(&g, 8);
    for _ in 0..4 {
        assert_eq!(ecl_cc::connected_components_par(&g, 8).labels, first.labels);
    }
    assert_eq!(ecl_cc::connected_components(&g).labels, first.labels);
}
