//! Graph I/O round-trips composed with the CC pipeline: a graph written
//! to any supported format and read back must produce identical
//! components.

use ecl_graph::{generate, io};

fn roundtrip_formats(g: &ecl_graph::CsrGraph) {
    // Binary: exact round-trip.
    let mut buf = Vec::new();
    io::write_binary(g, &mut buf).unwrap();
    let g2 = io::read_binary(&buf[..]).unwrap();
    assert_eq!(g, &g2);
    assert_eq!(
        ecl_cc::connected_components(g).labels,
        ecl_cc::connected_components(&g2).labels
    );

    // Edge list: loses trailing isolated vertices but preserves the edge
    // structure; components over shared vertices must agree.
    let mut buf = Vec::new();
    io::write_edge_list(g, &mut buf).unwrap();
    let g3 = io::read_edge_list(&buf[..]).unwrap();
    let l1 = ecl_cc::connected_components(g).labels;
    let l3 = ecl_cc::connected_components(&g3).labels;
    for v in 0..g3.num_vertices() {
        // Any vertex present in both graphs with edges keeps its component
        // minimum (labels are component minima for ECL-CC).
        if g3.degree(v as u32) > 0 {
            assert_eq!(l1[v], l3[v], "vertex {v}");
        }
    }
}

#[test]
fn roundtrip_random() {
    roundtrip_formats(&generate::gnm_random(300, 900, 1));
}

#[test]
fn roundtrip_rmat_with_isolated_vertices() {
    roundtrip_formats(&generate::rmat(9, 4, generate::RmatParams::GALOIS, 2));
}

#[test]
fn roundtrip_road() {
    roundtrip_formats(&generate::road_network(15, 15, 0.3, 1.0, 3));
}

#[test]
fn dimacs_pipeline() {
    // Write a DIMACS file by hand, read it, and run the full pipeline.
    let text = "c tiny road network\np sp 6 4\na 1 2 7\na 2 3 7\na 4 5 9\na 5 4 9\n";
    let g = io::read_dimacs(text.as_bytes()).unwrap();
    assert_eq!(g.num_vertices(), 6);
    let r = ecl_cc::connected_components(&g);
    r.verify(&g).unwrap();
    assert_eq!(r.num_components(), 3); // {0,1,2}, {3,4}, {5}
}

#[test]
fn matrix_market_pipeline() {
    let text = "%%MatrixMarket matrix coordinate pattern symmetric\n5 5 4\n1 2\n2 3\n4 5\n5 5\n";
    let g = io::read_matrix_market(text.as_bytes()).unwrap();
    let r = ecl_cc::connected_components_par(&g, 2);
    r.verify(&g).unwrap();
    assert_eq!(r.num_components(), 2);
}
