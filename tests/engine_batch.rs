//! Property tests for the fault-tolerant batch engine: kill-and-resume
//! determinism, and breaker-mediated completion with a dead GPU.

use ecl_cc::ladder::Backend;
use ecl_engine::{parse_jobs, run_batch, BreakerConfig, EngineConfig, JobSpec};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

const JOBS: &str = "\
ring      cycle:1200
cliques   cliques:4:25
rand-a    gnm:2000:6000:7
star      star:900
grid      grid:30:35
rand-b    gnm:1500:3000:3
rmat      rmat:8:8:5
path      path:1100
";

fn jobs() -> Vec<JobSpec> {
    parse_jobs(JOBS).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ecl_engine_batch_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn read_results(dir: &Path, n: u64) -> HashMap<u64, Vec<u8>> {
    (0..n)
        .map(|id| {
            let path = ecl_engine::journal::result_path(dir, id);
            (
                id,
                std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display())),
            )
        })
        .collect()
}

/// The headline resume property: for EVERY possible kill point, a run
/// killed after k completed jobs and then resumed produces byte-identical
/// certified result files to an uninterrupted run, and the final report
/// is complete with the resumed jobs accounted for.
#[test]
fn kill_anywhere_then_resume_is_byte_identical() {
    let jobs = jobs();
    let n = jobs.len() as u64;

    // Uninterrupted reference run.
    let ref_dir = tmpdir("ref");
    let cfg = EngineConfig {
        workers: 2,
        journal_path: Some(ref_dir.join("batch.journal")),
        results_dir: Some(ref_dir.join("results")),
        ..EngineConfig::default()
    };
    let report = run_batch(&jobs, &cfg).unwrap();
    assert!(report.is_complete(), "reference run incomplete: {report:?}");
    let reference = read_results(&cfg.results_dir.clone().unwrap(), n);

    for kill_after in 1..jobs.len() {
        let dir = tmpdir(&format!("kill{kill_after}"));
        let killed_cfg = EngineConfig {
            workers: 2,
            journal_path: Some(dir.join("batch.journal")),
            results_dir: Some(dir.join("results")),
            kill_after_jobs: Some(kill_after),
            ..EngineConfig::default()
        };
        let killed = run_batch(&jobs, &killed_cfg).unwrap();
        assert!(killed.aborted, "kill_after={kill_after} did not abort");
        assert!(!killed.is_complete());

        // Resume with a fresh config (no kill switch), same journal.
        let resumed_cfg = EngineConfig {
            resume: true,
            kill_after_jobs: None,
            ..killed_cfg.clone()
        };
        let resumed = run_batch(&jobs, &resumed_cfg).unwrap();
        assert!(
            resumed.is_complete(),
            "resume after kill_after={kill_after} incomplete: {resumed:?}"
        );
        // At least the journaled jobs must have been recovered, not rerun.
        assert!(
            resumed.resumed() >= kill_after,
            "kill_after={kill_after}: only {} jobs resumed",
            resumed.resumed()
        );
        assert_eq!(resumed.done() + resumed.resumed(), jobs.len());

        let after = read_results(&resumed_cfg.results_dir.clone().unwrap(), n);
        for id in 0..n {
            assert_eq!(
                after[&id], reference[&id],
                "kill_after={kill_after}: job {id} result differs from uninterrupted run"
            );
        }
    }
}

/// Resuming against a different jobs file must be refused — the journal
/// pins a digest of the job list.
#[test]
fn resume_rejects_changed_jobs_file() {
    let dir = tmpdir("digest");
    let cfg = EngineConfig {
        workers: 1,
        journal_path: Some(dir.join("batch.journal")),
        results_dir: Some(dir.join("results")),
        ..EngineConfig::default()
    };
    let jobs = jobs();
    run_batch(&jobs, &cfg).unwrap();

    let other = parse_jobs("ring cycle:1200\nextra path:10\n").unwrap();
    let resume_cfg = EngineConfig {
        resume: true,
        ..cfg
    };
    let err = run_batch(&other, &resume_cfg).unwrap_err();
    assert!(err.contains("different job list"), "got: {err}");
}

/// A tampered result file is detected by its digest on resume and the
/// job reruns instead of trusting the corrupted bytes.
#[test]
fn resume_reruns_tampered_result() {
    let dir = tmpdir("tamper");
    let cfg = EngineConfig {
        workers: 1,
        journal_path: Some(dir.join("batch.journal")),
        results_dir: Some(dir.join("results")),
        ..EngineConfig::default()
    };
    let jobs = jobs();
    run_batch(&jobs, &cfg).unwrap();

    let victim = ecl_engine::journal::result_path(&dir.join("results"), 2);
    let good = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, b"0 999\n").unwrap();

    let resume_cfg = EngineConfig {
        resume: true,
        ..cfg
    };
    let report = run_batch(&jobs, &resume_cfg).unwrap();
    assert!(report.is_complete());
    // Job 2 was demoted to pending and rerun...
    let rerun = report.jobs.iter().find(|j| j.id == 2).unwrap();
    assert_eq!(rerun.status.name(), "done", "tampered job must rerun");
    // ...and its rewritten bytes match the original certified answer.
    assert_eq!(std::fs::read(&victim).unwrap(), good);
}

/// The breaker property: with a GPU that can never succeed (1-cycle
/// watchdog trips on every kernel), the GPU breaker opens after the
/// configured failure threshold, later jobs skip the GPU entirely, and
/// every job still completes certified on a CPU rung — zero lost jobs.
#[test]
fn dead_gpu_trips_breaker_and_batch_completes_on_cpu() {
    let jobs = jobs();
    let mut cfg = EngineConfig {
        workers: 1, // serial workers: deterministic failure accounting
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_ms: 3_600_000, // never half-opens within the test
            half_open_successes: 1,
        },
        ..EngineConfig::default()
    };
    cfg.ladder.watchdog = Some(1);

    let report = run_batch(&jobs, &cfg).unwrap();
    assert!(report.is_complete(), "jobs lost: {report:?}");
    assert_eq!(report.done(), jobs.len());

    // Every job completed on a CPU backend.
    for job in &report.jobs {
        let backend = job.backend.as_deref().unwrap();
        assert_ne!(backend, Backend::GpuSim.name(), "job {} on GPU", job.id);
    }

    // The GPU breaker tripped and is open; its failures are recorded.
    let gpu = report
        .breakers
        .iter()
        .find(|b| b.backend == Backend::GpuSim.name())
        .unwrap();
    assert_eq!(gpu.state, "open");
    assert!(gpu.trips >= 1, "breaker never tripped");
    assert!(gpu.failures >= 2);
    assert_eq!(report.total_trips(), gpu.trips);

    // Once open, jobs stop offering the GPU: the attempt trail of the
    // later jobs contains no GPU attempts at all.
    let last = report.jobs.iter().max_by_key(|j| j.id).unwrap();
    assert!(
        last.attempts
            .iter()
            .all(|a| a.backend != Backend::GpuSim.name()),
        "late job still attempted the tripped GPU: {:?}",
        last.attempts
    );

    // The structured error chain survived into the report: some recorded
    // GPU failure names the kernel that tripped the watchdog.
    let named_kernel = report.jobs.iter().flat_map(|j| &j.attempts).any(|a| {
        a.error
            .as_ref()
            .is_some_and(|e| e.kernel.is_some() && e.kind.contains("watchdog"))
    });
    assert!(named_kernel, "no attempt kept the originating kernel name");
}

/// A half-open breaker probes the backend and closes again once the
/// fault clears: first batch (dead GPU) trips it, second batch (healthy
/// GPU, zero cooldown) probes and recovers.
#[test]
fn breaker_recovers_after_fault_clears() {
    let jobs = parse_jobs("a cycle:300\nb cliques:2:15\nc path:400\nd gnm:500:1500:1\n").unwrap();
    let mut cfg = EngineConfig {
        workers: 1,
        breaker: BreakerConfig {
            failure_threshold: 1,
            cooldown_ms: 0, // immediately half-open
            half_open_successes: 1,
        },
        ..EngineConfig::default()
    };
    // One retry round, dead GPU: trips the breaker, then half-open probes
    // (the device health probe) keep failing, so jobs run on CPU.
    cfg.ladder.watchdog = Some(1);
    cfg.ladder.attempts_per_stage = 1;
    let report = run_batch(&jobs, &cfg).unwrap();
    assert!(report.is_complete());
    let gpu = report
        .breakers
        .iter()
        .find(|b| b.backend == Backend::GpuSim.name())
        .unwrap();
    assert!(gpu.trips >= 1);

    // Fault cleared: a fresh batch with the same breaker tuning runs the
    // probe, succeeds, and the GPU serves jobs again.
    cfg.ladder.watchdog = None;
    let report = run_batch(&jobs, &cfg).unwrap();
    assert!(report.is_complete());
    assert!(
        report
            .jobs
            .iter()
            .all(|j| j.backend.as_deref() == Some(Backend::GpuSim.name())),
        "healthy GPU not used: {report:?}"
    );
}

/// Admission control: a queue of capacity 1 with rejection enabled and a
/// single slow consumer must reject some jobs with `queue-full`, and the
/// report must say so.
#[test]
fn admission_control_rejects_when_full() {
    // One worker, capacity 1, and jobs that take long enough that the
    // producer outpaces the consumer.
    let jobs = jobs();
    let cfg = EngineConfig {
        workers: 1,
        queue_capacity: 1,
        reject_when_full: true,
        ..EngineConfig::default()
    };
    let report = run_batch(&jobs, &cfg).unwrap();
    // Either everything squeaked through (fast machine) or the rejected
    // jobs are reported as failed with the queue-full kind — never lost.
    let accounted = report.done() + report.failed();
    assert_eq!(accounted, jobs.len(), "jobs lost: {report:?}");
    assert_eq!(report.queue_rejections, report.failed());
    for j in &report.jobs {
        if j.status.name() == "failed" {
            assert_eq!(j.error.as_ref().unwrap().kind, "queue-full");
        }
    }
}

/// Sharded batch execution: `shards_per_job > 1` routes every job through
/// the multi-device coordinator, yet the persisted result files are
/// byte-identical to a single-device batch — which is what lets a killed
/// sharded run resume against a serial journal and vice versa.
#[test]
fn sharded_batch_results_byte_identical_to_single_device() {
    let jobs = jobs();
    let n = jobs.len() as u64;

    let ref_dir = tmpdir("shard_ref");
    let cfg = EngineConfig {
        workers: 2,
        results_dir: Some(ref_dir.join("results")),
        ..EngineConfig::default()
    };
    let report = run_batch(&jobs, &cfg).unwrap();
    assert!(report.is_complete());
    let reference = read_results(&cfg.results_dir.clone().unwrap(), n);

    for shards in [2usize, 3] {
        let dir = tmpdir(&format!("shard{shards}"));
        let mut cfg = EngineConfig {
            workers: 2,
            shards_per_job: shards,
            journal_path: Some(dir.join("batch.journal")),
            results_dir: Some(dir.join("results")),
            ..EngineConfig::default()
        };
        // Interconnect chaos on top: retransmission must not leak into
        // the persisted bytes.
        cfg.ladder.fault = ecl_gpu_sim::FaultPlan::shard_chaos(11);
        let report = run_batch(&jobs, &cfg).unwrap();
        assert!(report.is_complete(), "shards={shards}: {report:?}");
        for j in &report.jobs {
            let backend = j.backend.as_deref().unwrap_or("none");
            assert!(
                backend.starts_with(&format!("sharded:{shards}")),
                "job {} ran on {backend}, not sharded",
                j.name
            );
        }
        let got = read_results(&cfg.results_dir.clone().unwrap(), n);
        assert_eq!(got, reference, "shards={shards} changed result bytes");
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&ref_dir);
}

/// A batch journaled by a sharded run resumes cleanly into a
/// single-device engine: the digests cover label bytes only, so the
/// resumed engine accepts every sharded entry as-is.
#[test]
fn sharded_journal_resumes_on_single_device_engine() {
    let jobs = jobs();
    let dir = tmpdir("shard_resume");
    let killed_cfg = EngineConfig {
        workers: 1,
        shards_per_job: 4,
        journal_path: Some(dir.join("batch.journal")),
        results_dir: Some(dir.join("results")),
        kill_after_jobs: Some(3),
        ..EngineConfig::default()
    };
    let killed = run_batch(&jobs, &killed_cfg).unwrap();
    assert!(killed.aborted);

    let resumed_cfg = EngineConfig {
        workers: 2,
        shards_per_job: 1,
        resume: true,
        journal_path: Some(dir.join("batch.journal")),
        results_dir: Some(dir.join("results")),
        ..EngineConfig::default()
    };
    let report = run_batch(&jobs, &resumed_cfg).unwrap();
    assert!(report.is_complete(), "{report:?}");
    let resumed: Vec<_> = report
        .jobs
        .iter()
        .filter(|j| j.status.name() == "resumed")
        .collect();
    assert!(
        resumed.len() >= 3,
        "sharded journal entries not honored: {report:?}"
    );
    assert!(resumed
        .iter()
        .any(|j| j.backend.as_deref().unwrap_or("").starts_with("sharded:4")));
    let _ = std::fs::remove_dir_all(&dir);
}
