#!/usr/bin/env bash
# Offline CI for the ECL-CC workspace: build, test, lint, format.
# The workspace has no external dependencies, so every step runs with
# --offline and must succeed without registry access.
set -euo pipefail

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
