#!/usr/bin/env bash
# Offline CI for the ECL-CC workspace: build, test, lint, format.
# The workspace has no external dependencies, so every step runs with
# --offline and must succeed without registry access.
set -euo pipefail

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> batch engine kill-and-resume"
# A small batch is SIGKILLed partway through (timeout sends KILL after the
# first jobs have been journaled), then resumed from the journal; the
# resumed run must report a complete batch.
BATCH_DIR=$(mktemp -d)
trap 'rm -rf "$BATCH_DIR"' EXIT
# Sized so the whole batch takes a couple of seconds in release mode:
# the 0.6 s KILL below lands strictly inside it.
cat > "$BATCH_DIR/jobs.txt" <<'EOF'
rand-a   gnm:200000:600000:1
rmat     rmat:16:8:2
grid     grid:400:400
rand-b   gnm:150000:450000:3
ring     cycle:300000
kron     kronecker:15:7:4
rand-c   gnm:180000:360000:5
cliques  cliques:100:50
EOF
ECL=./target/release/ecl-cc
# Uninterrupted reference for byte-level comparison.
"$ECL" batch --jobs "$BATCH_DIR/jobs.txt" --workers 2 \
    --journal "$BATCH_DIR/ref.journal" --results "$BATCH_DIR/ref" \
    --report "$BATCH_DIR/ref.json" > /dev/null
# Killed run: SIGKILL from `timeout`, mid-batch (if the kill happens to
# land after completion on a fast machine the step still passes — resume
# is then a no-op).
set +e
timeout -s KILL 0.6 \
    "$ECL" batch --jobs "$BATCH_DIR/jobs.txt" --workers 2 \
    --journal "$BATCH_DIR/run.journal" --results "$BATCH_DIR/res" \
    --report "$BATCH_DIR/killed.json" > /dev/null 2>&1
KILL_STATUS=$?
set -e
echo "    killed mid-batch (exit $KILL_STATUS); resuming from journal"
"$ECL" batch --jobs "$BATCH_DIR/jobs.txt" --workers 2 \
    --resume "$BATCH_DIR/run.journal" --results "$BATCH_DIR/res" \
    --report "$BATCH_DIR/resumed.json" > /dev/null
grep -q '"complete": true' "$BATCH_DIR/resumed.json" \
    || { echo "resumed batch report is not complete"; exit 1; }
# Certified labels must be byte-identical to the uninterrupted run.
for f in "$BATCH_DIR"/ref/*.labels; do
    cmp -s "$f" "$BATCH_DIR/res/$(basename "$f")" \
        || { echo "resume produced different bytes for $(basename "$f")"; exit 1; }
done
echo "    resume complete, results byte-identical"

echo "==> serial vs host-parallel equivalence smoke"
# The same graph labeled with the simulator serial and host-parallel
# (--sim-workers 0 = one per core); certified labels must be
# byte-identical between the modes.
"$ECL" generate rmat16.sym -o "$BATCH_DIR/eq.ecl" --scale tiny > /dev/null
"$ECL" components "$BATCH_DIR/eq.ecl" --algo gpu \
    --labels "$BATCH_DIR/serial.labels" > /dev/null
"$ECL" components "$BATCH_DIR/eq.ecl" --algo gpu --sim-workers 0 \
    --labels "$BATCH_DIR/parallel.labels" > /dev/null
cmp -s "$BATCH_DIR/serial.labels" "$BATCH_DIR/parallel.labels" \
    || { echo "host-parallel labels differ from serial"; exit 1; }
# And under fault injection, where interleavings diverge the most.
"$ECL" components "$BATCH_DIR/eq.ecl" --algo gpu --fault-plan everything:7 \
    --labels "$BATCH_DIR/serial-fault.labels" > /dev/null
"$ECL" components "$BATCH_DIR/eq.ecl" --algo gpu --fault-plan everything:7 \
    --sim-workers 3 --labels "$BATCH_DIR/parallel-fault.labels" > /dev/null
cmp -s "$BATCH_DIR/serial-fault.labels" "$BATCH_DIR/parallel-fault.labels" \
    || { echo "host-parallel labels differ from serial under faults"; exit 1; }
echo "    serial and host-parallel labels byte-identical"

echo "==> execution-mode equivalence suite"
# The golden determinism contract: serial cycle counts and per-level
# cache stats pinned bit-for-bit, host-parallel labels byte-identical to
# serial across worker counts and fault plans. (Also covered by the full
# `cargo test` above; run explicitly so a failure names the contract.)
cargo test -q --offline --test exec_equivalence > /dev/null
echo "    equivalence suite green"

echo "==> observability: profile artifacts + recorder-off equivalence"
# The profile subcommand must emit a schema-valid Chrome trace and
# metrics document (--validate re-parses both and fails on any schema
# drift), and the recorder must be observation-only: the golden cycle
# pins in exec_equivalence (asserted with recording on AND off, above)
# plus the dedicated observability suite gate this.
"$ECL" profile --graph rmat16.sym --scale tiny \
    --trace "$BATCH_DIR/profile_trace.json" \
    --metrics "$BATCH_DIR/profile_metrics.json" \
    --validate > /dev/null
grep -q '"schema":"ecl-trace-v1"' "$BATCH_DIR/profile_trace.json" \
    || { echo "profile trace missing schema tag"; exit 1; }
grep -q '"schema":"ecl-metrics-v1"' "$BATCH_DIR/profile_metrics.json" \
    || { echo "profile metrics missing schema tag"; exit 1; }
cargo test -q --offline --test observability > /dev/null
echo "    profile artifacts schema-valid; recording is observation-only"

echo "==> simspeed self-timing"
# Wall-clock of the simulator itself, serial vs a host-parallel worker
# matrix; the experiment asserts byte-identical certified labels
# internally, and each record carries speedup_vs_serial plus
# sim_edges_per_sec.
./target/release/harness simspeed --scale tiny \
    --json BENCH_simspeed.json > /dev/null
grep -q '"experiment":"simspeed"' BENCH_simspeed.json \
    || { echo "BENCH_simspeed.json missing simspeed records"; exit 1; }
# Smoke gate: on the largest bundled quick graph, parallel:4 wall-clock
# must not fall behind serial by more than a noise allowance (the engine
# multiplexes workers onto the available cores, so even a single-core
# host must stay near parity; 15% covers shared-host timer noise).
SPEEDUP=$(grep '"graph":"soc-LiveJournal1","code":"sim-parallel:4"' \
    BENCH_simspeed.json | grep -o '"speedup_vs_serial":[0-9.]*' | cut -d: -f2)
[ -n "$SPEEDUP" ] \
    || { echo "no parallel:4 record for soc-LiveJournal1"; exit 1; }
awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 0.85) }' \
    || { echo "parallel:4 fell behind serial beyond tolerance (speedup ${SPEEDUP}x < 0.85x)"; exit 1; }
echo "    simspeed matrix written to BENCH_simspeed.json (parallel:4 speedup ${SPEEDUP}x on soc-LiveJournal1)"

echo "==> serve: chaos + SIGKILL/resume smoke"
# The TCP server under concurrent load, a seeded chaos wave (truncated
# frames, stalls, disconnects, malformed/oversized lines), then a real
# SIGKILL mid-write-load followed by --resume. The experiment exits
# nonzero unless every acknowledged edge survives the kill, the drain is
# clean, and the server logs contain zero panics; the grep pins the
# greppable fields the acceptance gate names.
./target/release/harness serve --scale tiny \
    --json BENCH_serve.json > /dev/null
grep -q '"resume_verified":true' BENCH_serve.json \
    || { echo "serve: acked edges lost across SIGKILL/resume"; exit 1; }
grep -q '"server_panics":0' BENCH_serve.json \
    || { echo "serve: server panicked under chaos load"; exit 1; }
echo "    serve survived chaos + SIGKILL; all acked edges recovered"

echo "==> sharded vs serial byte-equality"
# The same graph labeled single-device serial and edge-cut across
# simulated devices; certified labels must be byte-identical, on two
# different topology classes (grid: tiny cut; RMAT: huge cut).
for G in 2d-2e20.sym rmat16.sym; do
    "$ECL" generate "$G" -o "$BATCH_DIR/shard.ecl" --scale tiny > /dev/null
    "$ECL" components "$BATCH_DIR/shard.ecl" \
        --labels "$BATCH_DIR/shard-serial.labels" > /dev/null
    for N in 2 3 5; do
        "$ECL" components "$BATCH_DIR/shard.ecl" --shards "$N" \
            --labels "$BATCH_DIR/shard-$N.labels" > /dev/null
        cmp -s "$BATCH_DIR/shard-serial.labels" "$BATCH_DIR/shard-$N.labels" \
            || { echo "$G: $N-shard labels differ from serial"; exit 1; }
    done
done
echo "    2/3/5-shard labels byte-identical to serial on both graphs"

echo "==> sharded chaos + mid-run device crash"
# Seeded interconnect chaos (dropped + corrupted frames) plus a device
# crash injected at exchange round 2; the run must recover the lost
# shard from its round-boundary checkpoint, still certify, and still
# produce the serial bytes.
"$ECL" components "$BATCH_DIR/shard.ecl" --shards 4 \
    --shard-chaos seed=5,drop=100,corrupt=60,crash=2 \
    --shard-ckpt "$BATCH_DIR/shard-ckpt" --crash-budget 1 \
    --labels "$BATCH_DIR/shard-crash.labels" > "$BATCH_DIR/shard-crash.out" 2>&1
grep -q "1 shards recovered" "$BATCH_DIR/shard-crash.out" \
    || { echo "device crash was not recovered"; cat "$BATCH_DIR/shard-crash.out"; exit 1; }
cmp -s "$BATCH_DIR/shard-serial.labels" "$BATCH_DIR/shard-crash.labels" \
    || { echo "post-recovery labels differ from serial"; exit 1; }
echo "    device crash recovered from checkpoint; labels still serial bytes"

echo "==> harness sharded gate"
# The full clean/chaos/crash matrix (quick graphs x 2/4/8 shards); the
# experiment itself exits nonzero unless every configuration is
# byte-identical to serial and every injected crash recovers.
./target/release/harness sharded --scale tiny \
    --json BENCH_sharded_ci.json > /dev/null
grep -q '"pass":true' BENCH_sharded_ci.json \
    || { echo "sharded matrix gate failed"; exit 1; }
rm -f BENCH_sharded_ci.json
echo "    sharded matrix: all configurations byte-identical, all crashes recovered"

echo "CI OK"
