//! Road-network reachability — the paper's introductory example ("the
//! road network of an island without bridges to it forms a connected
//! component") on a synthetic road map in the mould of its
//! `USA-road-d.*` / `europe_osm` inputs.
//!
//! Generates a sparse road network with damaged links (some fraction of
//! roads removed), labels the components, and answers reachability
//! queries. Road maps are the adversarial case for pointer jumping (§5.1),
//! so the example also reports the observed path-length statistics from
//! the simulated-GPU run.
//!
//! ```sh
//! cargo run -p ecl-examples --bin road_reachability --release -- --grid 120 --keep 0.55
//! ```

use ecl_cc::EclConfig;
use ecl_examples::arg_or;
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::generate;

fn main() {
    let grid: usize = arg_or("--grid", 120);
    let keep: f64 = arg_or("--keep", 0.55);
    let seed: u64 = arg_or("--seed", 11);

    // A damaged road network: lattice roads kept with probability `keep`,
    // no spanning spine — so the map fragments into islands.
    let g = generate::road_network(grid, grid, keep, 0.0, seed);
    println!(
        "road map: {} intersections, {} roads (avg degree {:.2})",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );

    // Label on the simulated GPU with the Table 4 path probe enabled.
    let cfg = EclConfig {
        record_path_lengths: true,
        ..Default::default()
    };
    let mut gpu = Gpu::new(DeviceProfile::titan_x());
    let (r, stats) = ecl_cc::gpu::run(&mut gpu, &g, &cfg);
    r.verify(&g).expect("labels verified");

    let sizes = r.component_sizes();
    println!("islands (connected components): {}", r.num_components());
    println!("largest island: {} intersections", sizes[0]);
    if let Some(p) = stats.path_lengths {
        println!(
            "union-find path lengths during computation: avg {:.2}, max {} \
             (road maps are the paper's worst case — cf. Table 4)",
            p.average(),
            p.max
        );
    }

    // Reachability queries between the four corners of the map.
    let corners = [
        ("NW", 0u32),
        ("NE", (grid - 1) as u32),
        ("SW", ((grid - 1) * grid) as u32),
        ("SE", (grid * grid - 1) as u32),
    ];
    println!("\ncorner-to-corner reachability:");
    for i in 0..corners.len() {
        for j in (i + 1)..corners.len() {
            let (na, a) = corners[i];
            let (nb, b) = corners[j];
            let reach = if r.same_component(a, b) {
                "reachable"
            } else {
                "CUT OFF"
            };
            println!("  {na} -> {nb}: {reach}");
        }
    }
}
