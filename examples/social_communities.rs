//! Connected components of a social-style network — the paper's
//! biochemistry/PPI motivation ("interacting proteins are connected in the
//! PPI network") transposed to the social graphs of its Table 2
//! (`soc-LiveJournal1`, `amazon0601`).
//!
//! Builds a preferential-attachment network with extra isolated users,
//! finds the giant component, and compares ECL-CC against three baselines
//! from the paper on the same input.
//!
//! ```sh
//! cargo run -p ecl-examples --bin social_communities --release -- --users 20000
//! ```

use ecl_examples::arg_or;
use ecl_graph::{builder, generate};
use std::time::Instant;

fn main() {
    let users: usize = arg_or("--users", 20_000);
    let friends: usize = arg_or("--friends", 4);
    let threads: usize = arg_or("--threads", 4);

    // Core network + 5% isolated accounts.
    let core = generate::preferential_attachment(users, friends, 7);
    let edges: Vec<_> = core.edges().collect();
    let g = builder::from_edges(users + users / 20, &edges);
    println!(
        "social network: {} users, {} friendships, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    let t = Instant::now();
    let r = ecl_cc::connected_components_par(&g, threads);
    let ecl_ms = t.elapsed().as_secs_f64() * 1e3;
    r.verify(&g).expect("labels verified");

    let sizes = r.component_sizes();
    println!(
        "\ncommunities (connected components): {}",
        r.num_components()
    );
    println!(
        "giant component: {} users ({:.1}%)",
        sizes[0],
        100.0 * sizes[0] as f64 / g.num_vertices() as f64
    );
    println!(
        "isolated users: {}",
        sizes.iter().filter(|&&s| s == 1).count()
    );

    // Same computation with three of the paper's baselines.
    println!("\nruntime comparison ({threads} threads):");
    println!("  ECL-CC (parallel):  {ecl_ms:.2} ms");
    let t = Instant::now();
    let lp = ecl_baselines::cpu::label_prop::run(&g, threads);
    println!(
        "  Ligra+ Comp style:  {:.2} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    let t = Instant::now();
    let bfs = ecl_baselines::cpu::bfscc::run(&g, threads);
    println!(
        "  Ligra+ BFSCC style: {:.2} ms",
        t.elapsed().as_secs_f64() * 1e3
    );
    let t = Instant::now();
    let ser = ecl_baselines::serial::dfs_cc(&g);
    println!(
        "  Boost style (serial): {:.2} ms",
        t.elapsed().as_secs_f64() * 1e3
    );

    // All four agree on the partition.
    for other in [&lp, &bfs, &ser] {
        assert_eq!(
            ecl_graph::stats::canonicalize_labels(&r.labels),
            ecl_graph::stats::canonicalize_labels(&other.labels)
        );
    }
    println!("\nall four algorithms found the same communities ✓");
}
