//! Connected-component labeling of a raster image — the computer-vision
//! application the paper's introduction cites ("in computer vision, it is
//! used for object detection; the pixels of an object are typically
//! connected").
//!
//! Generates a synthetic binary image with blob-shaped objects, builds the
//! 4-connectivity pixel graph over the foreground, labels it with ECL-CC,
//! and prints the segmented image plus per-object statistics.
//!
//! ```sh
//! cargo run -p ecl-examples --bin image_segmentation --release -- --size 48 --blobs 6
//! ```

use ecl_examples::arg_or;
use ecl_graph::generate::Pcg32;
use ecl_graph::GraphBuilder;

fn main() {
    let size: usize = arg_or("--size", 48);
    let blobs: usize = arg_or("--blobs", 6);
    let seed: u64 = arg_or("--seed", 42);

    // --- synthesize a binary image with random blobs ---------------------
    let mut rng = Pcg32::new(seed);
    let mut img = vec![false; size * size];
    for _ in 0..blobs {
        let cx = rng.below(size as u32) as i64;
        let cy = rng.below(size as u32) as i64;
        let r = 2 + rng.below(size as u32 / 6) as i64;
        for y in 0..size as i64 {
            for x in 0..size as i64 {
                if (x - cx).pow(2) + (y - cy).pow(2) <= r * r {
                    img[y as usize * size + x as usize] = true;
                }
            }
        }
    }

    // --- build the 4-connectivity graph over foreground pixels -----------
    let mut b = GraphBuilder::new(size * size);
    for y in 0..size {
        for x in 0..size {
            if !img[y * size + x] {
                continue;
            }
            let id = (y * size + x) as u32;
            if x + 1 < size && img[y * size + x + 1] {
                b.add_edge(id, id + 1);
            }
            if y + 1 < size && img[(y + 1) * size + x] {
                b.add_edge(id, id + size as u32);
            }
        }
    }
    let g = b.build();

    // --- label with ECL-CC ----------------------------------------------
    let labels = ecl_cc::connected_components_par(&g, 4);
    labels.verify(&g).expect("segmentation labels verified");

    // Objects = components that contain at least one foreground pixel.
    let mut object_ids: Vec<u32> = (0..size * size)
        .filter(|&p| img[p])
        .map(|p| labels.labels[p])
        .collect();
    object_ids.sort_unstable();
    object_ids.dedup();

    // --- render -----------------------------------------------------------
    let glyphs: &[u8] = b"#@%*+=o&$";
    println!(
        "segmented image ({size}x{size}, {} objects):",
        object_ids.len()
    );
    for y in 0..size {
        let mut line = String::with_capacity(size);
        for x in 0..size {
            let p = y * size + x;
            if !img[p] {
                line.push('.');
            } else {
                let obj = object_ids.binary_search(&labels.labels[p]).unwrap();
                line.push(glyphs[obj % glyphs.len()] as char);
            }
        }
        println!("{line}");
    }
    println!("\nobject sizes (pixels):");
    for (i, &oid) in object_ids.iter().enumerate() {
        let sz = (0..size * size)
            .filter(|&p| img[p] && labels.labels[p] == oid)
            .count();
        println!(
            "  object {} ({}): {sz}",
            i,
            glyphs[i % glyphs.len()] as char
        );
    }
}
