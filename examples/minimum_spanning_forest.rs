//! Minimum spanning forest on the ECL union-find — the extension the
//! paper's conclusion proposes ("intermediate pointer jumping … should be
//! able to accelerate other GPU algorithms that are based on union find,
//! such as Kruskal's algorithm").
//!
//! Builds a weighted road network, computes its MSF three ways (serial
//! Kruskal, parallel Borůvka, simulated-GPU Borůvka), checks they agree,
//! and demonstrates the conclusion's prediction by timing the GPU Borůvka
//! under each pointer-jumping variant.
//!
//! ```sh
//! cargo run -p ecl-examples --bin minimum_spanning_forest --release -- --grid 60
//! ```

use ecl_examples::arg_or;
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::generate;
use ecl_unionfind::concurrent::JumpKind;
use ecl_unionfind::Compression;
use std::time::Instant;

fn main() {
    let grid: usize = arg_or("--grid", 60);
    let g = generate::road_network(grid, grid, 0.4, 1.0, 3);
    println!(
        "weighted road network: {} intersections, {} roads",
        g.num_vertices(),
        g.num_edges()
    );

    let t = Instant::now();
    let kruskal = ecl_spanning::kruskal::run(&g, Compression::Halving);
    println!(
        "\nKruskal (serial, path halving): weight {}, {} edges, {:.2} ms",
        kruskal.total_weight,
        kruskal.edges.len(),
        t.elapsed().as_secs_f64() * 1e3
    );

    let t = Instant::now();
    let boruvka = ecl_spanning::boruvka::run(&g, 4);
    println!(
        "Boruvka (parallel, 4 threads):  weight {}, {} edges, {:.2} ms",
        boruvka.total_weight,
        boruvka.edges.len(),
        t.elapsed().as_secs_f64() * 1e3
    );

    let mut gpu = Gpu::new(DeviceProfile::titan_x());
    let gpu_forest = ecl_spanning::gpu_boruvka::run(&mut gpu, &g, JumpKind::Intermediate);
    println!(
        "Boruvka (simulated GPU):        weight {}, {} edges, {} cycles",
        gpu_forest.total_weight,
        gpu_forest.edges.len(),
        gpu.total_cycles()
    );

    assert_eq!(kruskal.total_weight, boruvka.total_weight);
    assert_eq!(kruskal.total_weight, gpu_forest.total_weight);
    kruskal.validate(&g).unwrap();
    boruvka.validate(&g).unwrap();
    gpu_forest.validate(&g).unwrap();
    println!("all three forests have minimum weight ✓");

    // The paper's closing prediction, measured: pointer jumping inside the
    // union-find find dominates GPU Borůvka's runtime too.
    println!("\nGPU Boruvka under each pointer-jumping variant (simulated cycles):");
    for (name, jump) in [
        ("Jump1 multiple    ", JumpKind::Multiple),
        ("Jump2 single      ", JumpKind::Single),
        ("Jump3 none        ", JumpKind::None),
        ("Jump4 intermediate", JumpKind::Intermediate),
    ] {
        let mut gpu = Gpu::new(DeviceProfile::titan_x());
        let f = ecl_spanning::gpu_boruvka::run(&mut gpu, &g, jump);
        assert_eq!(f.total_weight, kruskal.total_weight);
        println!("  {name}  {:>12} cycles", gpu.total_cycles());
    }
}
