//! Shared helpers for the example binaries (argument parsing kept tiny and
//! dependency-free).

/// Returns the value following `--flag` in the args, parsed, or `default`.
pub fn arg_or<T: std::str::FromStr>(flag: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True if `--flag` is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}
