//! A walk through the SIMT simulator's observability: runs GPU ECL-CC on
//! one catalog graph on both device profiles and dumps everything the
//! paper's methodology measures — per-kernel cycles and the runtime
//! breakdown (Fig. 10), worklist routing, L2 traffic (Table 3's raw
//! counters), and the Titan X vs K40 comparison (Tables 5 vs 6).
//!
//! ```sh
//! cargo run -p ecl-examples --bin gpu_profile --release -- --graph rmat16.sym
//! ```

use ecl_cc::EclConfig;
use ecl_examples::arg_or;
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::catalog::{PaperGraph, Scale};

fn main() {
    let wanted: String = arg_or("--graph", "rmat16.sym".to_string());
    let pg = PaperGraph::ALL
        .iter()
        .find(|p| p.info().name == wanted)
        .copied()
        .unwrap_or_else(|| {
            eprintln!("unknown graph '{wanted}'; available:");
            for p in PaperGraph::ALL {
                eprintln!("  {}", p.info().name);
            }
            std::process::exit(2);
        });
    let g = pg.generate(Scale::Bench);
    println!(
        "{}: {} vertices, {} directed edges, dmax {}",
        wanted,
        g.num_vertices(),
        g.num_directed_edges(),
        g.max_degree()
    );

    for profile in [DeviceProfile::titan_x(), DeviceProfile::k40()] {
        let mut gpu = Gpu::new(profile.clone());
        let (r, stats) = ecl_cc::gpu::run(&mut gpu, &g, &EclConfig::default());
        r.verify(&g).expect("labels verified");

        let total = stats.total_cycles();
        println!("\n=== {} ===", profile.name);
        println!(
            "total: {} cycles ({:.3} simulated ms), {} components",
            total,
            profile.cycles_to_ms(total),
            r.num_components()
        );
        println!(
            "worklist routing: {} mid-degree (warp kernel), {} high-degree (block kernel)",
            stats.worklist_mid, stats.worklist_big
        );
        println!(
            "SM load balance: {:.2} (mean busy cycles / max; 1.0 = perfect)",
            gpu.sm_balance()
        );
        println!(
            "{:<10} {:>10} {:>7} {:>12} {:>9} {:>9} {:>8}",
            "kernel", "cycles", "share", "instructions", "L2 reads", "L2 writes", "atomics"
        );
        for k in &stats.kernels {
            println!(
                "{:<10} {:>10} {:>6.1}% {:>12} {:>9} {:>9} {:>8}",
                k.name,
                k.cycles,
                100.0 * k.cycles as f64 / total as f64,
                k.instructions,
                k.l2_read_accesses,
                k.l2_write_accesses,
                k.atomics
            );
        }
    }
    println!(
        "\n(the Fig. 10 pattern: most time in the compute kernels, init next, finalize least)"
    );
}
