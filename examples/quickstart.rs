//! Quickstart: build a graph, run all three ECL-CC implementations, and
//! verify they agree.
//!
//! ```sh
//! cargo run -p ecl-examples --bin quickstart --release
//! ```

use ecl_cc::EclConfig;
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::GraphBuilder;

fn main() {
    // 1. Build a graph from raw edges. Duplicates, self-loops, and missing
    //    back edges are all cleaned up by the builder.
    let mut b = GraphBuilder::new(0);
    for (u, v) in [
        (0, 1),
        (1, 2),
        (2, 0), // a triangle
        (3, 4),
        (4, 5), // a path
        (6, 6), // a self-loop (dropped)
        (7, 8),
        (8, 7), // duplicate edge (collapsed)
    ] {
        b.add_edge(u, v);
    }
    b.ensure_vertices(10); // vertex 9 stays isolated
    let g = b.build();
    println!(
        "graph: {} vertices, {} undirected edges",
        g.num_vertices(),
        g.num_edges()
    );

    // 2. Serial ECL-CC.
    let serial = ecl_cc::connected_components(&g);
    println!(
        "serial:   {} components, labels = {:?}",
        serial.num_components(),
        serial.labels
    );

    // 3. Parallel (OpenMP-style) ECL-CC.
    let par = ecl_cc::connected_components_par(&g, 4);
    println!("parallel: {} components", par.num_components());

    // 4. GPU ECL-CC on the SIMT simulator, with kernel statistics.
    let mut gpu = Gpu::new(DeviceProfile::titan_x());
    let (gpu_result, stats) = ecl_cc::gpu::run(&mut gpu, &g, &EclConfig::default());
    println!("gpu:      {} components", gpu_result.num_components());
    for k in &stats.kernels {
        println!(
            "  kernel {:<9} {:>8} cycles  {:>6} instr  {:>4} L2 reads",
            k.name, k.cycles, k.instructions, k.l2_read_accesses
        );
    }

    // 5. All three agree, and all match the BFS ground truth.
    assert_eq!(serial.labels, par.labels);
    assert_eq!(serial.labels, gpu_result.labels);
    serial.verify(&g).expect("verified against BFS reference");
    println!("all implementations agree ✓");

    // 6. Query the result.
    assert!(serial.same_component(0, 2));
    assert!(!serial.same_component(0, 3));
    println!("component sizes: {:?}", serial.component_sizes());

    // 7. Streaming mode: insert edges online, query as you go.
    let cc = ecl_cc::incremental::IncrementalCc::new(g.num_vertices());
    for (u, v) in g.edges() {
        cc.add_edge(u, v);
    }
    assert!(cc.connected(0, 2));
    assert!(!cc.connected(0, 9));
    let was_new = cc.add_edge(2, 9); // bridge the triangle to vertex 9
    assert!(was_new && cc.connected(0, 9));
    println!(
        "streaming: {} components after bridging",
        cc.num_components()
    );
}
