//! Graph serialization: plain edge lists, DIMACS `.gr`, Matrix Market
//! coordinate format, and a compact little-endian binary CSR format.
//!
//! The paper pulls inputs from four repositories (DIMACS, Galois, SNAP,
//! SMC); these readers cover the formats those repositories distribute so
//! real inputs can be dropped in where available. All readers feed
//! [`GraphBuilder`], so dirty input (loops, duplicates, one-directional
//! edges) is normalized exactly as the paper describes.

use crate::{CsrGraph, GraphBuilder, Vertex};
use std::io::{self, BufRead, BufReader, Read, Write};

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the input text, with a human-readable message.
    Parse(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

fn parse_err(msg: impl Into<String>) -> IoError {
    IoError::Parse(msg.into())
}

/// Ceiling on preallocation driven by *untrusted* header fields. A tiny
/// file can declare a huge element count; allocating it up front would be
/// an OOM denial-of-service. Within the cap we preallocate for speed;
/// beyond it the `Vec`s grow as actual data arrives, so a lying header
/// fails with a truncation error instead of exhausting memory.
const MAX_TRUSTED_PREALLOC: usize = 1 << 20;

fn capped(declared: usize) -> usize {
    declared.min(MAX_TRUSTED_PREALLOC)
}

/// Ceiling on the vertex count a *text* header may declare. Unlike edge
/// counts (covered by [`MAX_TRUSTED_PREALLOC`] — the `Vec`s grow only as
/// actual data arrives), a declared vertex count flows into the O(n) CSR
/// offset array even when no arc ever references those vertices, so a
/// 20-byte file claiming 4 billion vertices would allocate tens of GB.
/// The binary formats are self-limiting (a lying header trips the
/// truncation check first); for DIMACS and Matrix Market we refuse
/// declarations past this bound — 2^28 ≈ 268M vertices, ~5× the largest
/// graph in the paper's evaluation.
const MAX_DECLARED_VERTICES: usize = 1 << 28;

fn check_declared_vertices(n: usize, what: &str) -> Result<(), IoError> {
    if n >= Vertex::MAX as usize {
        return Err(parse_err(format!("declared {what} {n} exceeds 32-bit IDs")));
    }
    if n > MAX_DECLARED_VERTICES {
        return Err(parse_err(format!(
            "declared {what} {n} exceeds the reader limit {MAX_DECLARED_VERTICES}; \
             refusing header-driven allocation"
        )));
    }
    Ok(())
}

/// Reads a whitespace-separated edge list (SNAP style): one `u v` pair per
/// line, `#`-prefixed comment lines ignored. Vertex IDs are used as-is.
pub fn read_edge_list(r: impl Read) -> Result<CsrGraph, IoError> {
    let mut b = GraphBuilder::new(0);
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: Vertex = it
            .next()
            .ok_or_else(|| parse_err(format!("line {}: missing source", lineno + 1)))?
            .parse()
            .map_err(|e| parse_err(format!("line {}: {e}", lineno + 1)))?;
        let v: Vertex = it
            .next()
            .ok_or_else(|| parse_err(format!("line {}: missing target", lineno + 1)))?
            .parse()
            .map_err(|e| parse_err(format!("line {}: {e}", lineno + 1)))?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Writes the graph as an edge list, each undirected edge once (`u < v`).
pub fn write_edge_list(g: &CsrGraph, mut w: impl Write) -> io::Result<()> {
    writeln!(w, "# ecl-graph edge list: {} vertices", g.num_vertices())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Reads a DIMACS shortest-path `.gr` file: `c` comments, one
/// `p sp <n> <m>` problem line, and `a <u> <v> <w>` arc lines with
/// 1-indexed vertices (weights ignored — CC is unweighted).
pub fn read_dimacs(r: impl Read) -> Result<CsrGraph, IoError> {
    let mut b = GraphBuilder::new(0);
    let mut declared_n = None;
    for (lineno, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        if let Some(rest) = t.strip_prefix("p ") {
            if declared_n.is_some() {
                return Err(parse_err(format!(
                    "line {}: duplicate problem line",
                    lineno + 1
                )));
            }
            let mut it = rest.split_whitespace();
            let _kind = it.next();
            let n: usize = it
                .next()
                .ok_or_else(|| parse_err("problem line missing n"))?
                .parse()
                .map_err(|e| parse_err(format!("problem line: {e}")))?;
            check_declared_vertices(n, "vertex count")?;
            declared_n = Some(n);
            b.ensure_vertices(n);
        } else if let Some(rest) = t.strip_prefix("a ") {
            if declared_n.is_none() {
                return Err(parse_err(format!(
                    "line {}: arc before the problem line (missing `p` header?)",
                    lineno + 1
                )));
            }
            let mut it = rest.split_whitespace();
            let u: Vertex = it
                .next()
                .ok_or_else(|| parse_err(format!("line {}: missing u", lineno + 1)))?
                .parse()
                .map_err(|e| parse_err(format!("line {}: {e}", lineno + 1)))?;
            let v: Vertex = it
                .next()
                .ok_or_else(|| parse_err(format!("line {}: missing v", lineno + 1)))?
                .parse()
                .map_err(|e| parse_err(format!("line {}: {e}", lineno + 1)))?;
            if u == 0 || v == 0 {
                return Err(parse_err(format!(
                    "line {}: DIMACS vertices are 1-indexed",
                    lineno + 1
                )));
            }
            b.add_edge(u - 1, v - 1);
        } else {
            return Err(parse_err(format!(
                "line {}: unrecognized record '{t}'",
                lineno + 1
            )));
        }
    }
    if let Some(n) = declared_n {
        if b.num_vertices() > n {
            return Err(parse_err(format!(
                "arc endpoints exceed declared vertex count {n}"
            )));
        }
    }
    Ok(b.build())
}

/// Reads a Matrix Market coordinate-pattern file (the SMC distribution
/// format): `%%MatrixMarket`-header, size line `rows cols nnz`, then
/// 1-indexed `i j [value]` entries. The matrix must be square; values are
/// ignored and the pattern is symmetrized.
pub fn read_matrix_market(r: impl Read) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(r);
    let mut lines = reader.lines();
    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    if !header.starts_with("%%MatrixMarket") {
        return Err(parse_err("missing %%MatrixMarket header"));
    }
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim().to_string();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(t);
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|s| s.parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|e| parse_err(format!("size line: {e}")))?;
    if dims.len() != 3 {
        return Err(parse_err("size line must have rows cols nnz"));
    }
    if dims[0] != dims[1] {
        return Err(parse_err(format!(
            "matrix must be square, got {}x{}",
            dims[0], dims[1]
        )));
    }
    check_declared_vertices(dims[0], "dimension")?;
    let mut b = GraphBuilder::with_capacity(capped(dims[0]), capped(dims[2]));
    b.ensure_vertices(dims[0]);
    let mut entries = 0usize;
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        entries += 1;
        if entries > dims[2] {
            return Err(parse_err(format!(
                "more entries than the declared nnz {}",
                dims[2]
            )));
        }
        let mut it = t.split_whitespace();
        let i: Vertex = it
            .next()
            .ok_or_else(|| parse_err(format!("entry {}: missing row", lineno + 1)))?
            .parse()
            .map_err(|e| parse_err(format!("entry {}: {e}", lineno + 1)))?;
        let j: Vertex = it
            .next()
            .ok_or_else(|| parse_err(format!("entry {}: missing col", lineno + 1)))?
            .parse()
            .map_err(|e| parse_err(format!("entry {}: {e}", lineno + 1)))?;
        if i == 0 || j == 0 {
            return Err(parse_err("Matrix Market entries are 1-indexed"));
        }
        if i as usize > dims[0] || j as usize > dims[0] {
            return Err(parse_err(format!(
                "entry ({i}, {j}) outside the declared {0}x{0} matrix",
                dims[0]
            )));
        }
        b.add_edge(i - 1, j - 1);
    }
    Ok(b.build())
}

/// Reads a Galois binary `.gr` file (format version 1) — the format the
/// paper's Galois-sourced inputs (`2d-2e20.sym`, `r4-2e23.sym`,
/// `rmat*.sym`) are distributed in: a 4×`u64` header (version,
/// edge-data size, `n`, `m`), `n` little-endian `u64` *end* offsets,
/// then `m` `u32` destinations (padded to 8-byte alignment). Edge data,
/// if present, is ignored (CC is unweighted).
pub fn read_galois_gr(mut r: impl Read) -> Result<CsrGraph, IoError> {
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |r: &mut dyn Read| -> Result<u64, IoError> {
        r.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let version = read_u64(&mut r)?;
    if version != 1 {
        return Err(parse_err(format!("unsupported .gr version {version}")));
    }
    let _edge_data_size = read_u64(&mut r)?;
    let n64 = read_u64(&mut r)?;
    let m64 = read_u64(&mut r)?;
    if n64 >= u64::from(Vertex::MAX) || m64 >= u64::from(Vertex::MAX) {
        return Err(parse_err(format!(
            "header declares {n64} nodes / {m64} edges; exceeds 32-bit IDs"
        )));
    }
    let (n, m) = (n64 as usize, m64 as usize);
    let mut offsets = Vec::with_capacity(capped(n + 1));
    offsets.push(0usize);
    let mut prev = 0u64;
    for i in 0..n {
        let end = read_u64(&mut r)?;
        if end < prev || end as usize > m {
            return Err(parse_err(format!("non-monotone out-index at node {i}")));
        }
        offsets.push(end as usize);
        prev = end;
    }
    if offsets[n] != m {
        return Err(parse_err(format!(
            "last out-index {} != edge count {m}",
            offsets[n]
        )));
    }
    let mut dests = Vec::with_capacity(capped(m));
    let mut u32buf = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut u32buf)?;
        dests.push(u32::from_le_bytes(u32buf));
    }
    // Normalize through the builder: .gr files are directed and may have
    // loops/duplicates; the paper symmetrizes and cleans them (§4).
    let mut b = GraphBuilder::with_capacity(capped(n), capped(m));
    b.ensure_vertices(n);
    for v in 0..n {
        for &u in &dests[offsets[v]..offsets[v + 1]] {
            if (u as usize) >= n {
                return Err(parse_err(format!("destination {u} out of range")));
            }
            b.add_edge(v as Vertex, u);
        }
    }
    Ok(b.build())
}

/// Writes a Galois binary `.gr` file (version 1, no edge data), storing
/// both directions of each edge, matching how the `.sym` inputs are
/// distributed.
pub fn write_galois_gr(g: &CsrGraph, mut w: impl Write) -> io::Result<()> {
    w.write_all(&1u64.to_le_bytes())?; // version
    w.write_all(&0u64.to_le_bytes())?; // edge data size
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_directed_edges() as u64).to_le_bytes())?;
    for v in g.vertices() {
        w.write_all(&(g.neighbor_end(v) as u64).to_le_bytes())?;
    }
    for &u in g.adjacency() {
        w.write_all(&u.to_le_bytes())?;
    }
    // Pad the u32 destination block to 8-byte alignment.
    if g.num_directed_edges() % 2 == 1 {
        w.write_all(&[0u8; 4])?;
    }
    Ok(())
}

const BINARY_MAGIC: &[u8; 8] = b"ECLCSR01";

/// Writes the compact binary CSR format: magic, `n`, `2m`, offsets as
/// `u64`, adjacency as `u32`, all little-endian. Round-trips exactly.
pub fn write_binary(g: &CsrGraph, mut w: impl Write) -> io::Result<()> {
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_directed_edges() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &v in g.adjacency() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads the binary CSR format written by [`write_binary`]. Validates all
/// CSR invariants before returning.
pub fn read_binary(mut r: impl Read) -> Result<CsrGraph, IoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(parse_err("bad magic; not an ECLCSR01 file"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n64 = u64::from_le_bytes(buf8);
    r.read_exact(&mut buf8)?;
    let dm64 = u64::from_le_bytes(buf8);
    if n64 >= u64::from(Vertex::MAX) || dm64 >= u64::from(Vertex::MAX) {
        return Err(parse_err(format!(
            "header declares {n64} vertices / {dm64} directed edges; exceeds 32-bit IDs"
        )));
    }
    let (n, dm) = (n64 as usize, dm64 as usize);
    let mut offsets = Vec::with_capacity(capped(n + 1));
    for _ in 0..=n {
        r.read_exact(&mut buf8)?;
        offsets.push(u64::from_le_bytes(buf8) as usize);
    }
    let mut adj = Vec::with_capacity(capped(dm));
    let mut buf4 = [0u8; 4];
    for _ in 0..dm {
        r.read_exact(&mut buf4)?;
        adj.push(u32::from_le_bytes(buf4));
    }
    CsrGraph::from_parts(offsets, adj).map_err(IoError::Parse)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn edge_list_roundtrip() {
        let g = generate::gnm_random(200, 600, 1);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        // Isolated trailing vertices are lost in edge-list form; compare
        // edges only.
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn edge_list_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n% more\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_bad_token() {
        let e = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse(_)));
    }

    #[test]
    fn dimacs_roundtrip_semantics() {
        let text = "c road graph\np sp 4 3\na 1 2 10\na 2 3 5\na 3 2 5\n";
        let g = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2); // (0,1), (1,2); duplicate collapsed
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn dimacs_rejects_zero_index() {
        let e = read_dimacs("a 0 1 1\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse(_)));
    }

    #[test]
    fn dimacs_rejects_out_of_range() {
        let e = read_dimacs("p sp 2 1\na 1 5 1\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse(_)));
    }

    #[test]
    fn matrix_market_basic() {
        let text =
            "%%MatrixMarket matrix coordinate pattern symmetric\n% c\n3 3 3\n1 2\n2 3\n3 3\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2); // diagonal entry (self loop) dropped
    }

    #[test]
    fn matrix_market_rejects_rectangular() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 4 0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn galois_gr_roundtrip() {
        let g = generate::rmat(8, 6, generate::RmatParams::GALOIS, 11);
        let mut buf = Vec::new();
        write_galois_gr(&g, &mut buf).unwrap();
        let g2 = read_galois_gr(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn galois_gr_directed_input_symmetrized() {
        // Hand-build a v1 .gr with only one direction per edge: 3 nodes,
        // edges 0->1, 0->2 (out-index ends: 2, 2, 2).
        let mut buf = Vec::new();
        for v in [1u64, 0, 3, 2] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for end in [2u64, 2, 2] {
            buf.extend_from_slice(&end.to_le_bytes());
        }
        for d in [1u32, 2] {
            buf.extend_from_slice(&d.to_le_bytes());
        }
        let g = read_galois_gr(&buf[..]).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0), "back edge must be added");
    }

    #[test]
    fn galois_gr_rejects_bad_version_and_bounds() {
        let mut buf = Vec::new();
        for v in [2u64, 0, 1, 0] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        assert!(matches!(read_galois_gr(&buf[..]), Err(IoError::Parse(_))));

        let mut buf = Vec::new();
        for v in [1u64, 0, 2, 1] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        for end in [1u64, 1] {
            buf.extend_from_slice(&end.to_le_bytes());
        }
        buf.extend_from_slice(&9u32.to_le_bytes()); // dest out of range
        assert!(matches!(read_galois_gr(&buf[..]), Err(IoError::Parse(_))));
    }

    #[test]
    fn binary_roundtrip_exact() {
        let g = generate::rmat(8, 8, generate::RmatParams::GALOIS, 4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_bad_magic() {
        let e = read_binary(&b"NOTMAGIC"[..]).unwrap_err();
        assert!(matches!(e, IoError::Parse(_)));
    }

    #[test]
    fn binary_truncated() {
        let g = generate::path(10);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Io(_))));
    }

    // ------------------------------------------------------------------
    // Malformed-input battery: every case must return IoError — never
    // panic, never attempt a header-sized allocation.
    // ------------------------------------------------------------------

    #[test]
    fn edge_list_vertex_id_overflow() {
        // 2^32 does not fit a u32 vertex ID.
        let e = read_edge_list("0 4294967296\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse(_)));
    }

    #[test]
    fn edge_list_negative_and_garbage_tokens() {
        for bad in ["-1 2\n", "0 -2\n", "1e3 4\n", "0x10 1\n", "∞ 1\n"] {
            let e = read_edge_list(bad.as_bytes()).unwrap_err();
            assert!(matches!(e, IoError::Parse(_)), "{bad:?}");
        }
    }

    #[test]
    fn edge_list_missing_target() {
        let e = read_edge_list("7\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse(_)));
    }

    #[test]
    fn dimacs_rejects_duplicate_problem_line() {
        let text = "p sp 3 1\np sp 3 1\na 1 2 1\n";
        let e = read_dimacs(text.as_bytes()).unwrap_err();
        assert!(
            matches!(e, IoError::Parse(ref m) if m.contains("duplicate")),
            "{e}"
        );
    }

    #[test]
    fn dimacs_rejects_arc_before_header() {
        let e = read_dimacs("a 1 2 1\n".as_bytes()).unwrap_err();
        assert!(
            matches!(e, IoError::Parse(ref m) if m.contains("problem line")),
            "{e}"
        );
    }

    #[test]
    fn dimacs_rejects_oversized_declaration() {
        // Declares 2^32 vertices: cannot be indexed by u32, and must not
        // be allocated either.
        let e = read_dimacs("p sp 4294967296 0\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse(_)));
    }

    #[test]
    fn dimacs_rejects_huge_vertex_declaration_no_oom() {
        // 4e9 fits in u32 but would drive a ~32 GB CSR offset allocation
        // off a 20-byte file; the declared-vertex ceiling refuses it.
        let e = read_dimacs("p sp 4000000000 5\n".as_bytes()).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("reader limit"), "got: {msg}");
    }

    #[test]
    fn matrix_market_rejects_huge_dimension_no_oom() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    4000000000 4000000000 1\n1 2\n";
        let e = read_matrix_market(text.as_bytes()).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("reader limit"), "got: {msg}");
    }

    #[test]
    fn dimacs_rejects_garbage_tokens() {
        let e = read_dimacs("p sp 3 1\na one 2 1\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse(_)));
        let e = read_dimacs("p sp x 1\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse(_)));
    }

    #[test]
    fn matrix_market_missing_header() {
        let e = read_matrix_market("3 3 1\n1 2\n".as_bytes()).unwrap_err();
        assert!(
            matches!(e, IoError::Parse(ref m) if m.contains("MatrixMarket")),
            "{e}"
        );
    }

    #[test]
    fn matrix_market_empty_and_headerless() {
        assert!(read_matrix_market("".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix\n".as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_out_of_range_entry() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n1 9\n";
        let e = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(
            matches!(e, IoError::Parse(ref m) if m.contains("outside")),
            "{e}"
        );
    }

    #[test]
    fn matrix_market_rejects_excess_entries() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n1 2\n2 3\n";
        let e = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(
            matches!(e, IoError::Parse(ref m) if m.contains("nnz")),
            "{e}"
        );
    }

    #[test]
    fn matrix_market_huge_declared_nnz_no_oom() {
        // The size line promises 10^15 entries; the reader must neither
        // allocate for them nor crash — the actual data just ends.
        let text =
            "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1000000000000000\n1 2\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn galois_gr_truncated_header_and_body() {
        // Truncated header.
        assert!(matches!(
            read_galois_gr(&1u64.to_le_bytes()[..]),
            Err(IoError::Io(_))
        ));
        // Header promises more offsets than the file holds.
        let mut buf = Vec::new();
        for v in [1u64, 0, 100, 0] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        assert!(matches!(read_galois_gr(&buf[..]), Err(IoError::Io(_))));
    }

    #[test]
    fn galois_gr_huge_header_no_oom() {
        // Claims 2^62 nodes in a 32-byte file: must fail fast, without
        // attempting the allocation.
        let mut buf = Vec::new();
        for v in [1u64, 0, 1u64 << 62, 0] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let e = read_galois_gr(&buf[..]).unwrap_err();
        assert!(
            matches!(e, IoError::Parse(ref m) if m.contains("32-bit")),
            "{e}"
        );
    }

    #[test]
    fn binary_huge_header_no_oom() {
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC);
        buf.extend_from_slice(&(1u64 << 62).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let e = read_binary(&buf[..]).unwrap_err();
        assert!(
            matches!(e, IoError::Parse(ref m) if m.contains("32-bit")),
            "{e}"
        );
    }

    #[test]
    fn binary_inconsistent_offsets_rejected() {
        // Valid sizes but offsets that violate CSR invariants: caught by
        // from_parts validation, as a Parse error.
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC);
        buf.extend_from_slice(&2u64.to_le_bytes()); // n = 2
        buf.extend_from_slice(&1u64.to_le_bytes()); // dm = 1
        for o in [0u64, 5, 1] {
            // non-monotone, out of range
            buf.extend_from_slice(&o.to_le_bytes());
        }
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(IoError::Parse(_))));
    }
}
