//! Graph statistics matching the columns of the paper's Table 2:
//! vertex/edge counts, dmin/davg/dmax, and the number of connected
//! components (computed with a plain serial BFS used as ground truth by
//! every algorithm's verification).

use crate::{CsrGraph, Vertex};

/// The Table 2 row for one graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of directed adjacency entries (the paper's `Edges*` column).
    pub directed_edges: usize,
    /// Minimum degree.
    pub dmin: usize,
    /// Average degree.
    pub davg: f64,
    /// Maximum degree.
    pub dmax: usize,
    /// Number of connected components.
    pub components: usize,
}

/// Computes the Table 2 statistics for `g`.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    GraphStats {
        vertices: g.num_vertices(),
        directed_edges: g.num_directed_edges(),
        dmin: g.min_degree(),
        davg: g.avg_degree(),
        dmax: g.max_degree(),
        components: count_components(g),
    }
}

/// Ground-truth component labeling via iterative BFS: returns one label per
/// vertex, where the label is the smallest vertex ID in its component.
///
/// This is the reference every parallel/GPU implementation in the workspace
/// is verified against (after canonicalization), mirroring how "all ECL-CC
/// implementations verify the solution at the end of the run by comparing
/// it to the solution of the serial code" (§4).
pub fn reference_labels(g: &CsrGraph) -> Vec<Vertex> {
    let n = g.num_vertices();
    let mut label = vec![Vertex::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as Vertex {
        if label[s as usize] != Vertex::MAX {
            continue;
        }
        label[s as usize] = s;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if label[w as usize] == Vertex::MAX {
                    label[w as usize] = s;
                    queue.push_back(w);
                }
            }
        }
    }
    label
}

/// Number of connected components.
pub fn count_components(g: &CsrGraph) -> usize {
    let labels = reference_labels(g);
    labels
        .iter()
        .enumerate()
        .filter(|&(i, &l)| l == i as Vertex)
        .count()
}

/// Canonicalizes an arbitrary component labeling so two labelings that
/// induce the same partition compare equal: each vertex's label becomes the
/// smallest vertex ID sharing its original label.
///
/// Panics if `labels.len() != n` is violated by the caller (length is the
/// only structural requirement).
pub fn canonicalize_labels(labels: &[Vertex]) -> Vec<Vertex> {
    let n = labels.len();
    let mut first: std::collections::HashMap<Vertex, Vertex> = std::collections::HashMap::new();
    let mut out = vec![0 as Vertex; n];
    for (i, &l) in labels.iter().enumerate() {
        let e = first.entry(l).or_insert(i as Vertex);
        out[i] = *e;
    }
    out
}

/// Checks that `labels` is a valid connected-components labeling of `g`:
/// endpoints of every edge share a label, and vertices in different
/// components never share one. Returns `Err` with a diagnostic on failure.
pub fn verify_labels(g: &CsrGraph, labels: &[Vertex]) -> Result<(), String> {
    if labels.len() != g.num_vertices() {
        return Err(format!(
            "label array length {} != vertex count {}",
            labels.len(),
            g.num_vertices()
        ));
    }
    let canon = canonicalize_labels(labels);
    let reference = reference_labels(g);
    for v in 0..g.num_vertices() {
        if canon[v] != reference[v] {
            return Err(format!(
                "vertex {v}: got component {}, reference {}",
                canon[v], reference[v]
            ));
        }
    }
    Ok(())
}

/// Histogram of component sizes, sorted descending. Useful for the
/// examples and for asserting generator component structure.
pub fn component_sizes(g: &CsrGraph) -> Vec<usize> {
    let labels = reference_labels(g);
    let mut counts: std::collections::HashMap<Vertex, usize> = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn stats_of_grid() {
        let s = graph_stats(&generate::grid2d(10, 10));
        assert_eq!(s.vertices, 100);
        assert_eq!(s.dmin, 2);
        assert_eq!(s.dmax, 4);
        assert_eq!(s.components, 1);
        assert_eq!(s.directed_edges, 2 * (9 * 10 * 2));
    }

    #[test]
    fn components_of_cliques() {
        let g = generate::disjoint_cliques(7, 4);
        assert_eq!(count_components(&g), 7);
        assert_eq!(component_sizes(&g), vec![4; 7]);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = crate::builder::from_edges(5, &[(0, 1)]);
        assert_eq!(count_components(&g), 4);
    }

    #[test]
    fn reference_labels_are_min_ids() {
        let g = generate::disjoint_cliques(2, 3);
        assert_eq!(reference_labels(&g), vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn canonicalize_is_partition_invariant() {
        // Same partition, different representative choices.
        let a = vec![9, 9, 7, 7, 9];
        let b = vec![2, 2, 0, 0, 2];
        assert_eq!(canonicalize_labels(&a), canonicalize_labels(&b));
    }

    #[test]
    fn verify_accepts_any_representative_choice() {
        let g = generate::disjoint_cliques(2, 3);
        // Use the *largest* vertex as representative instead of smallest.
        let labels = vec![2, 2, 2, 5, 5, 5];
        verify_labels(&g, &labels).unwrap();
    }

    #[test]
    fn verify_rejects_merged_components() {
        let g = generate::disjoint_cliques(2, 3);
        let labels = vec![0, 0, 0, 0, 0, 0];
        assert!(verify_labels(&g, &labels).is_err());
    }

    #[test]
    fn verify_rejects_split_components() {
        let g = generate::complete(4);
        let labels = vec![0, 0, 2, 2];
        assert!(verify_labels(&g, &labels).is_err());
    }

    #[test]
    fn verify_rejects_wrong_length() {
        let g = generate::path(4);
        assert!(verify_labels(&g, &[0, 0]).is_err());
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::GraphBuilder::new(0).build();
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.components, 0);
    }
}
