//! Edge-cut partitioning for sharded multi-device execution.
//!
//! [`partition_blocks`] splits a CSR graph across `N` shards by
//! contiguous vertex blocks: shard `k` *owns* the global vertices in
//! `[starts[k], starts[k+1])`, and every undirected edge `{u, v}` with
//! `u < v` is assigned to exactly one shard — the owner of `u`. The
//! endpoints of assigned edges that fall outside the owned block become
//! *ghost* vertices: read-only replicas whose labels are reconciled by
//! the `ecl-shard` exchange layer.
//!
//! Two invariants make the sharded path certifiable (and are pinned by
//! the property tests below):
//!
//! 1. **Exact edge partition** — the shard edge sets, mapped back to
//!    global IDs, partition the original edge set: no edge is lost, no
//!    edge is duplicated.
//! 2. **Monotone remap** — each shard numbers its local vertices in
//!    ascending *global* order, so `local → global` is strictly
//!    increasing. ECL-CC labels components with their minimum vertex
//!    ID, so the local root of a shard component maps back to the
//!    smallest global ID among its members — the exact quantity the
//!    min-label exchange reconciles. Without monotonicity the local
//!    minimum would be an arbitrary member and the byte-identity
//!    guarantee would need an extra reduction pass.

use crate::{CsrGraph, GraphBuilder, Vertex};

/// One shard of a partitioned graph: the local CSR over its owned block
/// plus ghost endpoints, and the remap between local and global IDs.
#[derive(Clone, Debug)]
pub struct ShardGraph {
    /// Local CSR over owned ∪ ghost vertices (local IDs ascend in
    /// global order).
    pub graph: CsrGraph,
    /// `local → global` map; strictly increasing.
    pub globals: Vec<Vertex>,
    /// First global vertex of the owned block (inclusive).
    pub owned_start: Vertex,
    /// End of the owned block (exclusive).
    pub owned_end: Vertex,
}

impl ShardGraph {
    /// Maps a local vertex back to its global ID.
    pub fn to_global(&self, local: Vertex) -> Vertex {
        self.globals[local as usize]
    }

    /// Maps a global vertex to its local ID, if this shard hosts it
    /// (as owner or ghost).
    pub fn to_local(&self, global: Vertex) -> Option<Vertex> {
        self.globals
            .binary_search(&global)
            .ok()
            .map(|i| i as Vertex)
    }

    /// True when this shard owns `global` (as opposed to hosting it as
    /// a ghost).
    pub fn owns(&self, global: Vertex) -> bool {
        (self.owned_start..self.owned_end).contains(&global)
    }

    /// Number of owned vertices.
    pub fn num_owned(&self) -> usize {
        (self.owned_end - self.owned_start) as usize
    }

    /// Number of ghost vertices (hosted but owned elsewhere).
    pub fn num_ghosts(&self) -> usize {
        self.globals.len() - self.num_owned()
    }
}

/// A full edge-cut partition of a graph.
#[derive(Clone, Debug)]
pub struct Partition {
    /// The shards, in owner order (shard `k` owns the `k`-th block).
    pub shards: Vec<ShardGraph>,
    /// Block boundaries: shard `k` owns `[starts[k], starts[k+1])`.
    /// Length `shards.len() + 1`; last entry is `num_vertices`.
    pub starts: Vec<Vertex>,
    /// Vertex count of the original graph.
    pub num_vertices: usize,
    /// Undirected edge count of the original graph.
    pub num_edges: usize,
}

impl Partition {
    /// The shard that owns a global vertex.
    pub fn owner_of(&self, global: Vertex) -> usize {
        debug_assert!((global as usize) < self.num_vertices);
        match self.starts.binary_search(&global) {
            Ok(k) if k == self.starts.len() - 1 => k - 1,
            Ok(k) => k,
            Err(k) => k - 1,
        }
    }

    /// Global vertices hosted by more than one shard, with the sorted
    /// list of hosting shards (owner first). These are exactly the
    /// vertices the exchange layer must reconcile.
    pub fn shared_vertices(&self) -> Vec<(Vertex, Vec<usize>)> {
        let mut hosts: Vec<Vec<usize>> = vec![Vec::new(); self.num_vertices];
        for (s, shard) in self.shards.iter().enumerate() {
            for &g in &shard.globals {
                if !shard.owns(g) {
                    hosts[g as usize].push(s);
                }
            }
        }
        hosts
            .into_iter()
            .enumerate()
            .filter(|(_, ghosts)| !ghosts.is_empty())
            .map(|(g, ghosts)| {
                let mut all = Vec::with_capacity(ghosts.len() + 1);
                all.push(self.owner_of(g as Vertex));
                all.extend(ghosts);
                (g as Vertex, all)
            })
            .collect()
    }
}

/// Splits `g` into `num_shards` contiguous-block shards (see the module
/// docs for the scheme and its invariants). `num_shards` is clamped to
/// at least 1; shards may own empty blocks when `num_shards` exceeds
/// the vertex count.
pub fn partition_blocks(g: &CsrGraph, num_shards: usize) -> Partition {
    let n = g.num_vertices();
    let k = num_shards.max(1);
    // Balanced block bounds: block i is [i*n/k, (i+1)*n/k) — sizes
    // differ by at most one.
    let starts: Vec<Vertex> = (0..=k).map(|i| (i * n / k) as Vertex).collect();
    let owner = |v: Vertex| -> usize {
        // Inverse of the bound formula via binary search (k is tiny).
        match starts.binary_search(&v) {
            Ok(i) if i == k => i - 1,
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };

    // Pass 1: assign each undirected edge to the owner of its smaller
    // endpoint and collect ghost endpoints per shard.
    let mut shard_edges: Vec<Vec<(Vertex, Vertex)>> = vec![Vec::new(); k];
    let mut ghosts: Vec<Vec<Vertex>> = vec![Vec::new(); k];
    for (u, v) in g.edges() {
        let s = owner(u);
        shard_edges[s].push((u, v));
        if owner(v) != s {
            ghosts[s].push(v);
        }
    }

    // Pass 2: build each shard's local graph with local IDs ascending
    // in global order (owned block merged with sorted deduped ghosts).
    let mut shards = Vec::with_capacity(k);
    for s in 0..k {
        let (lo, hi) = (starts[s], starts[s + 1]);
        let mut gh = std::mem::take(&mut ghosts[s]);
        gh.sort_unstable();
        gh.dedup();
        let mut globals = Vec::with_capacity((hi - lo) as usize + gh.len());
        // Ghosts are never inside the owned block, so a three-way
        // concatenation of sorted runs stays sorted.
        let split = gh.partition_point(|&v| v < lo);
        globals.extend_from_slice(&gh[..split]);
        globals.extend(lo..hi);
        globals.extend_from_slice(&gh[split..]);
        debug_assert!(globals.windows(2).all(|w| w[0] < w[1]));

        let to_local = |v: Vertex| -> Vertex {
            globals
                .binary_search(&v)
                .expect("endpoint of an assigned edge must be hosted") as Vertex
        };
        let mut b = GraphBuilder::with_capacity(globals.len(), shard_edges[s].len());
        for &(u, v) in &shard_edges[s] {
            b.add_edge(to_local(u), to_local(v));
        }
        b.ensure_vertices(globals.len());
        shards.push(ShardGraph {
            graph: b.build(),
            globals,
            owned_start: lo,
            owned_end: hi,
        });
    }

    Partition {
        shards,
        starts,
        num_vertices: n,
        num_edges: g.num_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    /// Collects a shard's edges mapped back to global `(min, max)` pairs.
    fn global_edges(shard: &ShardGraph) -> Vec<(Vertex, Vertex)> {
        shard
            .graph
            .edges()
            .map(|(u, v)| {
                let (gu, gv) = (shard.to_global(u), shard.to_global(v));
                (gu.min(gv), gu.max(gv))
            })
            .collect()
    }

    fn assert_partition_invariants(g: &CsrGraph, part: &Partition) {
        // Exact edge partition: the union of shard edge sets, mapped to
        // global IDs, is the original edge set with no duplicates.
        let mut all: Vec<(Vertex, Vertex)> = part.shards.iter().flat_map(global_edges).collect();
        all.sort_unstable();
        let mut expected: Vec<(Vertex, Vertex)> = g.edges().collect();
        expected.sort_unstable();
        assert_eq!(all, expected, "shard edges must partition the edge set");

        // Every global vertex is owned by exactly one shard, and blocks
        // tile [0, n).
        assert_eq!(part.starts[0], 0);
        assert_eq!(*part.starts.last().unwrap() as usize, g.num_vertices());
        for v in 0..g.num_vertices() as Vertex {
            let owner = part.owner_of(v);
            assert!(part.shards[owner].owns(v), "owner must host {v}");
            let hosts = part.shards.iter().filter(|s| s.owns(v)).count();
            assert_eq!(hosts, 1, "vertex {v} owned by {hosts} shards");
        }

        for shard in &part.shards {
            // Ghost remaps round-trip and the local→global map is
            // strictly increasing (the monotonicity the min-label
            // argument rests on).
            assert!(shard.globals.windows(2).all(|w| w[0] < w[1]));
            for local in 0..shard.graph.num_vertices() as Vertex {
                let global = shard.to_global(local);
                assert_eq!(shard.to_local(global), Some(local));
            }
            assert_eq!(
                shard.num_owned() + shard.num_ghosts(),
                shard.graph.num_vertices()
            );
            // Every ghost is incident to at least one assigned edge —
            // ghosts exist only because an edge dragged them in.
            for local in 0..shard.graph.num_vertices() as Vertex {
                if !shard.owns(shard.to_global(local)) {
                    assert!(
                        shard.graph.degree(local) > 0,
                        "ghost {local} has no incident edge"
                    );
                }
            }
        }

        // shared_vertices lists owner first and only multi-host vertices.
        for (v, hosts) in part.shared_vertices() {
            assert!(hosts.len() >= 2);
            assert_eq!(hosts[0], part.owner_of(v));
            for &h in &hosts {
                assert!(part.shards[h].to_local(v).is_some());
            }
        }
    }

    #[test]
    fn partitions_structured_graphs() {
        for shards in [1, 2, 3, 4, 8] {
            for g in [
                generate::grid2d(9, 7),
                generate::path(40),
                generate::complete(12),
                generate::star(30),
                // Edgeless graph: every vertex isolated, no ghosts.
                {
                    let mut b = GraphBuilder::new(17);
                    b.ensure_vertices(17);
                    b.build()
                },
            ] {
                let part = partition_blocks(&g, shards);
                assert_eq!(part.shards.len(), shards);
                assert_partition_invariants(&g, &part);
            }
        }
    }

    /// Property test (hand-rolled; the workspace is std-only): random
    /// graphs × random shard counts keep the partition invariants.
    #[test]
    fn proptest_partition_invariants() {
        for seed in 0..30u64 {
            let n = 1 + (seed as usize * 37) % 200;
            let m = (seed as usize * 53) % (2 * n);
            let g = generate::gnm_random(n, m, seed);
            let shards = 1 + (seed as usize) % 9;
            let part = partition_blocks(&g, shards);
            assert_partition_invariants(&g, &part);
        }
    }

    #[test]
    fn more_shards_than_vertices() {
        let g = generate::path(3);
        let part = partition_blocks(&g, 8);
        assert_eq!(part.shards.len(), 8);
        assert_partition_invariants(&g, &part);
        let nonempty = part.shards.iter().filter(|s| s.num_owned() > 0).count();
        assert_eq!(nonempty, 3);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let g = generate::grid2d(4, 4);
        let part = partition_blocks(&g, 0);
        assert_eq!(part.shards.len(), 1);
        assert_eq!(part.shards[0].num_ghosts(), 0);
        assert_eq!(part.shards[0].graph.num_edges(), g.num_edges());
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        let part = partition_blocks(&g, 4);
        assert_eq!(part.num_vertices, 0);
        for s in &part.shards {
            assert_eq!(s.graph.num_vertices(), 0);
        }
        assert!(part.shared_vertices().is_empty());
    }
}
