//! Ligra+-style compressed adjacency lists.
//!
//! Ligra+ (Shun, Dhulipala, Blelloch — DCC 2015, reference \[31\] of the paper)
//! "internally uses a compressed graph representation, making it possible
//! to fit larger graphs into the available memory". This module
//! implements its byte-code scheme: each vertex's sorted adjacency list
//! is stored as the zig-zag varint delta of the first neighbor from the
//! vertex ID, followed by plain varint gaps between consecutive
//! neighbors. Decoding is a forward scan — exactly the access pattern the
//! CC algorithms need.

use crate::{CsrGraph, Vertex};

/// An undirected graph with varint-delta compressed adjacency lists.
///
/// Semantically identical to the [`CsrGraph`] it was built from
/// (round-trips exactly); typically 2–4× smaller on the catalog graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedGraph {
    /// Byte offset of each vertex's encoded list (`n + 1` entries).
    offsets: Box<[usize]>,
    /// Degree of each vertex (needed to know when to stop decoding).
    degrees: Box<[u32]>,
    /// The encoded adjacency bytes.
    bytes: Box<[u8]>,
}

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
        debug_assert!(shift < 64, "varint too long");
    }
}

impl CompressedGraph {
    /// Compresses a CSR graph. Adjacency lists must be sorted ascending,
    /// which [`crate::GraphBuilder`] guarantees.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut degrees = Vec::with_capacity(n);
        let mut bytes = Vec::with_capacity(g.num_directed_edges());
        offsets.push(0);
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            degrees.push(nbrs.len() as u32);
            if let Some((&first, rest)) = nbrs.split_first() {
                // First neighbor: signed delta from the vertex ID.
                push_varint(&mut bytes, zigzag_encode(first as i64 - v as i64));
                let mut prev = first;
                for &u in rest {
                    debug_assert!(u > prev, "adjacency must be sorted");
                    push_varint(&mut bytes, (u - prev) as u64);
                    prev = u;
                }
            }
            offsets.push(bytes.len());
        }
        CompressedGraph {
            offsets: offsets.into_boxed_slice(),
            degrees: degrees.into_boxed_slice(),
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.degrees.len()
    }

    /// Number of directed adjacency entries.
    pub fn num_directed_edges(&self) -> usize {
        self.degrees.iter().map(|&d| d as usize).sum()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.degrees[v as usize] as usize
    }

    /// Iterator over `v`'s neighbors, decoding on the fly (ascending).
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> CompressedNeighbors<'_> {
        CompressedNeighbors {
            bytes: &self.bytes,
            pos: self.offsets[v as usize],
            remaining: self.degrees[v as usize],
            prev: 0,
            vertex: v,
            first: true,
        }
    }

    /// Total bytes used by the encoded adjacency (the quantity Ligra+
    /// optimizes).
    pub fn encoded_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Compression ratio versus 4-byte-per-entry CSR adjacency
    /// (> 1 means smaller).
    pub fn compression_ratio(&self) -> f64 {
        let csr = self.num_directed_edges() * std::mem::size_of::<Vertex>();
        if self.bytes.is_empty() {
            1.0
        } else {
            csr as f64 / self.bytes.len() as f64
        }
    }

    /// Decompresses back to CSR (exact round-trip).
    pub fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(self.num_directed_edges());
        offsets.push(0);
        for v in 0..n as Vertex {
            adj.extend(self.neighbors(v));
            offsets.push(adj.len());
        }
        CsrGraph::from_parts_unchecked(offsets, adj)
    }
}

/// Decoding iterator over one compressed adjacency list.
pub struct CompressedNeighbors<'a> {
    bytes: &'a [u8],
    pos: usize,
    remaining: u32,
    prev: Vertex,
    vertex: Vertex,
    first: bool,
}

impl Iterator for CompressedNeighbors<'_> {
    type Item = Vertex;

    #[inline]
    fn next(&mut self) -> Option<Vertex> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let next = if self.first {
            self.first = false;
            let delta = zigzag_decode(read_varint(self.bytes, &mut self.pos));
            (self.vertex as i64 + delta) as Vertex
        } else {
            self.prev + read_varint(self.bytes, &mut self.pos) as Vertex
        };
        self.prev = next;
        Some(next)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for CompressedNeighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64, u64::MAX];
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-5i64, -1, 0, 1, 5, i64::from(i32::MAX), i64::from(i32::MIN)] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn csr_roundtrip_on_varied_graphs() {
        for g in [
            generate::path(200),
            generate::star(150),
            generate::complete(20),
            generate::gnm_random(500, 1500, 1),
            generate::rmat(9, 6, generate::RmatParams::GALOIS, 2),
            crate::GraphBuilder::new(13).build(),
        ] {
            let c = CompressedGraph::from_csr(&g);
            assert_eq!(c.to_csr(), g);
            assert_eq!(c.num_directed_edges(), g.num_directed_edges());
        }
    }

    #[test]
    fn neighbors_match_csr() {
        let g = generate::kronecker(8, 8, 3);
        let c = CompressedGraph::from_csr(&g);
        for v in g.vertices() {
            let decoded: Vec<Vertex> = c.neighbors(v).collect();
            assert_eq!(decoded, g.neighbors(v), "vertex {v}");
            assert_eq!(c.degree(v), g.degree(v));
        }
    }

    #[test]
    fn compresses_local_graphs_well() {
        // Grid neighbors are ±1 / ±cols away: 1–2 byte deltas vs 4-byte IDs.
        let g = generate::grid2d(64, 64);
        let c = CompressedGraph::from_csr(&g);
        assert!(
            c.compression_ratio() > 2.0,
            "ratio {:.2} too low",
            c.compression_ratio()
        );
    }

    #[test]
    fn empty_graph() {
        let g = crate::GraphBuilder::new(0).build();
        let c = CompressedGraph::from_csr(&g);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.to_csr(), g);
    }

    #[test]
    fn exact_size_iterator() {
        let g = generate::star(10);
        let c = CompressedGraph::from_csr(&g);
        let it = c.neighbors(0);
        assert_eq!(it.len(), 9);
        assert_eq!(c.neighbors(5).len(), 1);
    }
}
