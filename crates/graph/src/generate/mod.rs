//! Synthetic graph generators covering every topology class in the paper's
//! Table 2.
//!
//! The paper evaluates on eighteen real-world and synthetic inputs spanning
//! seven classes: 2D grids, triangulations, road maps, uniform random
//! graphs, RMAT/Kronecker graphs, web crawls, and social/co-purchase/
//! citation networks. The generators here produce stand-ins for each class
//! with controllable size; [`crate::catalog`] instantiates them with
//! parameters matching each paper graph's degree profile.
//!
//! All generators are **deterministic** given their seed: they use the
//! in-crate PCG32 stream ([`rng::Pcg32`]) so results are stable across
//! platforms and `rand` versions.

pub mod basic;
pub mod grid;
pub mod powerlaw;
pub mod random;
pub mod rmat;
pub mod rng;
pub mod road;

pub use basic::{binary_tree, complete, cycle, disjoint_cliques, path, star};
pub use grid::{delaunay_like, grid2d};
pub use powerlaw::{citation_graph, preferential_attachment, web_graph};
pub use random::{gnm_random, gnp_random};
pub use rmat::{kronecker, rmat, RmatParams};
pub use rng::Pcg32;
pub use road::road_network;
