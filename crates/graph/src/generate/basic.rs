//! Elementary graph shapes used throughout the test suites: paths, cycles,
//! stars, cliques, trees. These exercise degenerate degree distributions
//! (the extremes the paper's load-balancing kernels bucket on).

use crate::{CsrGraph, GraphBuilder};

/// Path graph `0 - 1 - … - (n-1)`; the worst case for pointer-jumping depth.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge((i - 1) as u32, i as u32);
    }
    b.ensure_vertices(n);
    b.build()
}

/// Cycle graph on `n` vertices (`n >= 3` gives a proper cycle; smaller `n`
/// degrades to a path).
pub fn cycle(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n);
    for i in 1..n {
        b.add_edge((i - 1) as u32, i as u32);
    }
    if n >= 3 {
        b.add_edge((n - 1) as u32, 0);
    }
    b.ensure_vertices(n);
    b.build()
}

/// Star graph: vertex 0 connected to all others. Maximum possible degree
/// skew — lands entirely in the paper's third (block-granularity) kernel.
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(0, i as u32);
    }
    b.ensure_vertices(n);
    b.build()
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * n / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i as u32, j as u32);
        }
    }
    b.ensure_vertices(n);
    b.build()
}

/// `k` disjoint cliques of `size` vertices each: a graph with exactly `k`
/// connected components of equal size.
pub fn disjoint_cliques(k: usize, size: usize) -> CsrGraph {
    let n = k * size;
    let mut b = GraphBuilder::with_capacity(n, k * size * size / 2);
    for c in 0..k {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                b.add_edge((base + i) as u32, (base + j) as u32);
            }
        }
    }
    b.ensure_vertices(n);
    b.build()
}

/// Complete binary tree with `n` vertices (vertex `i` has children `2i+1`,
/// `2i+2`).
pub fn binary_tree(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(((i - 1) / 2) as u32, i as u32);
    }
    b.ensure_vertices(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn tiny_cycles_degrade() {
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(cycle(1).num_edges(), 0);
        assert_eq!(cycle(0).num_vertices(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(100);
        assert_eq!(g.degree(0), 99);
        assert_eq!(g.degree(50), 1);
        assert_eq!(g.num_edges(), 99);
    }

    #[test]
    fn complete_shape() {
        let g = complete(8);
        assert_eq!(g.num_edges(), 28);
        assert!(g.vertices().all(|v| g.degree(v) == 7));
    }

    #[test]
    fn cliques_are_disjoint() {
        let g = disjoint_cliques(4, 5);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * 10);
        assert!(!g.has_edge(0, 5));
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
    }
}
