//! Regular-lattice generators: 2D grids (the paper's `2d-2e20.sym`) and a
//! triangulation-like planar mesh (the paper's `delaunay_n24`).

use super::rng::Pcg32;
use crate::{CsrGraph, GraphBuilder};

/// 4-neighbor 2D grid with `rows × cols` vertices, row-major numbering.
/// Matches the `2d-2e20.sym` profile: dmin 2, davg ≈ 4, dmax 4, one CC.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.ensure_vertices(n);
    b.build()
}

/// Planar triangulation stand-in: a jittered grid where each cell gains one
/// of its two diagonals, giving davg ≈ 6 with a small dmax — the
/// `delaunay_n24` profile (davg 6.0, dmax 26) without running an actual
/// Delaunay construction at scale.
pub fn delaunay_like(rows: usize, cols: usize, seed: u64) -> CsrGraph {
    let n = rows * cols;
    let mut rng = Pcg32::new(seed);
    let mut b = GraphBuilder::with_capacity(n, 3 * n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols {
                // one diagonal per cell, chosen at random, triangulating it
                if rng.chance(0.5) {
                    b.add_edge(id(r, c), id(r + 1, c + 1));
                } else {
                    b.add_edge(id(r, c + 1), id(r + 1, c));
                }
            }
        }
    }
    b.ensure_vertices(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts() {
        let g = grid2d(4, 5);
        assert_eq!(g.num_vertices(), 20);
        // edges: 4*4 horizontal per row * 4 rows? horizontal: 4 per row * 4 rows = 16; vertical: 5 * 3 = 15
        assert_eq!(g.num_edges(), 4 * 4 + 5 * 3);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn grid_degenerate_shapes() {
        assert_eq!(grid2d(1, 1).num_edges(), 0);
        let line = grid2d(1, 10);
        assert_eq!(line.num_edges(), 9);
        assert_eq!(line.max_degree(), 2);
        assert_eq!(grid2d(0, 5).num_vertices(), 0);
    }

    #[test]
    fn delaunay_like_degrees() {
        let g = delaunay_like(32, 32, 1);
        let n = g.num_vertices() as f64;
        let expected_edges = (31 * 32 * 2 + 31 * 31) as f64;
        assert_eq!(g.num_edges() as f64, expected_edges);
        let avg = 2.0 * expected_edges / n;
        assert!(avg > 5.5 && avg < 6.0, "avg degree {avg}");
        assert!(g.max_degree() <= 8);
    }

    #[test]
    fn delaunay_deterministic() {
        let a = delaunay_like(10, 10, 7);
        let b = delaunay_like(10, 10, 7);
        assert_eq!(a, b);
        let c = delaunay_like(10, 10, 8);
        assert_ne!(a, c);
    }
}
