//! Power-law / scale-free generators: preferential attachment (social and
//! co-purchase networks: `soc-LiveJournal1`, `amazon0601`, `as-skitter`),
//! a copy-model web graph (`in-2004`, `uk-2002`), and a citation model
//! (`citationCiteseer`, `cit-Patents`).

use super::rng::Pcg32;
use crate::{CsrGraph, GraphBuilder, Vertex};

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per` existing vertices chosen proportionally to degree.
///
/// Produces a connected graph (when `m_per >= 1`) with a power-law tail,
/// like the paper's social-network inputs.
pub fn preferential_attachment(n: usize, m_per: usize, seed: u64) -> CsrGraph {
    assert!(m_per >= 1, "m_per must be >= 1");
    let mut rng = Pcg32::new(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_per);
    // `targets` holds one entry per directed edge endpoint, so sampling an
    // index uniformly samples a vertex proportionally to its degree.
    let mut targets: Vec<Vertex> = Vec::with_capacity(2 * n * m_per);
    let seedlings = (m_per + 1).min(n);
    // Seed with a small clique so early attachments have distinct targets.
    for i in 0..seedlings {
        for j in (i + 1)..seedlings {
            b.add_edge(i as Vertex, j as Vertex);
            targets.push(i as Vertex);
            targets.push(j as Vertex);
        }
    }
    for v in seedlings..n {
        let mut chosen = [Vertex::MAX; 64];
        let k = m_per.min(64);
        let mut picked = 0;
        let mut attempts = 0;
        while picked < k && attempts < 50 * k {
            attempts += 1;
            let t = targets[rng.below_usize(targets.len())];
            if !chosen[..picked].contains(&t) {
                chosen[picked] = t;
                picked += 1;
            }
        }
        for &t in &chosen[..picked] {
            b.add_edge(v as Vertex, t);
            targets.push(v as Vertex);
            targets.push(t);
        }
    }
    b.ensure_vertices(n);
    b.build()
}

/// Copy-model web graph: each new page either copies the out-links of a
/// random earlier page (probability `copy_p`) or links uniformly at random.
/// A fraction `orphan_p` of pages receive no links at all, reproducing the
/// `dmin = 0` rows of Table 2 (`in-2004`, `uk-2002`).
pub fn web_graph(n: usize, links_per: usize, copy_p: f64, orphan_p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&copy_p) && (0.0..=1.0).contains(&orphan_p));
    let mut rng = Pcg32::new(seed);
    let mut b = GraphBuilder::with_capacity(n, n * links_per);
    // Out-link lists kept only to power the copy mechanism.
    let mut outlinks: Vec<Vec<Vertex>> = vec![Vec::new(); n];
    for v in 1..n {
        if rng.chance(orphan_p) {
            continue;
        }
        let mut links = Vec::with_capacity(links_per);
        if v > 1 && rng.chance(copy_p) {
            let proto = rng.below(v as u32) as usize;
            for &t in outlinks[proto].iter().take(links_per) {
                links.push(t);
            }
        }
        while links.len() < links_per && (links.len() as u32) < v as u32 {
            let t = rng.below(v as u32);
            if !links.contains(&t) {
                links.push(t);
            }
        }
        for &t in &links {
            b.add_edge(v as Vertex, t);
        }
        outlinks[v] = links;
    }
    b.ensure_vertices(n);
    b.build()
}

/// Citation network model: papers arrive in order and cite `cites_per`
/// earlier papers with recency bias (`recency` in `(0, 1]`; smaller values
/// bias harder toward recent papers). Old papers never gain out-edges,
/// giving the moderate skew of `cit-Patents` / `citationCiteseer`.
pub fn citation_graph(n: usize, cites_per: usize, recency: f64, seed: u64) -> CsrGraph {
    assert!(recency > 0.0 && recency <= 1.0);
    let mut rng = Pcg32::new(seed);
    let mut b = GraphBuilder::with_capacity(n, n * cites_per);
    for v in 1..n {
        let window = ((v as f64 * recency).ceil() as u32).max(1);
        let lo = v as u32 - window;
        for _ in 0..cites_per.min(v) {
            let t = lo + rng.below(window);
            if t != v as u32 {
                b.add_edge(v as Vertex, t);
            }
        }
    }
    b.ensure_vertices(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_is_connected_and_skewed() {
        let g = preferential_attachment(2000, 4, 1);
        assert_eq!(g.num_vertices(), 2000);
        assert!(g.min_degree() >= 1);
        assert!(g.max_degree() > 40, "max degree {}", g.max_degree());
        // Rough edge count: ~ n * m_per.
        let m = g.num_edges();
        assert!(m > 7000 && m < 8100, "m = {m}");
    }

    #[test]
    fn ba_deterministic() {
        assert_eq!(
            preferential_attachment(300, 3, 9),
            preferential_attachment(300, 3, 9)
        );
    }

    #[test]
    fn ba_small_n() {
        let g = preferential_attachment(3, 5, 1);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3); // just the seed clique
    }

    #[test]
    fn web_graph_has_orphans() {
        let g = web_graph(3000, 10, 0.5, 0.1, 2);
        assert_eq!(g.min_degree(), 0);
        // Orphan pages emit no links but may still receive them from later
        // pages, so only a fraction of the 10% stay fully isolated.
        let iso = g.vertices().filter(|&v| g.degree(v) == 0).count();
        assert!(iso > 20, "isolated {iso}");
        assert!(g.max_degree() as f64 > 3.0 * g.avg_degree());
    }

    #[test]
    fn citation_graph_shape() {
        let g = citation_graph(2000, 5, 0.3, 3);
        assert!(
            g.avg_degree() > 6.0 && g.avg_degree() < 11.0,
            "{}",
            g.avg_degree()
        );
        // Moderate, not extreme, skew.
        assert!(g.max_degree() < 500);
    }

    #[test]
    fn citation_deterministic() {
        assert_eq!(
            citation_graph(500, 4, 0.5, 7),
            citation_graph(500, 4, 0.5, 7)
        );
    }
}
