//! RMAT / Kronecker recursive-matrix generators (Chakrabarti et al. 2004;
//! Graph500). Stand-ins for the paper's `rmat16.sym`, `rmat22.sym`, and
//! `kron_g500-logn21` inputs: heavy-tailed degree distributions, many tiny
//! components, isolated vertices (dmin 0).

use super::rng::Pcg32;
use crate::{CsrGraph, GraphBuilder, Vertex};

/// Quadrant probabilities for the recursive matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability (`1 - a - b - c`).
    pub d: f64,
}

impl RmatParams {
    /// The classic RMAT parameters used by the GTgraph / Galois generators.
    pub const GALOIS: RmatParams = RmatParams {
        a: 0.45,
        b: 0.15,
        c: 0.15,
        d: 0.25,
    };

    /// Graph500 Kronecker parameters (skewed much harder: dmax in the
    /// hundreds of thousands at scale, > 25% isolated vertices).
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "RMAT quadrant probabilities must sum to 1, got {sum}"
        );
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "negative quadrant probability"
        );
    }
}

/// RMAT graph with `2^scale` vertices and `edge_factor * 2^scale` undirected
/// edge samples (duplicates collapse, so the final edge count is slightly
/// lower, mirroring how the paper's RMAT inputs were produced and cleaned).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate();
    assert!(scale < 31, "scale {scale} too large for u32 vertices");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = Pcg32::new(seed);
    let mut b = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let (u, v) = sample_cell(scale, params, &mut rng);
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.ensure_vertices(n);
    b.build()
}

/// Kronecker (Graph500) graph: RMAT with the Graph500 quadrant weights and
/// per-level probability noise, which sharpens the degree skew.
pub fn kronecker(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat(scale, edge_factor, RmatParams::GRAPH500, seed)
}

fn sample_cell(scale: u32, p: RmatParams, rng: &mut Pcg32) -> (Vertex, Vertex) {
    let mut u: u32 = 0;
    let mut v: u32 = 0;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r = rng.f64();
        if r < p.a {
            // top-left: no bits set
        } else if r < p.a + p.b {
            v |= 1;
        } else if r < p.a + p.b + p.c {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 8, RmatParams::GALOIS, 1);
        assert_eq!(g.num_vertices(), 1024);
        // Duplicates collapse: expect fewer than 8192 but the bulk kept.
        assert!(
            g.num_edges() > 4000 && g.num_edges() <= 8192,
            "{}",
            g.num_edges()
        );
    }

    #[test]
    fn rmat_skewed_degrees() {
        let g = rmat(12, 8, RmatParams::GALOIS, 2);
        // Heavy tail: max degree far above average.
        assert!(g.max_degree() as f64 > 6.0 * g.avg_degree());
        // RMAT leaves isolated vertices (dmin 0) like rmat16/22 in Table 2.
        assert_eq!(g.min_degree(), 0);
    }

    #[test]
    fn kronecker_more_skewed_than_rmat() {
        let r = rmat(12, 16, RmatParams::GALOIS, 3);
        let k = kronecker(12, 16, 3);
        assert!(k.max_degree() > r.max_degree());
        let iso_k = k.vertices().filter(|&v| k.degree(v) == 0).count();
        let iso_r = r.vertices().filter(|&v| r.degree(v) == 0).count();
        assert!(iso_k > iso_r, "kron isolated {iso_k} vs rmat {iso_r}");
    }

    #[test]
    fn rmat_deterministic() {
        assert_eq!(
            rmat(8, 8, RmatParams::GALOIS, 5),
            rmat(8, 8, RmatParams::GALOIS, 5)
        );
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_params_panic() {
        rmat(
            4,
            1,
            RmatParams {
                a: 0.9,
                b: 0.9,
                c: 0.0,
                d: 0.0,
            },
            1,
        );
    }
}
