//! Road-network stand-in: a sparse partial grid with long chains.
//!
//! The paper's road maps (`europe_osm`, `USA-road-d.*`) have average degree
//! 2.1–2.8, tiny maximum degree (8–13), one huge component, and — key for
//! the CC algorithms — enormous diameter, which is what makes `europe_osm`
//! the adversarial input for pointer jumping in §5.1 (average path length
//! 4.26, max 122, and the one input where single jumping beats intermediate
//! jumping).

use super::rng::Pcg32;
use crate::{CsrGraph, GraphBuilder};

/// Generates a road-like network on a `rows × cols` lattice.
///
/// Each lattice edge is kept with probability `keep_p`; kept edges are then
/// augmented with a spanning "highway" path through all vertices in
/// boustrophedon order with probability `spine_p` per segment, which keeps
/// the graph nearly connected while preserving degree ≈ 2–3 and a huge
/// diameter. `keep_p ≈ 0.3, spine_p = 1.0` reproduces the europe_osm degree
/// profile (davg ≈ 2.1); `keep_p ≈ 0.45` reproduces USA-road (davg ≈ 2.4).
pub fn road_network(rows: usize, cols: usize, keep_p: f64, spine_p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&keep_p) && (0.0..=1.0).contains(&spine_p));
    let n = rows * cols;
    let mut rng = Pcg32::new(seed);
    let mut b = GraphBuilder::with_capacity(n, (2.0 * n as f64 * keep_p) as usize + n);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols && rng.chance(keep_p) {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows && rng.chance(keep_p) {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    // Boustrophedon spine: a single path visiting every vertex, snaking
    // left-to-right on even rows and right-to-left on odd rows.
    let mut prev: Option<u32> = None;
    for r in 0..rows {
        for c in 0..cols {
            let c = if r % 2 == 0 { c } else { cols - 1 - c };
            let cur = id(r, c);
            if let Some(p) = prev {
                if rng.chance(spine_p) {
                    b.add_edge(p, cur);
                }
            }
            prev = Some(cur);
        }
    }
    b.ensure_vertices(n);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn europe_profile() {
        let g = road_network(100, 100, 0.05, 1.0, 1);
        let avg = g.avg_degree();
        assert!(avg > 1.9 && avg < 2.5, "avg degree {avg}");
        assert!(g.max_degree() <= 6);
    }

    #[test]
    fn spine_keeps_one_component() {
        // With spine_p = 1 the boustrophedon path visits every vertex.
        let g = road_network(20, 20, 0.0, 1.0, 2);
        // path graph: n-1 edges at least
        assert!(g.num_edges() >= g.num_vertices() - 1);
        // verify connectivity with a quick BFS
        let n = g.num_vertices();
        let mut seen = vec![false; n];
        let mut stack = vec![0u32];
        seen[0] = true;
        let mut cnt = 1;
        while let Some(v) = stack.pop() {
            for &w in g.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    cnt += 1;
                    stack.push(w);
                }
            }
        }
        assert_eq!(cnt, n, "spine failed to connect the lattice");
    }

    #[test]
    fn usa_profile() {
        let g = road_network(80, 80, 0.2, 1.0, 3);
        let avg = g.avg_degree();
        assert!(avg > 2.2 && avg < 3.0, "avg degree {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            road_network(30, 30, 0.3, 0.9, 4),
            road_network(30, 30, 0.3, 0.9, 4)
        );
    }

    #[test]
    fn no_spine_many_components() {
        let g = road_network(30, 30, 0.1, 0.0, 5);
        // Mostly isolated vertices and small fragments.
        assert!(g.num_edges() < 200);
    }
}
