//! Uniform random graphs: G(n, m) and G(n, p) Erdős–Rényi models.
//! Stand-ins for the paper's `r4-2e23.sym` (uniform random, davg 8).

use super::rng::Pcg32;
use crate::{CsrGraph, GraphBuilder, Vertex};

/// G(n, m): exactly `m` distinct undirected edges chosen uniformly.
///
/// Sampling draws random pairs and relies on the builder's dedup, retrying
/// until `m` distinct non-loop edges exist; for the sparse graphs used here
/// (`m ≪ n²/2`) the retry rate is negligible.
pub fn gnm_random(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(
        n >= 2 || m == 0,
        "cannot place edges with fewer than 2 vertices"
    );
    let max_m = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= max_m, "requested {m} edges but only {max_m} possible");
    let mut rng = Pcg32::new(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.below(n as u32);
        let v = rng.below(n as u32);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.ensure_vertices(n);
    b.build()
}

/// G(n, p): each of the `n(n-1)/2` possible edges present independently
/// with probability `p`. Uses geometric skipping so the cost is
/// proportional to the number of generated edges, not to `n²`.
pub fn gnp_random(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut b = GraphBuilder::new(n);
    b.ensure_vertices(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    let mut rng = Pcg32::new(seed);
    let total = n as u64 * (n as u64 - 1) / 2;
    // Walk edge indices with geometric gaps: skip ~ Geom(p).
    let mut idx: u64 = 0;
    let log1mp = (1.0 - p).ln();
    loop {
        let skip = if p >= 1.0 {
            0
        } else {
            let u = rng.f64().max(f64::MIN_POSITIVE);
            (u.ln() / log1mp).floor() as u64
        };
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        let (u, v) = unrank_edge(idx, n as u64);
        b.add_edge(u as Vertex, v as Vertex);
        idx += 1;
    }
    b.build()
}

/// Maps a linear index in `[0, n(n-1)/2)` to the corresponding pair
/// `(u, v)` with `u < v`, in lexicographic order.
fn unrank_edge(idx: u64, n: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... easier: scan via
    // closed-form using floating sqrt then fix up.
    let mut u = {
        let nf = n as f64;
        let i = idx as f64;
        // Solve u from cumulative count c(u) = u*n - u*(u+1)/2.
        let disc = (2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * i;
        (((2.0 * nf - 1.0) - disc.max(0.0).sqrt()) / 2.0).floor() as u64
    };
    let row_start = |u: u64| u * n - u * (u + 1) / 2;
    while u > 0 && row_start(u) > idx {
        u -= 1;
    }
    while row_start(u + 1) <= idx {
        u += 1;
    }
    let v = u + 1 + (idx - row_start(u));
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_has_exact_edges() {
        let g = gnm_random(1000, 4000, 3);
        assert_eq!(g.num_vertices(), 1000);
        assert_eq!(g.num_edges(), 4000);
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(gnm_random(500, 1000, 9), gnm_random(500, 1000, 9));
        assert_ne!(gnm_random(500, 1000, 9), gnm_random(500, 1000, 10));
    }

    #[test]
    fn gnm_zero_edges() {
        let g = gnm_random(10, 0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn gnm_dense_complete() {
        let g = gnm_random(10, 45, 1);
        assert_eq!(g.num_edges(), 45);
        assert!(g.vertices().all(|v| g.degree(v) == 9));
    }

    #[test]
    #[should_panic(expected = "only")]
    fn gnm_too_many_edges_panics() {
        gnm_random(4, 7, 1);
    }

    #[test]
    fn gnp_expected_density() {
        let g = gnp_random(400, 0.05, 5);
        let expected = 0.05 * (400.0 * 399.0 / 2.0);
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "got {got}, expected ~{expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp_random(50, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp_random(10, 1.0, 1).num_edges(), 45);
        assert_eq!(gnp_random(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(gnp_random(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn unrank_covers_all_pairs() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (u, v) = unrank_edge(idx, n);
            assert!(u < v && v < n, "bad pair ({u},{v}) at {idx}");
            assert!(seen.insert((u, v)), "duplicate pair at {idx}");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }
}
