//! Deterministic PCG32 random stream for the generators.
//!
//! A tiny permuted-congruential generator (PCG-XSH-RR 64/32, O'Neill 2014).
//! We carry our own implementation instead of `rand`'s so generated graphs
//! are bit-identical across `rand` releases and platforms — benchmark
//! inputs must never drift under dependency updates.

/// PCG-XSH-RR 64/32 generator.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const MULTIPLIER: u64 = 6364136223846793005;

impl Pcg32 {
    /// Creates a generator from a seed; distinct seeds give independent
    /// streams for practical purposes.
    pub fn new(seed: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (seed << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed ^ 0x9e3779b97f4a7c15);
        rng.next_u32();
        rng
    }

    /// Next uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULTIPLIER).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next uniform `u64`.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased). `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u32();
            let m = (x as u64) * (bound as u64);
            let low = m as u32;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must fit in `u32`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        debug_assert!(bound <= u32::MAX as usize);
        self.below(bound as u32) as usize
    }

    /// Uniform float in `[0, 1)` with 32 bits of entropy.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.next_u32() as f64 * (1.0 / 4294967296.0)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Splits off an independent child stream (for parallel generation).
    pub fn split(&mut self) -> Pcg32 {
        Pcg32::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::new(42);
        let mut b = Pcg32::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3, "streams nearly identical: {same} collisions");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Pcg32::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residues never produced");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Pcg32::new(3);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_one_is_zero() {
        let mut r = Pcg32::new(9);
        for _ in 0..10 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn mean_roughly_half() {
        let mut r = Pcg32::new(11);
        let mean: f64 = (0..10_000).map(|_| r.f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn split_streams_independent() {
        let mut parent = Pcg32::new(5);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        let same = (0..100).filter(|_| c1.next_u32() == c2.next_u32()).count();
        assert!(same < 3);
    }
}
