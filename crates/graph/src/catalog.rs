//! Named stand-ins for the paper's eighteen input graphs (Table 2).
//!
//! The original inputs are multi-gigabyte downloads from SNAP / SMC /
//! DIMACS / Galois; this environment has no network or the disk budget for
//! them, so each is replaced by a synthetic graph of the same topology
//! class whose degree profile matches the paper's Table 2 row, generated at
//! a configurable [`Scale`]. The substitution is documented in DESIGN.md;
//! absolute sizes shrink but the *relative* behaviour the paper measures
//! (degree skew, diameter, component structure) is preserved per class.

use crate::generate::{self, RmatParams};
use crate::{builder, CsrGraph};

/// How large to instantiate a catalog graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A few thousand vertices — unit/integration tests.
    Tiny,
    /// Tens of thousands of vertices — default for the benchmark harness.
    Bench,
    /// Hundreds of thousands of vertices — slower, closer-to-paper runs.
    Large,
}

/// The eighteen inputs of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(non_camel_case_types)]
pub enum PaperGraph {
    /// `2d-2e20.sym` — 1024×1024 grid (Galois).
    Grid2d,
    /// `amazon0601` — co-purchase network (SNAP).
    Amazon,
    /// `as-skitter` — internet topology (SNAP).
    AsSkitter,
    /// `citationCiteseer` — publication citations (SMC).
    CitationCiteseer,
    /// `cit-Patents` — patent citations (SMC).
    CitPatents,
    /// `coPapersDBLP` — publication co-authorship (SMC).
    CoPapersDblp,
    /// `delaunay_n24` — Delaunay triangulation (SMC).
    Delaunay,
    /// `europe_osm` — European road map (SMC).
    EuropeOsm,
    /// `in-2004` — web crawl (SMC).
    In2004,
    /// `internet` — internet topology (SMC).
    Internet,
    /// `kron_g500-logn21` — Graph500 Kronecker (SMC).
    Kron21,
    /// `r4-2e23.sym` — uniform random, davg 8 (Galois).
    Random4,
    /// `rmat16.sym` — RMAT scale 16 (Galois).
    Rmat16,
    /// `rmat22.sym` — RMAT scale 22 (Galois).
    Rmat22,
    /// `soc-LiveJournal1` — LiveJournal communities (SNAP).
    SocLivejournal,
    /// `uk-2002` — .uk web crawl (SMC).
    Uk2002,
    /// `USA-road-d.NY` — New York road map (DIMACS).
    UsaRoadNy,
    /// `USA-road-d.USA` — full USA road map (DIMACS).
    UsaRoadUsa,
}

/// Metadata about a paper input: its name, class, and the Table 2 row the
/// stand-in approximates (paper-scale values, for reporting).
#[derive(Clone, Copy, Debug)]
pub struct PaperGraphInfo {
    /// The paper's graph name.
    pub name: &'static str,
    /// Topology class (Table 2 "Type" column).
    pub class: &'static str,
    /// Paper-scale vertex count.
    pub paper_vertices: u64,
    /// Paper-scale directed edge count (Table 2 `Edges*`).
    pub paper_edges: u64,
    /// Paper-scale average degree.
    pub paper_davg: f64,
    /// Paper-scale component count.
    pub paper_ccs: u64,
}

impl PaperGraph {
    /// Every catalog entry, in Table 2 order.
    pub const ALL: [PaperGraph; 18] = [
        PaperGraph::Grid2d,
        PaperGraph::Amazon,
        PaperGraph::AsSkitter,
        PaperGraph::CitationCiteseer,
        PaperGraph::CitPatents,
        PaperGraph::CoPapersDblp,
        PaperGraph::Delaunay,
        PaperGraph::EuropeOsm,
        PaperGraph::In2004,
        PaperGraph::Internet,
        PaperGraph::Kron21,
        PaperGraph::Random4,
        PaperGraph::Rmat16,
        PaperGraph::Rmat22,
        PaperGraph::SocLivejournal,
        PaperGraph::Uk2002,
        PaperGraph::UsaRoadNy,
        PaperGraph::UsaRoadUsa,
    ];

    /// Table 2 metadata for this input.
    pub fn info(self) -> PaperGraphInfo {
        use PaperGraph::*;
        match self {
            Grid2d => PaperGraphInfo {
                name: "2d-2e20.sym",
                class: "grid",
                paper_vertices: 1_048_576,
                paper_edges: 4_190_208,
                paper_davg: 4.0,
                paper_ccs: 1,
            },
            Amazon => PaperGraphInfo {
                name: "amazon0601",
                class: "co-purchases",
                paper_vertices: 403_394,
                paper_edges: 4_886_816,
                paper_davg: 12.1,
                paper_ccs: 7,
            },
            AsSkitter => PaperGraphInfo {
                name: "as-skitter",
                class: "Int. topology",
                paper_vertices: 1_696_415,
                paper_edges: 22_190_596,
                paper_davg: 13.1,
                paper_ccs: 756,
            },
            CitationCiteseer => PaperGraphInfo {
                name: "citationCiteseer",
                class: "pub. citations",
                paper_vertices: 268_495,
                paper_edges: 2_313_294,
                paper_davg: 8.6,
                paper_ccs: 1,
            },
            CitPatents => PaperGraphInfo {
                name: "cit-Patents",
                class: "pat. citations",
                paper_vertices: 3_774_768,
                paper_edges: 33_037_894,
                paper_davg: 8.8,
                paper_ccs: 3_627,
            },
            CoPapersDblp => PaperGraphInfo {
                name: "coPapersDBLP",
                class: "pub. citations",
                paper_vertices: 540_486,
                paper_edges: 30_491_458,
                paper_davg: 56.4,
                paper_ccs: 1,
            },
            Delaunay => PaperGraphInfo {
                name: "delaunay_n24",
                class: "triangulation",
                paper_vertices: 16_777_216,
                paper_edges: 100_663_202,
                paper_davg: 6.0,
                paper_ccs: 1,
            },
            EuropeOsm => PaperGraphInfo {
                name: "europe_osm",
                class: "road map",
                paper_vertices: 50_912_018,
                paper_edges: 108_109_320,
                paper_davg: 2.1,
                paper_ccs: 1,
            },
            In2004 => PaperGraphInfo {
                name: "in-2004",
                class: "web links",
                paper_vertices: 1_382_908,
                paper_edges: 27_182_946,
                paper_davg: 19.7,
                paper_ccs: 134,
            },
            Internet => PaperGraphInfo {
                name: "internet",
                class: "Int. topology",
                paper_vertices: 124_651,
                paper_edges: 387_240,
                paper_davg: 3.1,
                paper_ccs: 1,
            },
            Kron21 => PaperGraphInfo {
                name: "kron_g500-logn21",
                class: "Kronecker",
                paper_vertices: 2_097_152,
                paper_edges: 182_081_864,
                paper_davg: 86.8,
                paper_ccs: 553_159,
            },
            Random4 => PaperGraphInfo {
                name: "r4-2e23.sym",
                class: "random",
                paper_vertices: 8_388_608,
                paper_edges: 67_108_846,
                paper_davg: 8.0,
                paper_ccs: 1,
            },
            Rmat16 => PaperGraphInfo {
                name: "rmat16.sym",
                class: "RMAT",
                paper_vertices: 65_536,
                paper_edges: 967_866,
                paper_davg: 14.8,
                paper_ccs: 3_900,
            },
            Rmat22 => PaperGraphInfo {
                name: "rmat22.sym",
                class: "RMAT",
                paper_vertices: 4_194_304,
                paper_edges: 65_660_814,
                paper_davg: 15.7,
                paper_ccs: 428_640,
            },
            SocLivejournal => PaperGraphInfo {
                name: "soc-LiveJournal1",
                class: "j. community",
                paper_vertices: 4_847_571,
                paper_edges: 85_702_474,
                paper_davg: 17.7,
                paper_ccs: 1_876,
            },
            Uk2002 => PaperGraphInfo {
                name: "uk-2002",
                class: "web links",
                paper_vertices: 18_520_486,
                paper_edges: 523_574_516,
                paper_davg: 28.3,
                paper_ccs: 38_359,
            },
            UsaRoadNy => PaperGraphInfo {
                name: "USA-road-d.NY",
                class: "road map",
                paper_vertices: 264_346,
                paper_edges: 730_100,
                paper_davg: 2.8,
                paper_ccs: 1,
            },
            UsaRoadUsa => PaperGraphInfo {
                name: "USA-road-d.USA",
                class: "road map",
                paper_vertices: 23_947_347,
                paper_edges: 57_708_624,
                paper_davg: 2.4,
                paper_ccs: 1,
            },
        }
    }

    /// Generates the stand-in graph at the requested scale.
    ///
    /// Deterministic: the seed is derived from the variant, so repeated
    /// calls (and different machines) see identical graphs.
    pub fn generate(self, scale: Scale) -> CsrGraph {
        use PaperGraph::*;
        let seed = 0xEC1_CC00 + self as u64;
        // Scale divisor applied to the paper vertex counts; per-class
        // generators then translate (n, davg) into their own parameters.
        let (s0, s1, s2): (usize, usize, usize) = match scale {
            Scale::Tiny => (32, 2_048, 4_096),
            Scale::Bench => (128, 16_384, 32_768),
            Scale::Large => (512, 131_072, 262_144),
        };
        match self {
            Grid2d => generate::grid2d(s0, s0),
            // amazon0601 has exactly 7 components at paper scale: the
            // giant one plus six stragglers.
            Amazon => with_isolated(generate::preferential_attachment(s1 - 6, 6, seed), 6),
            // as-skitter's 756 components scale down with the vertex count.
            AsSkitter => with_isolated(
                generate::preferential_attachment(s2 - s2 / 2000, 7, seed),
                s2 / 2000,
            ),
            CitationCiteseer => generate::citation_graph(s1, 4, 0.6, seed),
            CitPatents => with_isolated(
                generate::citation_graph(s2 - s2 / 1000, 4, 0.2, seed),
                s2 / 1000,
            ),
            CoPapersDblp => generate::preferential_attachment(s1, 28, seed),
            Delaunay => generate::delaunay_like(s0, s0, seed),
            EuropeOsm => generate::road_network(s0 * 2, s0 * 2, 0.05, 1.0, seed),
            In2004 => generate::web_graph(s1, 10, 0.5, 0.08, seed),
            Internet => generate::preferential_attachment(s1 / 2, 2, seed),
            Kron21 => generate::kronecker(log2_floor(s1), 16, seed),
            Random4 => generate::gnm_random(s2, s2 * 4, seed),
            Rmat16 => generate::rmat(log2_floor(s1), 8, RmatParams::GALOIS, seed),
            Rmat22 => generate::rmat(log2_floor(s2), 8, RmatParams::GALOIS, seed),
            SocLivejournal => with_isolated(
                generate::preferential_attachment(s2 - s2 / 2500, 9, seed),
                s2 / 2500,
            ),
            Uk2002 => generate::web_graph(s2, 14, 0.6, 0.1, seed),
            UsaRoadNy => generate::road_network(s0, s0, 0.25, 1.0, seed),
            UsaRoadUsa => generate::road_network(s0 * 2, s0 * 2, 0.2, 1.0, seed),
        }
    }
}

fn log2_floor(n: usize) -> u32 {
    usize::BITS - 1 - n.leading_zeros()
}

/// Appends `extra` isolated vertices to a graph (used to reproduce inputs
/// whose Table 2 row has many singleton components).
fn with_isolated(g: CsrGraph, extra: usize) -> CsrGraph {
    let n = g.num_vertices() + extra;
    let edges: Vec<_> = g.edges().collect();
    builder::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::graph_stats;

    #[test]
    fn all_generate_tiny() {
        for pg in PaperGraph::ALL {
            let g = pg.generate(Scale::Tiny);
            assert!(g.num_vertices() > 0, "{:?} empty", pg);
            assert!(g.num_edges() > 0, "{:?} edgeless", pg);
        }
    }

    #[test]
    fn deterministic() {
        let a = PaperGraph::Rmat16.generate(Scale::Tiny);
        let b = PaperGraph::Rmat16.generate(Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn grid_profile_matches_table2() {
        let s = graph_stats(&PaperGraph::Grid2d.generate(Scale::Tiny));
        assert_eq!(s.dmin, 2);
        assert_eq!(s.dmax, 4);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn road_profile_matches_table2() {
        let s = graph_stats(&PaperGraph::EuropeOsm.generate(Scale::Tiny));
        assert!(s.davg > 1.8 && s.davg < 2.6, "davg {}", s.davg);
        assert!(s.dmax <= 13);
    }

    #[test]
    fn kron_profile_matches_table2() {
        let s = graph_stats(&PaperGraph::Kron21.generate(Scale::Tiny));
        assert_eq!(s.dmin, 0, "Kronecker must have isolated vertices");
        assert!(s.components > 100, "components {}", s.components);
        assert!(s.dmax > 50, "dmax {}", s.dmax);
    }

    #[test]
    fn random4_profile_matches_table2() {
        let s = graph_stats(&PaperGraph::Random4.generate(Scale::Tiny));
        assert!((s.davg - 8.0).abs() < 0.2, "davg {}", s.davg);
    }

    #[test]
    fn cit_patents_has_many_components() {
        let s = graph_stats(&PaperGraph::CitPatents.generate(Scale::Tiny));
        assert!(s.components >= 3, "components {}", s.components);
    }

    #[test]
    fn info_names_unique() {
        let mut names: Vec<_> = PaperGraph::ALL.iter().map(|g| g.info().name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }

    #[test]
    fn scales_order_sizes() {
        let t = PaperGraph::Rmat16.generate(Scale::Tiny).num_vertices();
        let b = PaperGraph::Rmat16.generate(Scale::Bench).num_vertices();
        assert!(t < b);
    }
}
