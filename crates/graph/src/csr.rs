//! Compressed-sparse-row (CSR) undirected graph.

use crate::Vertex;

/// An undirected graph in CSR form.
///
/// Each undirected edge `{u, v}` is stored twice, once in the adjacency list
/// of `u` and once in that of `v`, exactly like the paper's inputs ("since
/// the graphs are stored in CSR format, each undirected edge is represented
/// by two directed edges", Table 2 footnote). Consequently
/// [`num_directed_edges`](Self::num_directed_edges) is twice the number of
/// undirected edges.
///
/// Invariants (enforced by [`CsrGraph::from_parts`] and the builder):
/// * `offsets.len() == n + 1`, `offsets[0] == 0`, `offsets[n] == adj.len()`,
/// * offsets are non-decreasing,
/// * every adjacency entry is `< n`,
/// * no self-loops, no duplicate neighbors, and the edge set is symmetric.
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Box<[usize]>,
    adj: Box<[Vertex]>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays, validating all invariants.
    ///
    /// Returns an error string describing the first violated invariant.
    /// Prefer [`crate::GraphBuilder`] unless the arrays are already clean.
    pub fn from_parts(offsets: Vec<usize>, adj: Vec<Vertex>) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offsets must have at least one entry".into());
        }
        if offsets[0] != 0 {
            return Err(format!("offsets[0] must be 0, got {}", offsets[0]));
        }
        if *offsets.last().unwrap() != adj.len() {
            return Err(format!(
                "offsets[n] = {} must equal adjacency length {}",
                offsets.last().unwrap(),
                adj.len()
            ));
        }
        let n = offsets.len() - 1;
        if n > Vertex::MAX as usize {
            return Err(format!("too many vertices for u32 IDs: {n}"));
        }
        for w in offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets must be non-decreasing".into());
            }
        }
        for (i, &v) in adj.iter().enumerate() {
            if (v as usize) >= n {
                return Err(format!("adjacency entry {i} = {v} out of range (n = {n})"));
            }
        }
        let g = CsrGraph {
            offsets: offsets.into_boxed_slice(),
            adj: adj.into_boxed_slice(),
        };
        for u in 0..n as Vertex {
            let nbrs = g.neighbors(u);
            for &v in nbrs {
                if v == u {
                    return Err(format!("self-loop at vertex {u}"));
                }
                if !g.neighbors(v).contains(&u) {
                    return Err(format!("edge ({u}, {v}) has no back edge"));
                }
            }
            for w in nbrs.windows(2) {
                if w[0] == w[1] {
                    return Err(format!("duplicate neighbor {} at vertex {u}", w[0]));
                }
            }
        }
        Ok(g)
    }

    /// Builds a graph from CSR arrays **without** validating the symmetry /
    /// dedup invariants (offset shape is still checked). Intended for
    /// generators that construct provably clean arrays; debug builds assert
    /// full validity.
    pub fn from_parts_unchecked(offsets: Vec<usize>, adj: Vec<Vertex>) -> Self {
        debug_assert!(Self::from_parts(offsets.clone(), adj.clone()).is_ok());
        assert!(!offsets.is_empty() && offsets[0] == 0);
        assert_eq!(*offsets.last().unwrap(), adj.len());
        CsrGraph {
            offsets: offsets.into_boxed_slice(),
            adj: adj.into_boxed_slice(),
        }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *directed* adjacency entries (twice the undirected edges).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The neighbors of `v` as a slice (sorted ascending by construction
    /// when built through [`crate::GraphBuilder`]).
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Start offset of `v`'s adjacency list within [`adjacency`](Self::adjacency).
    #[inline]
    pub fn neighbor_start(&self, v: Vertex) -> usize {
        self.offsets[v as usize]
    }

    /// End offset (exclusive) of `v`'s adjacency list.
    #[inline]
    pub fn neighbor_end(&self, v: Vertex) -> usize {
        self.offsets[v as usize + 1]
    }

    /// The raw offsets array (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw adjacency array (`2m` entries).
    #[inline]
    pub fn adjacency(&self) -> &[Vertex] {
        &self.adj
    }

    /// Iterator over all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.num_vertices() as Vertex
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v` (the direction the paper's hooking processes).
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterator over every directed adjacency entry `(u, v)` (both
    /// directions of each undirected edge).
    pub fn directed_edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().copied().map(move |v| (u, v)))
    }

    /// Returns `true` if `{u, v}` is an edge (binary search; requires sorted
    /// adjacency lists, which the builder guarantees).
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Minimum degree over all vertices (0 for an empty graph).
    pub fn min_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).min().unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_directed_edges() as f64 / self.num_vertices() as f64
        }
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("n", &self.num_vertices())
            .field("m", &self.num_edges())
            .finish()
    }
}

/// Iterator over the neighbors of one vertex.
///
/// Thin alias kept for API stability; [`CsrGraph::neighbors`] returning a
/// slice is the preferred access path in hot loops.
pub type NeighborIter<'a> = std::slice::Iter<'a, Vertex>;

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        // 0-1, 1-2, 0-2
        CsrGraph::from_parts(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1]).unwrap()
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_parts(vec![0], vec![]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn singleton_vertices() {
        let g = CsrGraph::from_parts(vec![0, 0, 0, 0], vec![]).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.degree(1), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn edges_iterates_once_per_undirected_edge() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.directed_edges().count(), 6);
    }

    #[test]
    fn rejects_self_loop() {
        let err = CsrGraph::from_parts(vec![0, 1], vec![0]).unwrap_err();
        assert!(err.contains("self-loop"), "{err}");
    }

    #[test]
    fn rejects_asymmetric() {
        let err = CsrGraph::from_parts(vec![0, 1, 1], vec![1]).unwrap_err();
        assert!(err.contains("back edge"), "{err}");
    }

    #[test]
    fn rejects_duplicate_neighbor() {
        let err = CsrGraph::from_parts(vec![0, 2, 4], vec![1, 1, 0, 0]).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_bad_offsets() {
        assert!(CsrGraph::from_parts(vec![], vec![]).is_err());
        assert!(CsrGraph::from_parts(vec![1, 1], vec![1]).is_err());
        assert!(CsrGraph::from_parts(vec![0, 2, 1], vec![1, 0]).is_err());
        assert!(CsrGraph::from_parts(vec![0, 1], vec![5]).is_err());
    }

    #[test]
    fn degree_extremes() {
        let g = triangle();
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }
}
