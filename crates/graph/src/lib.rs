//! Graph substrate for the ECL-CC reproduction.
//!
//! This crate provides the compressed-sparse-row (CSR) graph representation
//! that every connected-components implementation in the workspace consumes,
//! together with:
//!
//! * [`builder::GraphBuilder`] — turns an arbitrary edge list into a clean,
//!   undirected, loop-free, deduplicated CSR graph (the normalization the
//!   paper applies to its inputs in §4),
//! * [`generate`] — synthetic generators for every topology class in the
//!   paper's Table 2 (grids, road networks, uniform random, RMAT, Kronecker,
//!   power-law web/social graphs, and degenerate shapes for testing),
//! * [`io`] — plain edge-list, DIMACS `.gr`, Matrix Market, and a compact
//!   binary format,
//! * [`catalog`] — named stand-ins for the paper's eighteen input graphs at
//!   configurable scale,
//! * [`stats`] — the degree/component statistics reported in Table 2.
//!
//! Vertices are `u32` indices in `0..n`, matching the `int`-based CUDA code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod compressed;
pub mod generate;
pub mod io;
pub mod partition;
pub mod stats;
pub mod transform;

mod csr;

pub use builder::GraphBuilder;
pub use compressed::CompressedGraph;
pub use csr::{CsrGraph, NeighborIter};

/// Vertex identifier type used across the workspace (matches the paper's
/// 32-bit `int` vertex IDs).
pub type Vertex = u32;

/// An undirected edge expressed as a pair of endpoints.
///
/// The pair is unordered semantically: `(u, v)` and `(v, u)` denote the same
/// undirected edge. Builders normalize direction internally.
pub type Edge = (Vertex, Vertex);
