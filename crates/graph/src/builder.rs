//! Edge-list → clean CSR normalization.
//!
//! The paper (§4) preprocesses its inputs: "Where necessary, we modified the
//! graphs to eliminate loops and multiple edges between the same two
//! vertices. We added any missing back edges to make the graphs undirected."
//! [`GraphBuilder`] performs exactly that normalization.

use crate::{CsrGraph, Edge, Vertex};

/// Accumulates raw (possibly dirty) edges and produces a clean undirected
/// [`CsrGraph`].
///
/// Accepted input may contain self-loops (dropped), duplicate edges in
/// either or both directions (collapsed), and vertices mentioned only as
/// endpoints (the vertex count grows to cover them).
///
/// ```
/// use ecl_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(0);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, other direction
/// b.add_edge(2, 2); // self-loop, dropped
/// b.add_edge(3, 1);
/// let g = b.build();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with at least `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity for `edges` edge insertions.
    pub fn with_capacity(num_vertices: usize, edges: usize) -> Self {
        GraphBuilder {
            num_vertices,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Adds an undirected edge; direction and duplicates are irrelevant.
    /// Self-loops are silently dropped at build time.
    #[inline]
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) {
        self.num_vertices = self.num_vertices.max(u as usize + 1).max(v as usize + 1);
        self.edges.push(if u <= v { (u, v) } else { (v, u) });
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = Edge>) {
        for (u, v) in it {
            self.add_edge(u, v);
        }
    }

    /// Ensures the graph has at least `n` vertices even if the trailing ones
    /// are isolated.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.num_vertices = self.num_vertices.max(n);
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of raw (pre-normalization) edge insertions so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Normalizes and produces the CSR graph: drops self-loops, dedupes,
    /// symmetrizes, and sorts each adjacency list ascending.
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_vertices;
        // Normalize to canonical (min, max) pairs, drop loops, sort, dedup.
        self.edges.retain(|&(u, v)| u != v);
        self.edges.sort_unstable();
        self.edges.dedup();

        // Counting sort into CSR with both directions.
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![0 as Vertex; self.edges.len() * 2];
        for &(u, v) in &self.edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Canonical-pair iteration order guarantees each list's `v` targets
        // arrive in ascending order *per direction*, but the two directions
        // interleave, so sort each list (they are short on average).
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        CsrGraph::from_parts_unchecked(offsets, adj)
    }
}

/// Convenience: build a clean graph straight from an edge slice.
pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(num_vertices, edges.len());
    b.extend_edges(edges.iter().copied());
    b.ensure_vertices(num_vertices);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_loops() {
        let g = from_edges(4, &[(0, 1), (1, 0), (0, 1), (2, 2), (3, 2)]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[3]);
    }

    #[test]
    fn grows_vertex_count_from_endpoints() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(5, 9);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 1);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn isolated_vertices_preserved() {
        let mut b = GraphBuilder::new(100);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn adjacency_sorted() {
        let g = from_edges(5, &[(3, 0), (3, 4), (3, 1), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_vertices(), 0);
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn only_self_loops_yields_edgeless() {
        let g = from_edges(3, &[(0, 0), (1, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn symmetry_holds() {
        let g = from_edges(6, &[(0, 3), (2, 5), (1, 4), (4, 2)]);
        for (u, v) in g.directed_edges() {
            assert!(g.has_edge(v, u));
        }
    }
}
