//! Graph transformations: vertex renumbering and subgraph extraction.
//!
//! The renumbering transforms back the paper's §5.1 observation that
//! europe_osm "is particularly sensitive to the order in which the
//! vertices are processed" — the `ordering` harness experiment runs
//! ECL-CC under several permutations of the same graph.

use crate::generate::Pcg32;
use crate::{CsrGraph, GraphBuilder, Vertex};

/// Relabels every vertex `v` as `perm[v]`. `perm` must be a permutation
/// of `0..n` (checked).
pub fn permute(g: &CsrGraph, perm: &[Vertex]) -> CsrGraph {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(
            (p as usize) < n && !std::mem::replace(&mut seen[p as usize], true),
            "not a permutation"
        );
    }
    let mut b = GraphBuilder::with_capacity(n, g.num_edges());
    for (u, v) in g.edges() {
        b.add_edge(perm[u as usize], perm[v as usize]);
    }
    b.ensure_vertices(n);
    b.build()
}

/// A uniformly random permutation of `0..n` (Fisher–Yates, deterministic
/// per seed).
pub fn random_permutation(n: usize, seed: u64) -> Vec<Vertex> {
    let mut perm: Vec<Vertex> = (0..n as Vertex).collect();
    let mut rng = Pcg32::new(seed);
    for i in (1..n).rev() {
        let j = rng.below_usize(i + 1);
        perm.swap(i, j);
    }
    perm
}

/// The reversing permutation `v ↦ n - 1 - v`.
pub fn reverse_permutation(n: usize) -> Vec<Vertex> {
    (0..n as Vertex).rev().collect()
}

/// Renumbers vertices by BFS visit order from vertex 0 (unreached
/// vertices keep their relative order after all reached ones). BFS order
/// gives neighbors nearby IDs — the locality-friendly extreme.
pub fn bfs_permutation(g: &CsrGraph) -> Vec<Vertex> {
    let n = g.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as Vertex {
        if seen[s as usize] {
            continue;
        }
        seen[s as usize] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    // order[k] = old vertex visited k-th; invert to perm[old] = new.
    let mut perm = vec![0 as Vertex; n];
    for (new_id, &old) in order.iter().enumerate() {
        perm[old as usize] = new_id as Vertex;
    }
    perm
}

/// Extracts the induced subgraph over the vertices where `keep` is true.
/// Returns the subgraph and the mapping `old vertex -> new vertex`
/// (`None` for dropped vertices).
pub fn induced_subgraph(g: &CsrGraph, keep: &[bool]) -> (CsrGraph, Vec<Option<Vertex>>) {
    assert_eq!(keep.len(), g.num_vertices());
    let mut map = vec![None; g.num_vertices()];
    let mut next = 0 as Vertex;
    for (v, &k) in keep.iter().enumerate() {
        if k {
            map[v] = Some(next);
            next += 1;
        }
    }
    let mut b = GraphBuilder::new(next as usize);
    for (u, v) in g.edges() {
        if let (Some(nu), Some(nv)) = (map[u as usize], map[v as usize]) {
            b.add_edge(nu, nv);
        }
    }
    b.ensure_vertices(next as usize);
    (b.build(), map)
}

/// Extracts the largest connected component as its own graph, along with
/// the old→new vertex mapping.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<Option<Vertex>>) {
    let labels = crate::stats::reference_labels(g);
    let mut counts: std::collections::HashMap<Vertex, usize> = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let Some((&biggest, _)) = counts.iter().max_by_key(|&(_, &c)| c) else {
        return (GraphBuilder::new(0).build(), Vec::new());
    };
    let keep: Vec<bool> = labels.iter().map(|&l| l == biggest).collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::stats;

    #[test]
    fn permute_preserves_structure() {
        let g = generate::gnm_random(200, 500, 1);
        let perm = random_permutation(200, 7);
        let p = permute(&g, &perm);
        assert_eq!(p.num_edges(), g.num_edges());
        assert_eq!(stats::count_components(&p), stats::count_components(&g));
        // Degree multiset preserved.
        let mut d1: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let mut d2: Vec<usize> = p.vertices().map(|v| p.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn identity_permutation_is_noop() {
        let g = generate::grid2d(8, 8);
        let id: Vec<Vertex> = (0..64).collect();
        assert_eq!(permute(&g, &id), g);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation() {
        let g = generate::path(4);
        permute(&g, &[0, 0, 1, 2]);
    }

    #[test]
    fn random_permutation_is_permutation() {
        let p = random_permutation(100, 3);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(p, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn bfs_permutation_improves_locality() {
        // On a randomly-permuted grid, BFS renumbering restores small gaps.
        let g = permute(&generate::grid2d(20, 20), &random_permutation(400, 5));
        let perm = bfs_permutation(&g);
        let p = permute(&g, &perm);
        let gap = |g: &crate::CsrGraph| -> u64 {
            g.directed_edges()
                .map(|(u, v)| (u as i64 - v as i64).unsigned_abs())
                .sum()
        };
        assert!(
            gap(&p) < gap(&g) / 2,
            "bfs {} vs original {}",
            gap(&p),
            gap(&g)
        );
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = generate::complete(6);
        let keep = vec![true, true, true, false, false, false];
        let (sub, map) = induced_subgraph(&g, &keep);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map[0], Some(0));
        assert_eq!(map[5], None);
    }

    #[test]
    fn largest_component_extraction() {
        let mut b = crate::GraphBuilder::new(0);
        // Component A: triangle (3 vertices); component B: edge (2).
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        let (big, map) = largest_component(&g);
        assert_eq!(big.num_vertices(), 3);
        assert_eq!(big.num_edges(), 3);
        assert!(map[3].is_none() && map[4].is_none());
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let g = crate::GraphBuilder::new(0).build();
        let (big, _) = largest_component(&g);
        assert_eq!(big.num_vertices(), 0);
    }
}
