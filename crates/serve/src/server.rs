//! The TCP server: accept loop, session lifecycle, graceful drain.
//!
//! Robustness invariants, each enforced structurally rather than by
//! hoping clients behave:
//!
//! * **Bounded concurrency** — an accepted connection beyond
//!   `max_conns` is answered with a one-line `BUSY` greeting and closed
//!   before a session thread is ever spawned.
//! * **Bounded patience** — every socket gets a read timeout; a session
//!   that stays silent past `idle_timeout_ms` is reaped with a
//!   structured `ERR idle-timeout`. A stalled half-written frame
//!   therefore occupies a slot for a bounded time only.
//! * **Bounded damage** — each session runs under
//!   [`catch_unwind`], so a panicking session increments a counter and
//!   dies alone; the accept loop and every other session keep going.
//! * **Bounded lines** — input is scanned byte-wise with a hard
//!   [`MAX_LINE_BYTES`] cap; oversized frames are discarded to the next
//!   newline and answered with `ERR too-long`.
//! * **Graceful drain** — `SHUTDOWN` (or [`Server::stop`]) stops the
//!   accept loop, lets in-flight sessions finish their current
//!   request, drains the job queue, takes a final snapshot, and writes
//!   the metrics file. Exit is clean; a SIGKILL instead loses nothing
//!   acknowledged (see [`crate::state`]).

use crate::jobs::{JobRunner, JobsConfig};
use crate::protocol::{parse_request, Request, RequestError, MAX_LINE_BYTES, PROTOCOL_VERSION};
use crate::state::ServeState;
use ecl_obs::{Recorder, TraceEvent, PID_ENGINE};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// State directory (WAL + snapshots).
    pub dir: PathBuf,
    /// Vertex-space size for a fresh start (ignored on resume: the WAL
    /// meta line pins it).
    pub vertices: usize,
    /// Resume from an existing state directory instead of truncating.
    pub resume: bool,
    /// Concurrent-session cap; excess connections get `BUSY`.
    pub max_conns: usize,
    /// Socket read poll granularity, milliseconds.
    pub read_timeout_ms: u64,
    /// Reap a session silent for this long, milliseconds.
    pub idle_timeout_ms: u64,
    /// Snapshot every N durable records (0 = only on graceful drain).
    pub snapshot_every: u64,
    /// Batch-job subsystem tuning.
    pub jobs: JobsConfig,
    /// Observability recorder (disabled by default).
    pub recorder: Recorder,
    /// Where to write the final metrics JSON on drain, if anywhere.
    pub metrics_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            dir: PathBuf::from("serve-state"),
            vertices: 1 << 20,
            resume: false,
            max_conns: 256,
            read_timeout_ms: 50,
            idle_timeout_ms: 10_000,
            snapshot_every: 10_000,
            jobs: JobsConfig::default(),
            recorder: Recorder::disabled(),
            metrics_path: None,
        }
    }
}

/// Operational counters, exposed by `METRICS` and the final metrics
/// file. Monotonic within one server lifetime; deliberately NOT
/// persisted (unlike connectivity state).
#[derive(Default)]
struct Counters {
    sessions_opened: AtomicU64,
    active_sessions: AtomicU64,
    rejected_busy: AtomicU64,
    malformed: AtomicU64,
    idle_timeouts: AtomicU64,
    session_panics: AtomicU64,
    requests: AtomicU64,
}

struct Shared {
    state: ServeState,
    jobs: JobRunner,
    counters: Counters,
    recorder: Recorder,
    shutdown: AtomicBool,
    cfg: ServeConfig,
}

/// A running server. Drop does not stop it; call [`Server::stop`] (or
/// send `SHUTDOWN` over the wire) and then [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Server {
    /// Opens (or resumes) the state, starts the job workers and the
    /// accept loop, and returns once the listener is bound.
    pub fn start(cfg: ServeConfig) -> Result<Server, String> {
        let state = if cfg.resume {
            ServeState::resume(&cfg.dir, cfg.snapshot_every)?
        } else {
            ServeState::open_fresh(&cfg.dir, cfg.vertices, cfg.snapshot_every)?
        };
        let jobs = JobRunner::start(cfg.jobs.clone());
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;

        let shared = Arc::new(Shared {
            state,
            jobs,
            counters: Counters::default(),
            recorder: cfg.recorder.clone(),
            shutdown: AtomicBool::new(false),
            cfg,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(Server {
            addr,
            shared,
            accept_thread: Mutex::new(Some(accept_thread)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain (idempotent, non-blocking).
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for the drain to complete. Returns an error if the final
    /// snapshot could not be written.
    pub fn join(self) -> Result<(), String> {
        if let Some(h) = self.accept_thread.lock().unwrap().take() {
            h.join().map_err(|_| "accept loop panicked".to_string())?;
        }
        // The accept loop has drained sessions and jobs; persist.
        self.shared.state.snapshot()?;
        let r = &self.shared.recorder;
        if r.is_enabled() {
            let c = &self.shared.counters;
            r.set_metric(
                "serve.sessions_opened",
                c.sessions_opened.load(Ordering::Relaxed) as f64,
            );
            r.set_metric(
                "serve.rejected_busy",
                c.rejected_busy.load(Ordering::Relaxed) as f64,
            );
            r.set_metric(
                "serve.malformed",
                c.malformed.load(Ordering::Relaxed) as f64,
            );
            r.set_metric(
                "serve.idle_timeouts",
                c.idle_timeouts.load(Ordering::Relaxed) as f64,
            );
            r.set_metric(
                "serve.session_panics",
                c.session_panics.load(Ordering::Relaxed) as f64,
            );
            r.set_metric("serve.requests", c.requests.load(Ordering::Relaxed) as f64);
            if let Some(path) = &self.shared.cfg.metrics_path {
                std::fs::write(path, r.metrics_json())
                    .map_err(|e| format!("write metrics {}: {e}", path.display()))?;
            }
        }
        Ok(())
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                sessions.retain(|h| !h.is_finished());
                let c = &shared.counters;
                if c.active_sessions.load(Ordering::SeqCst) >= shared.cfg.max_conns as u64 {
                    c.rejected_busy.fetch_add(1, Ordering::Relaxed);
                    reject_busy(stream, &shared);
                    continue;
                }
                c.sessions_opened.fetch_add(1, Ordering::Relaxed);
                c.active_sessions.fetch_add(1, Ordering::SeqCst);
                let session_shared = Arc::clone(&shared);
                sessions.push(std::thread::spawn(move || {
                    // Panic containment: a poisoned session must never
                    // take the server (or the counter) down with it.
                    let sess = Arc::clone(&session_shared);
                    let outcome =
                        catch_unwind(AssertUnwindSafe(move || run_session(stream, &sess)));
                    if outcome.is_err() {
                        session_shared
                            .counters
                            .session_panics
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    session_shared
                        .counters
                        .active_sessions
                        .fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Drain: no new sessions; the ones in flight notice the shutdown
    // flag at their next request boundary and close.
    for h in sessions {
        let _ = h.join();
    }
    shared.jobs.shutdown();
}

/// Over-capacity greeting: structured, one line, immediate close.
fn reject_busy(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = writeln!(
        stream,
        "BUSY max-conns server at capacity ({})",
        shared.cfg.max_conns
    );
}

/// Byte-wise line reader with idle reaping and a hard length cap.
enum ReadOutcome {
    Line(String),
    TooLong,
    IdleTimeout,
    Disconnected,
    Draining,
}

fn read_line(stream: &mut TcpStream, pending: &mut Vec<u8>, shared: &Shared) -> ReadOutcome {
    let idle_deadline = Instant::now() + Duration::from_millis(shared.cfg.idle_timeout_ms);
    let mut too_long = false;
    let mut byte = [0u8; 1];
    loop {
        // Serve a buffered line first (pipelined clients).
        if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=pos).collect();
            if too_long {
                return ReadOutcome::TooLong;
            }
            let text = String::from_utf8_lossy(&line[..line.len() - 1])
                .trim_end_matches('\r')
                .to_string();
            return ReadOutcome::Line(text);
        }
        if pending.len() > MAX_LINE_BYTES {
            // Discard until the newline arrives, then report once.
            too_long = true;
            pending.clear();
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return ReadOutcome::Draining;
        }
        match stream.read(&mut byte) {
            Ok(0) => return ReadOutcome::Disconnected,
            Ok(_) => pending.push(byte[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= idle_deadline {
                    return ReadOutcome::IdleTimeout;
                }
            }
            Err(_) => return ReadOutcome::Disconnected,
        }
    }
}

fn run_session(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.cfg.read_timeout_ms.max(1),
    )));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(2_000)));
    let _ = stream.set_nodelay(true);

    let stats = shared.state.stats();
    if writeln!(stream, "{PROTOCOL_VERSION} OK vertices={}", stats.vertices).is_err() {
        return;
    }

    let mut pending: Vec<u8> = Vec::new();
    loop {
        let outcome = read_line(&mut stream, &mut pending, shared);
        let line = match outcome {
            ReadOutcome::Line(l) => l,
            ReadOutcome::TooLong => {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                let e = RequestError::new(
                    "too-long",
                    format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                );
                if writeln!(stream, "{}", e.to_line()).is_err() {
                    return;
                }
                continue;
            }
            ReadOutcome::IdleTimeout => {
                shared
                    .counters
                    .idle_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                let e = RequestError::new(
                    "idle-timeout",
                    format!("no complete request in {} ms", shared.cfg.idle_timeout_ms),
                );
                let _ = writeln!(stream, "{}", e.to_line());
                return;
            }
            ReadOutcome::Disconnected => return,
            ReadOutcome::Draining => return,
        };

        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let response = match parse_request(&line) {
            Err(e) => {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                e.to_line()
            }
            Ok(req) => match handle_request(shared, req) {
                Handled::Reply(r) => r,
                Handled::Close(r) => {
                    let _ = writeln!(stream, "{r}");
                    return;
                }
            },
        };
        if writeln!(stream, "{response}").is_err() {
            return;
        }
    }
}

enum Handled {
    Reply(String),
    Close(String),
}

fn handle_request(shared: &Arc<Shared>, req: Request) -> Handled {
    let render = |r: Result<String, RequestError>| match r {
        Ok(ok) => Handled::Reply(ok),
        Err(e) => Handled::Reply(e.to_line()),
    };
    match req {
        Request::Add(u, v) => render(
            shared
                .state
                .add_edge(u, v)
                .map(|linked| format!("OK linked={linked}")),
        ),
        Request::Conn(u, v) => render(shared.state.connected(u, v).map(|c| format!("OK {c}"))),
        Request::Comp(v) => render(shared.state.component(v).map(|r| format!("OK {r}"))),
        Request::Stats => {
            let s = shared.state.stats();
            Handled::Reply(format!(
                "OK vertices={} edges={} components={}",
                s.vertices, s.edges, s.components
            ))
        }
        Request::Metrics => {
            let c = &shared.counters;
            if shared.recorder.is_enabled() {
                shared.recorder.record(TraceEvent::counter(
                    "serve.queue_depth",
                    "serve",
                    PID_ENGINE,
                    shared.recorder.now_us(),
                    shared.jobs.queue_depth() as f64,
                ));
            }
            Handled::Reply(format!(
                "OK sessions={} active={} busy_rejects={} malformed={} idle_timeouts={} \
                 panics={} requests={} queue_depth={}",
                c.sessions_opened.load(Ordering::Relaxed),
                c.active_sessions.load(Ordering::SeqCst),
                c.rejected_busy.load(Ordering::Relaxed),
                c.malformed.load(Ordering::Relaxed),
                c.idle_timeouts.load(Ordering::Relaxed),
                c.session_panics.load(Ordering::Relaxed),
                c.requests.load(Ordering::Relaxed),
                shared.jobs.queue_depth(),
            ))
        }
        Request::Submit { name: _, spec } => {
            render(shared.jobs.submit(&spec).map(|id| format!("OK job={id}")))
        }
        Request::Job(id) => match shared.jobs.status(id) {
            Some(status) => Handled::Reply(status.to_line()),
            None => Handled::Reply(
                RequestError::new("no-such-job", format!("job {id} was never submitted")).to_line(),
            ),
        },
        Request::Ping => Handled::Reply("OK pong".to_string()),
        Request::Quit => Handled::Close("OK bye".to_string()),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Handled::Close("OK draining".to_string())
        }
    }
}
