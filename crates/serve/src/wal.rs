//! Write-ahead edge log with leader–follower group commit.
//!
//! Every acknowledged `ADD` is durable: the server applies the edge to
//! the in-memory structure first, appends it here, and only replies
//! `OK` once the record is fsync'd. A naive implementation would pay
//! one `fsync` per edge, which collapses under hundreds of concurrent
//! writers — so appends use the classic group-commit dance: each
//! appender buffers its record under the state lock and then either
//! becomes the *flush leader* (writes and syncs everything buffered so
//! far, including records that arrived from other threads while it held
//! the buffer) or waits on a condvar until a leader's flush covers its
//! sequence number. One disk round-trip amortizes across every record
//! that raced in during the previous flush.
//!
//! The file format follows the journal crate's discipline: TSV lines, a
//! `meta` header pinning the vertex count, records readable after
//! arbitrary truncation. A kill mid-append leaves at most a torn tail,
//! which [`load`] discards — by the apply-then-append ordering those
//! records were never acknowledged, so dropping them only loses edges
//! no client was told about. [`load`] also reports the byte offset of
//! the end of the last valid record, and [`Wal::append`] truncates the
//! file to that offset before writing anything: appending after torn
//! bytes would merge the tear with the next record into one
//! unparseable line, which a later [`load`] would treat as the tear —
//! silently discarding every acknowledged record behind it.
//!
//! A failed flush rolls the file back to its pre-write length before
//! the batch is re-queued, so a partial `write_all` can neither leave
//! a mid-file tear nor be appended twice by a later successful flush.
//! If the rollback itself fails the on-disk state is unknown and the
//! WAL is **poisoned**: every subsequent append fails fast rather than
//! risk acknowledging records it cannot prove durable.
//!
//! The log does not grow forever: after a durable snapshot the server
//! calls [`Wal::compact`], which rewrites the file to only the records
//! past the snapshot's watermark and pins the dropped count in the
//! header's base-offset field (`eclwal\t2\t{n}\t{base}`). The rewrite
//! is write-temp-fsync-rename, so a kill mid-compaction leaves either
//! the old or the new complete log — never a tear, never a lost
//! acknowledged record.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

/// WAL format version; bumped on incompatible changes. Version 2 added
/// the base-offset header field for compacted logs; version-1 files
/// (implicit base 0) are still accepted by [`load`].
const VERSION: u32 = 2;

struct WalState {
    /// Records appended but not yet handed to a flush.
    buf: Vec<u8>,
    /// Records assigned a sequence number so far (1-based).
    pending: u64,
    /// Highest sequence number known durable on disk.
    flushed: u64,
    /// Records logically preceding this file: compaction drops the
    /// prefix a durable snapshot already covers and pins the count in
    /// the header, so sequence numbers keep counting from the start of
    /// history.
    base: u64,
    /// A leader is currently writing; followers wait. Compaction also
    /// raises this flag: it is an exclusive writer of the same file.
    flushing: bool,
    /// A flush failed *and* the rollback failed: the file's tail is in
    /// an unknown state, so no further append may be acknowledged.
    poisoned: bool,
}

/// Append-side handle: concurrent, durable, group-committed.
pub struct Wal {
    state: Mutex<WalState>,
    cv: Condvar,
    /// The file sits outside the state lock so followers keep buffering
    /// while the leader is inside `fsync`. `flushing` guarantees a
    /// single writer, so file order always equals sequence order.
    file: Mutex<File>,
    /// Where the file lives — compaction rewrites it in place (via
    /// write-temp-rename) and must reopen the append handle afterwards.
    path: PathBuf,
    /// Vertex count pinned in the header, re-pinned on compaction.
    vertices: usize,
}

impl Wal {
    /// Creates (truncating) a fresh WAL for a structure of `n` vertices.
    pub fn create(path: &Path, n: usize) -> io::Result<Wal> {
        let mut file = File::create(path)?;
        writeln!(file, "eclwal\t{VERSION}\t{n}\t0")?;
        file.sync_data()?;
        Ok(Wal::wrap(file, path, n, 0, 0))
    }

    /// Reopens the WAL behind a [`load`] for appending: the recovered
    /// records are already durable, so they seed the flushed watermark.
    /// If the file carries torn bytes past the last valid record (a
    /// kill mid-append), they are cut off first — appending after them
    /// would fuse the tear and the new record into one unparseable
    /// line, which the *next* [`load`] would mistake for the tear and
    /// discard together with every acknowledged record after it.
    pub fn append(path: &Path, recovered: &WalSnapshot) -> io::Result<Wal> {
        let file = OpenOptions::new().append(true).open(path)?;
        if file.metadata()?.len() != recovered.valid_len {
            file.set_len(recovered.valid_len)?;
            file.sync_data()?;
        }
        Ok(Wal::wrap(
            file,
            path,
            recovered.vertices,
            recovered.base,
            recovered.edges.len() as u64,
        ))
    }

    fn wrap(file: File, path: &Path, vertices: usize, base: u64, in_file: u64) -> Wal {
        // `base` records were compacted away; the file holds `in_file`
        // more and the sequence continues from their sum.
        let flushed = base + in_file;
        Wal {
            state: Mutex::new(WalState {
                buf: Vec::new(),
                pending: flushed,
                flushed,
                base,
                flushing: false,
                poisoned: false,
            }),
            cv: Condvar::new(),
            file: Mutex::new(file),
            path: path.to_path_buf(),
            vertices,
        }
    }

    fn poisoned_err() -> io::Error {
        io::Error::other("WAL poisoned: an earlier flush failed and could not be rolled back")
    }

    /// Durably appends one edge record, returning its sequence number
    /// (1-based count of records ever appended). Returns only once the
    /// record — and therefore every record sequenced before it — is
    /// fsync'd: the acknowledgement point for `ADD`.
    pub fn append_edge(&self, u: u32, v: u32) -> io::Result<u64> {
        let my_seq = {
            let mut s = self.state.lock().unwrap();
            if s.poisoned {
                return Err(Self::poisoned_err());
            }
            s.pending += 1;
            let seq = s.pending;
            s.buf.extend_from_slice(format!("e\t{u}\t{v}\n").as_bytes());
            seq
        };
        loop {
            let mut s = self.state.lock().unwrap();
            if s.poisoned {
                return Err(Self::poisoned_err());
            }
            if s.flushed >= my_seq {
                return Ok(my_seq);
            }
            if s.flushing {
                // A leader is on the disk; wait for its verdict.
                let _unused = self.cv.wait(s).unwrap();
                continue;
            }
            // Become the leader: take everything buffered so far.
            s.flushing = true;
            let batch = std::mem::take(&mut s.buf);
            let target = s.pending;
            drop(s);

            let res = {
                let mut f = self.file.lock().unwrap();
                flush_batch(&mut f, &batch)
            };

            let mut s = self.state.lock().unwrap();
            s.flushing = false;
            match res {
                Ok(()) => {
                    s.flushed = s.flushed.max(target);
                    self.cv.notify_all();
                    // Loop exits via the flushed check above.
                }
                Err(FlushError { cause, poisons }) => {
                    if poisons {
                        // The rollback failed: bytes of `batch` may or
                        // may not be on disk, so neither retrying (risk
                        // of duplicates) nor dropping (risk of a
                        // mid-file tear before records already written
                        // behind it) is sound. Refuse all future
                        // appends; followers observe `poisoned` when
                        // they wake.
                        s.poisoned = true;
                        s.buf.clear();
                    } else {
                        // The file was rolled back to the last record
                        // boundary, so the batch can safely be retried:
                        // put it back so followers' records are not
                        // silently dropped. Everyone waiting re-races
                        // and observes the error on their own attempt.
                        let mut unwritten = batch;
                        unwritten.extend_from_slice(&s.buf);
                        s.buf = unwritten;
                    }
                    self.cv.notify_all();
                    return Err(cause);
                }
            }
        }
    }

    /// Number of records known durable (the `covered` watermark a
    /// snapshot records). Counts from the start of history — compaction
    /// never lowers it.
    pub fn durable_records(&self) -> u64 {
        self.state.lock().unwrap().flushed
    }

    /// Compacts the log: drops every record a durable snapshot already
    /// covers (`upto`, a [`durable_records`](Self::durable_records)
    /// watermark) and pins that count in the header's base-offset field,
    /// so resume replays only the suffix. The rewrite is
    /// write-temp-fsync-rename — a kill at any point leaves either the
    /// old complete log or the new complete log, never a tear — and the
    /// append handle is reopened on the new file before any later flush
    /// can write (appending through the old handle would scribble on the
    /// unlinked inode and silently lose acknowledged records).
    ///
    /// Only durable records may be compacted; `upto` is clamped to the
    /// flushed watermark. A failure leaves the old log in place and the
    /// WAL fully usable — compaction is an optimization, never a
    /// durability hazard.
    pub fn compact(&self, upto: u64) -> io::Result<()> {
        // Become the exclusive writer, exactly like a flush leader:
        // no flush can be mid-write while the file is being swapped.
        let (base, upto) = {
            let mut s = self.state.lock().unwrap();
            loop {
                if s.poisoned {
                    return Err(Self::poisoned_err());
                }
                if !s.flushing {
                    break;
                }
                s = self.cv.wait(s).unwrap();
            }
            let upto = upto.min(s.flushed);
            if upto <= s.base {
                return Ok(()); // nothing new to drop
            }
            s.flushing = true;
            (s.base, upto)
        };

        let res = self.rewrite(base, upto);

        let mut s = self.state.lock().unwrap();
        s.flushing = false;
        match res {
            Ok(()) => {
                s.base = upto;
                self.cv.notify_all();
                Ok(())
            }
            Err(FlushError { cause, poisons }) => {
                if poisons {
                    // The rename landed but the append handle could not
                    // be reopened: the old handle points at the unlinked
                    // inode, so any later flush would acknowledge
                    // records onto a file nobody can ever read back.
                    s.poisoned = true;
                    s.buf.clear();
                }
                self.cv.notify_all();
                Err(cause)
            }
        }
    }

    /// The compaction rewrite itself, run while holding writer
    /// exclusivity (`flushing == true`). A failure *before* the rename
    /// leaves the old complete log and the old (still valid) append
    /// handle — harmless. A failure *after* the rename poisons.
    fn rewrite(&self, base: u64, upto: u64) -> Result<(), FlushError> {
        let mut file = self.file.lock().unwrap();
        let soft = |cause: io::Error| FlushError {
            cause,
            poisons: false,
        };
        // The last flush fsync'd everything durable, so re-reading the
        // file sees exactly records base+1..=flushed.
        let snap = load(&self.path)
            .map_err(|e| soft(io::Error::other(format!("re-read for compaction: {e}"))))?;
        let drop_count = (upto - base) as usize;
        let kept = &snap.edges[drop_count.min(snap.edges.len())..];

        let tmp = self.path.with_extension("wal.compact-tmp");
        let write_tmp = || -> io::Result<()> {
            let mut out = File::create(&tmp)?;
            let mut doc = format!("eclwal\t{VERSION}\t{}\t{upto}\n", self.vertices);
            for &(u, v) in kept {
                doc.push_str(&format!("e\t{u}\t{v}\n"));
            }
            out.write_all(doc.as_bytes())?;
            out.sync_data()?;
            Ok(())
        };
        write_tmp().map_err(soft)?;
        std::fs::rename(&tmp, &self.path).map_err(soft)?;
        if let Some(dir) = self.path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        // Swap the append handle onto the new inode before releasing
        // writer exclusivity. Past the rename, failing to reopen means
        // the WAL must be poisoned (see `compact`).
        *file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|cause| FlushError {
                cause,
                poisons: true,
            })?;
        Ok(())
    }
}

/// A failed flush, and whether the failure leaves the file in an
/// unknown state (rollback failed ⇒ the WAL must be poisoned).
struct FlushError {
    cause: io::Error,
    poisons: bool,
}

/// Writes and syncs one batch. `write_all` may fail after writing a
/// prefix (or succeed entirely with only the fsync failing), so on any
/// failure the file is rolled back to its pre-write length: re-queuing
/// the batch is then a clean retry rather than a source of duplicate
/// records or a partial record fused with the next flush's bytes.
fn flush_batch(f: &mut File, batch: &[u8]) -> Result<(), FlushError> {
    let before = match f.metadata() {
        // Nothing was written yet, so the batch is safe to re-queue.
        Err(e) => {
            return Err(FlushError {
                cause: e,
                poisons: false,
            })
        }
        Ok(m) => m.len(),
    };
    match f.write_all(batch).and_then(|()| f.sync_data()) {
        Ok(()) => Ok(()),
        Err(cause) => {
            let rollback = f.set_len(before).and_then(|()| f.sync_data());
            Err(FlushError {
                cause,
                poisons: rollback.is_err(),
            })
        }
    }
}

/// Everything recovered from a WAL file.
#[derive(Debug)]
pub struct WalSnapshot {
    /// The vertex count the WAL was created with.
    pub vertices: usize,
    /// Records logically preceding this file: a compacted log starts at
    /// sequence `base + 1`, and the dropped prefix is only recoverable
    /// from the state snapshot that justified the compaction. Zero for
    /// uncompacted (and all version-1) logs.
    pub base: u64,
    /// Durable edge records present in the file, in append order
    /// (sequence numbers `base+1 ..= base+edges.len()`). A torn
    /// trailing record is discarded (it was never acknowledged).
    pub edges: Vec<(u32, u32)>,
    /// Byte offset of the end of the last valid record (= the offset
    /// [`Wal::append`] truncates to, cutting any torn tail).
    pub valid_len: u64,
}

/// Loads a WAL, discarding a torn tail. Fails on a missing file or an
/// unreadable meta line. A record is only valid if it parses *and*
/// carries its trailing newline: a truncated write can leave a prefix
/// that still parses (`e\t2\t5` torn from `e\t2\t57\n`), and trusting
/// it would resurrect an edge that was never acknowledged.
pub fn load(path: &Path) -> io::Result<WalSnapshot> {
    let mut reader = BufReader::new(File::open(path)?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "WAL is empty"));
    }
    if !line.ends_with('\n') {
        // `create` syncs the meta line before any append is possible,
        // so a torn meta means creation itself died — nothing was ever
        // acknowledged, and there is no valid prefix to resume from.
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "torn WAL meta line",
        ));
    }
    let meta = line.trim_end_matches('\n');
    let mut mf = meta.split('\t');
    let bad = || {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad WAL meta line: {meta:?}"),
        )
    };
    let inv = |e: std::num::ParseIntError| io::Error::new(io::ErrorKind::InvalidData, e);
    let (vertices, base) = match (mf.next(), mf.next(), mf.next(), mf.next(), mf.next()) {
        // Version 1: no base-offset field (implicitly 0).
        (Some("eclwal"), Some("1"), Some(n), None, None) => (n.parse::<usize>().map_err(inv)?, 0),
        // Version 2: base-offset header for compacted logs.
        (Some("eclwal"), Some("2"), Some(n), Some(b), None) => (
            n.parse::<usize>().map_err(inv)?,
            b.parse::<u64>().map_err(inv)?,
        ),
        _ => return Err(bad()),
    };
    let mut valid_len = line.len() as u64;
    let mut edges = Vec::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        // First incomplete or unparseable record = torn tail;
        // everything at and after a tear is untrusted by construction.
        if !line.ends_with('\n') {
            break;
        }
        match parse_edge_line(line.trim_end_matches('\n')) {
            Some(e) => {
                edges.push(e);
                valid_len += n as u64;
            }
            None => break,
        }
    }
    Ok(WalSnapshot {
        vertices,
        base,
        edges,
        valid_len,
    })
}

fn parse_edge_line(line: &str) -> Option<(u32, u32)> {
    let mut f = line.split('\t');
    match (f.next(), f.next(), f.next(), f.next()) {
        (Some("e"), Some(u), Some(v), None) => Some((u.parse().ok()?, v.parse().ok()?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmpfile(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ecl_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("edges.wal")
    }

    #[test]
    fn roundtrip_create_append_load() {
        let p = tmpfile("roundtrip");
        let wal = Wal::create(&p, 10).unwrap();
        assert_eq!(wal.append_edge(0, 1).unwrap(), 1);
        assert_eq!(wal.append_edge(2, 3).unwrap(), 2);
        assert_eq!(wal.durable_records(), 2);
        drop(wal);
        let snap = load(&p).unwrap();
        assert_eq!(snap.vertices, 10);
        assert_eq!(snap.edges, vec![(0, 1), (2, 3)]);
        assert_eq!(snap.valid_len, std::fs::metadata(&p).unwrap().len());
        // Resume-side append continues the sequence.
        let wal = Wal::append(&p, &snap).unwrap();
        assert_eq!(wal.append_edge(4, 5).unwrap(), 3);
        drop(wal);
        assert_eq!(load(&p).unwrap().edges.len(), 3);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let p = tmpfile("torn");
        let wal = Wal::create(&p, 4).unwrap();
        wal.append_edge(0, 1).unwrap();
        drop(wal);
        let clean_len = std::fs::metadata(&p).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        write!(f, "e\t2").unwrap(); // killed mid-record
        drop(f);
        let snap = load(&p).unwrap();
        assert_eq!(snap.edges, vec![(0, 1)]);
        assert_eq!(snap.valid_len, clean_len);
    }

    #[test]
    fn parseable_tail_without_newline_is_torn() {
        // A truncated `e\t2\t57\n` can leave `e\t2\t5`, which still
        // parses as an edge — but without its newline it was never
        // fully written, hence never acknowledged.
        let p = tmpfile("noeol");
        let wal = Wal::create(&p, 64).unwrap();
        wal.append_edge(0, 1).unwrap();
        drop(wal);
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        write!(f, "e\t2\t5").unwrap();
        drop(f);
        assert_eq!(load(&p).unwrap().edges, vec![(0, 1)]);
    }

    #[test]
    fn append_after_torn_tail_truncates_before_writing() {
        // The resume → add → kill → resume sequence over a torn tail:
        // without truncation the new record fuses with the torn bytes
        // ("e\t2" + "e\t4\t5\n" = one unparseable line) and the second
        // load discards it and everything after — acknowledged-data
        // loss.
        let p = tmpfile("torn_resume");
        let wal = Wal::create(&p, 16).unwrap();
        wal.append_edge(0, 1).unwrap();
        drop(wal);
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        write!(f, "e\t2").unwrap(); // killed mid-record
        drop(f);

        let snap = load(&p).unwrap();
        assert_eq!(snap.edges, vec![(0, 1)]);
        let wal = Wal::append(&p, &snap).unwrap();
        assert_eq!(wal.append_edge(4, 5).unwrap(), 2);
        wal.append_edge(6, 7).unwrap();
        drop(wal);

        let snap = load(&p).unwrap();
        assert_eq!(snap.edges, vec![(0, 1), (4, 5), (6, 7)]);
        assert_eq!(snap.valid_len, std::fs::metadata(&p).unwrap().len());
    }

    #[test]
    fn flush_failure_with_failed_rollback_poisons_the_wal() {
        // A read-only handle makes both the write and the rollback
        // fail, which must poison the WAL: the append errors, and every
        // later append fails fast instead of acknowledging records that
        // were never written.
        let p = tmpfile("poison");
        drop(Wal::create(&p, 8).unwrap());
        let before = std::fs::read(&p).unwrap();
        let wal = Wal::wrap(File::open(&p).unwrap(), &p, 8, 0, 0);
        assert!(wal.append_edge(0, 1).is_err());
        let err = wal.append_edge(2, 3).unwrap_err();
        assert!(err.to_string().contains("poisoned"), "got: {err}");
        // Nothing leaked onto disk.
        assert_eq!(std::fs::read(&p).unwrap(), before);
    }

    #[test]
    fn bad_meta_rejected() {
        let p = tmpfile("meta");
        assert!(load(&p).is_err(), "missing file");
        std::fs::write(&p, "").unwrap();
        assert!(load(&p).is_err(), "empty file");
        std::fs::write(&p, "e\t0\t1\n").unwrap();
        assert!(load(&p).is_err(), "no meta line");
        std::fs::write(&p, "eclwal\t99\t10\n").unwrap();
        assert!(load(&p).is_err(), "wrong version");
        std::fs::write(&p, "eclwal\t2\t10\n").unwrap();
        assert!(load(&p).is_err(), "v2 without base field");
        std::fs::write(&p, "eclwal\t1\t10\t5\n").unwrap();
        assert!(load(&p).is_err(), "v1 with extra field");
    }

    #[test]
    fn v1_log_loads_with_base_zero() {
        let p = tmpfile("v1compat");
        std::fs::write(&p, "eclwal\t1\t10\ne\t0\t1\ne\t2\t3\n").unwrap();
        let snap = load(&p).unwrap();
        assert_eq!(snap.vertices, 10);
        assert_eq!(snap.base, 0);
        assert_eq!(snap.edges, vec![(0, 1), (2, 3)]);
        // And it keeps appending (sequence continues from 2).
        let wal = Wal::append(&p, &snap).unwrap();
        assert_eq!(wal.append_edge(4, 5).unwrap(), 3);
    }

    #[test]
    fn compact_drops_covered_prefix_and_sequences_continue() {
        let p = tmpfile("compact");
        let wal = Wal::create(&p, 32).unwrap();
        for i in 0..5 {
            wal.append_edge(i, i + 1).unwrap();
        }
        wal.compact(3).unwrap();
        // Compacting to the same or an older watermark is a no-op.
        wal.compact(3).unwrap();
        wal.compact(1).unwrap();
        assert_eq!(wal.durable_records(), 5);
        // Appends keep going through the swapped handle with the
        // history-wide sequence numbering.
        assert_eq!(wal.append_edge(9, 10).unwrap(), 6);
        drop(wal);

        let snap = load(&p).unwrap();
        assert_eq!(snap.base, 3);
        assert_eq!(snap.edges, vec![(3, 4), (4, 5), (9, 10)]);
        // Resume-side reopen continues from base + in-file records.
        let wal = Wal::append(&p, &snap).unwrap();
        assert_eq!(wal.durable_records(), 6);
        assert_eq!(wal.append_edge(11, 12).unwrap(), 7);
    }

    #[test]
    fn compact_clamps_to_durable_watermark() {
        let p = tmpfile("compact_clamp");
        let wal = Wal::create(&p, 8).unwrap();
        wal.append_edge(0, 1).unwrap();
        wal.compact(u64::MAX).unwrap();
        assert_eq!(load(&p).unwrap().base, 1);
        assert!(load(&p).unwrap().edges.is_empty());
        assert_eq!(wal.append_edge(2, 3).unwrap(), 2);
        assert_eq!(load(&p).unwrap().edges, vec![(2, 3)]);
    }

    #[test]
    fn kill_mid_compaction_leaves_a_loadable_log() {
        // A kill between writing the temp file and the rename leaves the
        // old complete log plus a stray temp file: load must see the old
        // log untouched, and a later real compaction must still succeed
        // over the leftover temp.
        let p = tmpfile("compact_kill");
        let wal = Wal::create(&p, 16).unwrap();
        for i in 0..4 {
            wal.append_edge(i, i + 1).unwrap();
        }
        drop(wal);
        // Simulate the pre-rename half of a compaction that was killed.
        let tmp = p.with_extension("wal.compact-tmp");
        std::fs::write(&tmp, "eclwal\t2\t16\t2\ne\t2\t3\ne\t3\t4\n").unwrap();
        let snap = load(&p).unwrap();
        assert_eq!(snap.base, 0);
        assert_eq!(snap.edges.len(), 4, "old log must be untouched");
        // Resume and compact for real: the leftover temp is overwritten.
        let wal = Wal::append(&p, &snap).unwrap();
        wal.compact(2).unwrap();
        assert_eq!(wal.append_edge(7, 8).unwrap(), 5);
        drop(wal);
        let snap = load(&p).unwrap();
        assert_eq!(snap.base, 2);
        assert_eq!(snap.edges, vec![(2, 3), (3, 4), (7, 8)]);
        assert!(!tmp.exists(), "temp must be consumed by the rename");
    }

    #[test]
    fn concurrent_appends_race_compaction_losslessly() {
        // Appenders keep acknowledging while another thread compacts:
        // every acknowledged record must be recoverable afterwards from
        // snapshot-covered prefix (here: the compaction watermark's
        // sequence numbers) + the rewritten file.
        let p = tmpfile("compact_race");
        let wal = Arc::new(Wal::create(&p, 10_000).unwrap());
        let writers: Vec<_> = (0..4u32)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        wal.append_edge(t, 1000 + t * 50 + i).unwrap();
                    }
                })
            })
            .collect();
        let compactor = {
            let wal = Arc::clone(&wal);
            std::thread::spawn(move || {
                for _ in 0..8 {
                    let covered = wal.durable_records();
                    wal.compact(covered).unwrap();
                    std::thread::yield_now();
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        compactor.join().unwrap();
        assert_eq!(wal.durable_records(), 200);
        drop(wal);
        let snap = load(&p).unwrap();
        // base + in-file = every acknowledged record, none duplicated.
        assert_eq!(snap.base + snap.edges.len() as u64, 200);
        let mut seconds: Vec<u32> = snap.edges.iter().map(|&(_, v)| v).collect();
        seconds.sort_unstable();
        seconds.dedup();
        assert_eq!(seconds.len(), snap.edges.len(), "duplicated records");
    }

    #[test]
    fn concurrent_appends_all_become_durable_in_sequence_order() {
        let p = tmpfile("concurrent");
        let wal = Arc::new(Wal::create(&p, 1000).unwrap());
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..25u32 {
                        wal.append_edge(t, 100 + t * 25 + i).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.durable_records(), 200);
        drop(wal);
        let snap = load(&p).unwrap();
        assert_eq!(snap.edges.len(), 200);
        // Every appended record is present exactly once.
        let mut seconds: Vec<u32> = snap.edges.iter().map(|&(_, v)| v).collect();
        seconds.sort_unstable();
        assert_eq!(seconds, (100..300).collect::<Vec<u32>>());
    }
}
