//! Write-ahead edge log with leader–follower group commit.
//!
//! Every acknowledged `ADD` is durable: the server applies the edge to
//! the in-memory structure first, appends it here, and only replies
//! `OK` once the record is fsync'd. A naive implementation would pay
//! one `fsync` per edge, which collapses under hundreds of concurrent
//! writers — so appends use the classic group-commit dance: each
//! appender buffers its record under the state lock and then either
//! becomes the *flush leader* (writes and syncs everything buffered so
//! far, including records that arrived from other threads while it held
//! the buffer) or waits on a condvar until a leader's flush covers its
//! sequence number. One disk round-trip amortizes across every record
//! that raced in during the previous flush.
//!
//! The file format follows the journal crate's discipline: TSV lines, a
//! `meta` header pinning the vertex count, records readable after
//! arbitrary truncation. A kill mid-append leaves at most a torn tail,
//! which [`load`] discards — by the apply-then-append ordering those
//! records were never acknowledged, so dropping them only loses edges
//! no client was told about.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;
use std::sync::{Condvar, Mutex};

/// WAL format version; bumped on incompatible changes.
const VERSION: u32 = 1;

struct WalState {
    /// Records appended but not yet handed to a flush.
    buf: Vec<u8>,
    /// Records assigned a sequence number so far (1-based).
    pending: u64,
    /// Highest sequence number known durable on disk.
    flushed: u64,
    /// A leader is currently writing; followers wait.
    flushing: bool,
}

/// Append-side handle: concurrent, durable, group-committed.
pub struct Wal {
    state: Mutex<WalState>,
    cv: Condvar,
    /// The file sits outside the state lock so followers keep buffering
    /// while the leader is inside `fsync`. `flushing` guarantees a
    /// single writer, so file order always equals sequence order.
    file: Mutex<File>,
}

impl Wal {
    /// Creates (truncating) a fresh WAL for a structure of `n` vertices.
    pub fn create(path: &Path, n: usize) -> io::Result<Wal> {
        let mut file = File::create(path)?;
        writeln!(file, "eclwal\t{VERSION}\t{n}")?;
        file.sync_data()?;
        Ok(Wal::wrap(file, 0))
    }

    /// Reopens an existing WAL for appending after a resume, where
    /// `records` edges were recovered from it (they are already
    /// durable, so they seed the flushed watermark).
    pub fn append(path: &Path, records: u64) -> io::Result<Wal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Wal::wrap(file, records))
    }

    fn wrap(file: File, flushed: u64) -> Wal {
        Wal {
            state: Mutex::new(WalState {
                buf: Vec::new(),
                pending: flushed,
                flushed,
                flushing: false,
            }),
            cv: Condvar::new(),
            file: Mutex::new(file),
        }
    }

    /// Durably appends one edge record, returning its sequence number
    /// (1-based count of records ever appended). Returns only once the
    /// record — and therefore every record sequenced before it — is
    /// fsync'd: the acknowledgement point for `ADD`.
    pub fn append_edge(&self, u: u32, v: u32) -> io::Result<u64> {
        let my_seq = {
            let mut s = self.state.lock().unwrap();
            s.pending += 1;
            let seq = s.pending;
            s.buf.extend_from_slice(format!("e\t{u}\t{v}\n").as_bytes());
            seq
        };
        loop {
            let mut s = self.state.lock().unwrap();
            if s.flushed >= my_seq {
                return Ok(my_seq);
            }
            if s.flushing {
                // A leader is on the disk; wait for its verdict.
                let _unused = self.cv.wait(s).unwrap();
                continue;
            }
            // Become the leader: take everything buffered so far.
            s.flushing = true;
            let batch = std::mem::take(&mut s.buf);
            let target = s.pending;
            drop(s);

            let res = {
                let mut f = self.file.lock().unwrap();
                f.write_all(&batch).and_then(|()| f.sync_data())
            };

            let mut s = self.state.lock().unwrap();
            s.flushing = false;
            match res {
                Ok(()) => {
                    s.flushed = s.flushed.max(target);
                    self.cv.notify_all();
                    // Loop exits via the flushed check above.
                }
                Err(e) => {
                    // Put the batch back so followers' records are not
                    // silently dropped; everyone waiting re-races and
                    // observes the error on their own flush attempt.
                    let mut unwritten = batch;
                    unwritten.extend_from_slice(&s.buf);
                    s.buf = unwritten;
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    /// Number of records known durable (the `covered` watermark a
    /// snapshot records).
    pub fn durable_records(&self) -> u64 {
        self.state.lock().unwrap().flushed
    }
}

/// Everything recovered from a WAL file.
#[derive(Debug)]
pub struct WalSnapshot {
    /// The vertex count the WAL was created with.
    pub vertices: usize,
    /// Durable edge records, in append order. A torn trailing record is
    /// discarded (it was never acknowledged).
    pub edges: Vec<(u32, u32)>,
}

/// Loads a WAL, discarding a torn tail. Fails on a missing file or an
/// unreadable meta line.
pub fn load(path: &Path) -> io::Result<WalSnapshot> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let meta = lines
        .next()
        .transpose()?
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "WAL is empty"))?;
    let mut mf = meta.split('\t');
    let vertices = match (mf.next(), mf.next(), mf.next(), mf.next()) {
        (Some("eclwal"), Some(v), Some(n), None) if v == VERSION.to_string() => n
            .parse::<usize>()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad WAL meta line: {meta:?}"),
            ))
        }
    };
    let mut edges = Vec::new();
    for line in lines {
        let line = line?;
        match parse_edge_line(&line) {
            Some(e) => edges.push(e),
            // First unparseable record = torn tail; everything after a
            // tear is untrusted by construction.
            None => break,
        }
    }
    Ok(WalSnapshot { vertices, edges })
}

fn parse_edge_line(line: &str) -> Option<(u32, u32)> {
    let mut f = line.split('\t');
    match (f.next(), f.next(), f.next(), f.next()) {
        (Some("e"), Some(u), Some(v), None) => Some((u.parse().ok()?, v.parse().ok()?)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmpfile(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ecl_wal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("edges.wal")
    }

    #[test]
    fn roundtrip_create_append_load() {
        let p = tmpfile("roundtrip");
        let wal = Wal::create(&p, 10).unwrap();
        assert_eq!(wal.append_edge(0, 1).unwrap(), 1);
        assert_eq!(wal.append_edge(2, 3).unwrap(), 2);
        assert_eq!(wal.durable_records(), 2);
        drop(wal);
        let snap = load(&p).unwrap();
        assert_eq!(snap.vertices, 10);
        assert_eq!(snap.edges, vec![(0, 1), (2, 3)]);
        // Resume-side append continues the sequence.
        let wal = Wal::append(&p, 2).unwrap();
        assert_eq!(wal.append_edge(4, 5).unwrap(), 3);
        drop(wal);
        assert_eq!(load(&p).unwrap().edges.len(), 3);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let p = tmpfile("torn");
        let wal = Wal::create(&p, 4).unwrap();
        wal.append_edge(0, 1).unwrap();
        drop(wal);
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        write!(f, "e\t2").unwrap(); // killed mid-record
        drop(f);
        let snap = load(&p).unwrap();
        assert_eq!(snap.edges, vec![(0, 1)]);
    }

    #[test]
    fn bad_meta_rejected() {
        let p = tmpfile("meta");
        assert!(load(&p).is_err(), "missing file");
        std::fs::write(&p, "").unwrap();
        assert!(load(&p).is_err(), "empty file");
        std::fs::write(&p, "e\t0\t1\n").unwrap();
        assert!(load(&p).is_err(), "no meta line");
        std::fs::write(&p, "eclwal\t99\t10\n").unwrap();
        assert!(load(&p).is_err(), "wrong version");
    }

    #[test]
    fn concurrent_appends_all_become_durable_in_sequence_order() {
        let p = tmpfile("concurrent");
        let wal = Arc::new(Wal::create(&p, 1000).unwrap());
        let threads: Vec<_> = (0..8u32)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..25u32 {
                        wal.append_edge(t, 100 + t * 25 + i).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.durable_records(), 200);
        drop(wal);
        let snap = load(&p).unwrap();
        assert_eq!(snap.edges.len(), 200);
        // Every appended record is present exactly once.
        let mut seconds: Vec<u32> = snap.edges.iter().map(|&(_, v)| v).collect();
        seconds.sort_unstable();
        assert_eq!(seconds, (100..300).collect::<Vec<u32>>());
    }
}
