//! The server's durable connectivity state.
//!
//! [`ServeState`] wraps the lock-free [`IncrementalCc`] with the two
//! persistence mechanisms that make a `SIGKILL` survivable:
//!
//! * the write-ahead log ([`crate::wal`]) — every acknowledged `ADD` is
//!   fsync'd before the client hears `OK`;
//! * periodic **snapshots** of the parent array, written with the
//!   journal crate's write-temp-fsync-rename discipline and pinned by
//!   an FNV-1a digest, so resume replays only the WAL suffix instead of
//!   the whole history.
//!
//! ## The consistency argument
//!
//! Edges are applied to the in-memory structure *before* they are
//! appended to the WAL. Therefore at any instant the structure's merges
//! are a superset of any durable WAL prefix. A snapshot samples the
//! durable record count `covered` *first* and copies the parent array
//! *second*, so the copy contains every edge in `wal[0..covered]` (plus
//! possibly some in-flight ones — harmless, since replay via `add_edge`
//! is idempotent and connectivity is monotone). Resume = restore the
//! snapshot, replay `wal[covered..]`, done: every acknowledged edge is
//! recovered exactly, and the only possible extras are edges that were
//! durable (or snapshotted mid-flight) but whose `OK` never reached the
//! client — the standard at-least-once envelope.
//!
//! The apply-before-append ordering has one visible asymmetry: if the
//! WAL append *fails*, the client gets `ERR io`, but the merge already
//! happened and stays visible to `CONN`/`COMP` in the live process —
//! and can even persist across a restart if a concurrent snapshot
//! captured it. So `ERR io` means "not durable", **not** "not
//! applied"; this sits inside the same at-least-once envelope as a
//! crash after fsync but before `OK`. (Validation errors are different:
//! an `ERR invalid-vertex` edge was rejected before touching anything.)

use crate::protocol::RequestError;
use crate::wal::{self, Wal};
use ecl_cc::incremental::IncrementalCc;
use ecl_engine::journal::{fnv1a, write_atomic};
use ecl_graph::Vertex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Snapshot format version; bumped on incompatible changes.
const SNAP_VERSION: u32 = 1;

/// WAL file name inside the state directory.
pub const WAL_FILE: &str = "edges.wal";
/// Snapshot file name inside the state directory.
pub const SNAP_FILE: &str = "state.snap";

/// Connectivity stats — a pure function of the acknowledged edge set,
/// so they compare equal across a kill + resume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stats {
    /// Vertex count the server was started with.
    pub vertices: usize,
    /// Total acknowledged (durable) `ADD`s, including duplicates.
    pub edges: u64,
    /// Current component count.
    pub components: usize,
}

/// Durable streaming-connectivity state: `IncrementalCc` + WAL +
/// snapshots. All operations are safe from any number of session
/// threads.
pub struct ServeState {
    cc: IncrementalCc,
    wal: Wal,
    dir: PathBuf,
    /// Take a snapshot every this-many durable records (0 = only on
    /// graceful shutdown).
    snapshot_every: u64,
    /// Durable record count as of the last snapshot.
    last_snapshot: AtomicU64,
    /// Serializes snapshot writers; `try_lock` keeps sessions from
    /// piling up behind one in-progress snapshot.
    snap_guard: Mutex<()>,
}

impl ServeState {
    /// Creates a fresh state directory for `n` vertices (truncating any
    /// previous WAL/snapshot in `dir`).
    pub fn open_fresh(dir: &Path, n: usize, snapshot_every: u64) -> Result<ServeState, String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let _ = std::fs::remove_file(dir.join(SNAP_FILE));
        let wal =
            Wal::create(&dir.join(WAL_FILE), n).map_err(|e| format!("create {WAL_FILE}: {e}"))?;
        Ok(ServeState {
            cc: IncrementalCc::new(n),
            wal,
            dir: dir.to_path_buf(),
            snapshot_every,
            last_snapshot: AtomicU64::new(0),
            snap_guard: Mutex::new(()),
        })
    }

    /// Resumes from `dir`: restores the newest valid snapshot (if any),
    /// replays the WAL suffix, and reopens the WAL for appending. A
    /// snapshot whose digest does not match its body is **refused** —
    /// resuming from tampered or torn state would silently serve wrong
    /// answers, which is strictly worse than failing loudly.
    pub fn resume(dir: &Path, snapshot_every: u64) -> Result<ServeState, String> {
        let wal_path = dir.join(WAL_FILE);
        let snap = wal::load(&wal_path).map_err(|e| format!("load {WAL_FILE}: {e}"))?;
        let n = snap.vertices;

        let (cc, covered) = match read_snapshot(&dir.join(SNAP_FILE))? {
            Some((parents, covered)) => {
                if parents.len() != n {
                    return Err(format!(
                        "snapshot tracks {} vertices but WAL tracks {n}",
                        parents.len()
                    ));
                }
                let cc = IncrementalCc::from_parents(parents)
                    .map_err(|e| format!("snapshot is not a valid parent forest: {e}"))?;
                (cc, covered)
            }
            None => (IncrementalCc::new(n), 0),
        };
        let total = snap.base + snap.edges.len() as u64;
        if covered > total {
            return Err(format!(
                "snapshot covers {covered} WAL records but only {total} exist \
                 (WAL truncated after snapshot?)"
            ));
        }
        if covered < snap.base {
            // Compaction only ever runs after a snapshot covering its
            // watermark is durable, so the snapshot on disk should never
            // lag the WAL's base. If it does (snapshot file replaced or
            // deleted by hand), the records needed for replay are gone —
            // refuse rather than resume with silent edge loss.
            return Err(format!(
                "WAL was compacted past record {} but the snapshot only covers {covered} \
                 — the dropped prefix is unrecoverable",
                snap.base
            ));
        }
        for &(u, v) in &snap.edges[(covered - snap.base) as usize..] {
            cc.try_add_edge(u, v)
                .map_err(|e| format!("WAL replay: {e}"))?;
        }
        let wal = Wal::append(&wal_path, &snap).map_err(|e| format!("reopen {WAL_FILE}: {e}"))?;
        Ok(ServeState {
            cc,
            wal,
            dir: dir.to_path_buf(),
            snapshot_every,
            last_snapshot: AtomicU64::new(total),
            snap_guard: Mutex::new(()),
        })
    }

    /// Ingests one edge from untrusted input: validate, apply, make
    /// durable, then report. The returned `linked` flag tells the
    /// client whether the edge merged two components. The `Ok` return
    /// IS the acknowledgement point — the record is fsync'd.
    ///
    /// An `Err` with kind `invalid-vertex` means the edge was rejected
    /// before touching anything. An `Err` with kind `io` (WAL append
    /// failed) means the edge is **not durable but already applied**:
    /// the merge stays visible to queries in this process and may
    /// survive a restart if a snapshot captured it — see the module
    /// docs on the at-least-once envelope.
    pub fn add_edge(&self, u: Vertex, v: Vertex) -> Result<bool, RequestError> {
        let linked = self.cc.try_add_edge(u, v).map_err(RequestError::from)?;
        self.wal
            .append_edge(u, v)
            .map_err(|e| RequestError::new("io", format!("WAL append failed: {e}")))?;
        self.maybe_snapshot();
        Ok(linked)
    }

    /// Connectivity query on untrusted vertex ids.
    pub fn connected(&self, u: Vertex, v: Vertex) -> Result<bool, RequestError> {
        self.cc.try_connected(u, v).map_err(RequestError::from)
    }

    /// Component representative of an untrusted vertex id.
    pub fn component(&self, v: Vertex) -> Result<Vertex, RequestError> {
        self.cc.try_component(v).map_err(RequestError::from)
    }

    /// Current connectivity stats.
    pub fn stats(&self) -> Stats {
        Stats {
            vertices: self.cc.len(),
            edges: self.wal.durable_records(),
            components: self.cc.num_components(),
        }
    }

    /// Snapshots now if the periodic threshold has been crossed and no
    /// other session is mid-snapshot. Errors are swallowed here (the
    /// WAL alone is always sufficient for recovery); graceful shutdown
    /// calls [`snapshot`](Self::snapshot) directly and surfaces them.
    fn maybe_snapshot(&self) {
        if self.snapshot_every == 0 {
            return;
        }
        let durable = self.wal.durable_records();
        // saturating: another session may snapshot (storing a larger
        // watermark) between our two loads, making the difference
        // negative.
        let since = durable.saturating_sub(self.last_snapshot.load(Ordering::Relaxed));
        if since >= self.snapshot_every {
            let _ = self.snapshot();
        }
    }

    /// Writes a crash-safe snapshot: sample the durable watermark,
    /// copy the parents, write-temp-fsync-rename with a digest header.
    /// Concurrent calls coalesce (losers return immediately).
    pub fn snapshot(&self) -> Result<(), String> {
        let Ok(_guard) = self.snap_guard.try_lock() else {
            return Ok(()); // someone else is already writing one
        };
        // Order matters: watermark BEFORE parents copy, so the copy
        // contains every covered record (see module docs).
        let covered = self.wal.durable_records();
        let parents = self.cc.parents_snapshot();
        let mut body = String::with_capacity(parents.len() * 4);
        for p in &parents {
            body.push_str(&p.to_string());
            body.push('\n');
        }
        let digest = snapshot_digest(parents.len(), covered, &body);
        let doc = format!(
            "eclsnap\t{SNAP_VERSION}\t{}\t{covered}\t{digest:016x}\n{body}",
            parents.len()
        );
        write_atomic(&self.dir.join(SNAP_FILE), doc.as_bytes())
            .map_err(|e| format!("write {SNAP_FILE}: {e}"))?;
        self.last_snapshot.store(covered, Ordering::Relaxed);
        // The snapshot is durable, so the WAL prefix it covers is dead
        // weight: compact it away. Best-effort — a failed compaction
        // leaves the full log in place, which is merely larger, and a
        // *poisoned* WAL will surface on the next ADD anyway.
        let _ = self.wal.compact(covered);
        Ok(())
    }
}

fn snapshot_digest(n: usize, covered: u64, body: &str) -> u64 {
    fnv1a(format!("{n}\t{covered}\n{body}").as_bytes())
}

/// Reads and verifies a snapshot file. `Ok(None)` when absent (fresh
/// WAL-only resume); `Err` when present but torn, tampered, or
/// unparseable.
fn read_snapshot(path: &Path) -> Result<Option<(Vec<Vertex>, u64)>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    let (header, body) = text
        .split_once('\n')
        .ok_or_else(|| format!("{}: missing snapshot header", path.display()))?;
    let f: Vec<&str> = header.split('\t').collect();
    let bad = || format!("{}: bad snapshot header {header:?}", path.display());
    if f.len() != 5 || f[0] != "eclsnap" || f[1] != SNAP_VERSION.to_string() {
        return Err(bad());
    }
    let n: usize = f[2].parse().map_err(|_| bad())?;
    let covered: u64 = f[3].parse().map_err(|_| bad())?;
    let digest = u64::from_str_radix(f[4], 16).map_err(|_| bad())?;
    if snapshot_digest(n, covered, body) != digest {
        return Err(format!(
            "{}: snapshot digest mismatch (torn write or tampering) — refusing to resume \
             from untrusted state",
            path.display()
        ));
    }
    let mut parents = Vec::with_capacity(n);
    for line in body.lines() {
        parents.push(
            line.parse::<Vertex>()
                .map_err(|_| format!("{}: bad parent entry {line:?}", path.display()))?,
        );
    }
    if parents.len() != n {
        return Err(format!(
            "{}: snapshot body has {} entries, header says {n}",
            path.display(),
            parents.len()
        ));
    }
    Ok(Some((parents, covered)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ecl_state_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn fresh_add_query_resume_roundtrip() {
        let d = tmpdir("roundtrip");
        let s = ServeState::open_fresh(&d, 10, 0).unwrap();
        assert!(s.add_edge(0, 1).unwrap());
        assert!(s.add_edge(1, 2).unwrap());
        assert!(!s.add_edge(2, 0).unwrap());
        assert!(s.connected(0, 2).unwrap());
        assert!(!s.connected(0, 5).unwrap());
        assert_eq!(
            s.stats(),
            Stats {
                vertices: 10,
                edges: 3,
                components: 8
            }
        );
        drop(s); // no graceful snapshot: resume replays the WAL alone
        let r = ServeState::resume(&d, 0).unwrap();
        assert!(r.connected(0, 2).unwrap());
        assert_eq!(
            r.stats(),
            Stats {
                vertices: 10,
                edges: 3,
                components: 8
            }
        );
    }

    #[test]
    fn resume_uses_snapshot_plus_wal_suffix() {
        let d = tmpdir("suffix");
        let s = ServeState::open_fresh(&d, 8, 0).unwrap();
        s.add_edge(0, 1).unwrap();
        s.snapshot().unwrap();
        s.add_edge(2, 3).unwrap(); // after the snapshot: WAL suffix
        drop(s);
        let r = ServeState::resume(&d, 0).unwrap();
        assert!(r.connected(0, 1).unwrap());
        assert!(r.connected(2, 3).unwrap());
        assert_eq!(r.stats().edges, 2);
    }

    #[test]
    fn tampered_snapshot_is_refused() {
        let d = tmpdir("tamper");
        let s = ServeState::open_fresh(&d, 6, 0).unwrap();
        s.add_edge(0, 1).unwrap();
        s.snapshot().unwrap();
        drop(s);
        let snap_path = d.join(SNAP_FILE);
        let good = std::fs::read_to_string(&snap_path).unwrap();
        // Flip one parent entry without fixing the digest.
        std::fs::write(&snap_path, good.replace("\n0\n", "\n3\n")).unwrap();
        let err = match ServeState::resume(&d, 0) {
            Err(e) => e,
            Ok(_) => panic!("tampered snapshot accepted"),
        };
        assert!(err.contains("digest mismatch"), "got: {err}");
    }

    #[test]
    fn out_of_range_input_is_rejected_not_panicking() {
        let d = tmpdir("range");
        let s = ServeState::open_fresh(&d, 4, 0).unwrap();
        assert_eq!(s.add_edge(0, 9).unwrap_err().kind, "invalid-vertex");
        assert_eq!(s.connected(9, 0).unwrap_err().kind, "invalid-vertex");
        assert_eq!(s.component(4).unwrap_err().kind, "invalid-vertex");
        // The rejected ADD left no trace: nothing durable, nothing merged.
        assert_eq!(s.stats().edges, 0);
        assert_eq!(s.stats().components, 4);
    }

    #[test]
    fn resume_over_torn_tail_then_ingest_then_resume_again() {
        // Kill mid-append (torn WAL tail), resume, acknowledge more
        // edges, kill again, resume again: every acknowledged edge must
        // survive both restarts. Regression test for appends landing
        // after un-truncated torn bytes and fusing into one unparseable
        // line that the second resume would discard wholesale.
        let d = tmpdir("torn_resume");
        let s = ServeState::open_fresh(&d, 10, 0).unwrap();
        s.add_edge(0, 1).unwrap();
        drop(s);
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(d.join(WAL_FILE))
                .unwrap();
            write!(f, "e\t2").unwrap(); // SIGKILL mid-record
        }
        let r = ServeState::resume(&d, 0).unwrap();
        assert_eq!(r.stats().edges, 1);
        r.add_edge(2, 3).unwrap();
        r.add_edge(3, 4).unwrap();
        drop(r); // second kill
        let r2 = ServeState::resume(&d, 0).unwrap();
        assert_eq!(r2.stats().edges, 3);
        assert!(r2.connected(0, 1).unwrap());
        assert!(r2.connected(2, 4).unwrap());
    }

    #[test]
    fn snapshot_compacts_wal_and_resume_replays_suffix() {
        let d = tmpdir("compaction");
        let s = ServeState::open_fresh(&d, 16, 0).unwrap();
        for i in 0..5 {
            s.add_edge(i, i + 1).unwrap();
        }
        s.snapshot().unwrap();
        // The durable snapshot covers all 5 records, so the WAL on disk
        // is rewritten to an empty suffix at base 5.
        let snap = wal::load(&d.join(WAL_FILE)).unwrap();
        assert_eq!(snap.base, 5);
        assert!(snap.edges.is_empty());
        s.add_edge(8, 9).unwrap();
        drop(s);
        let r = ServeState::resume(&d, 0).unwrap();
        assert_eq!(r.stats().edges, 6);
        assert!(r.connected(0, 5).unwrap());
        assert!(r.connected(8, 9).unwrap());
        // Second-generation compaction on the resumed instance.
        r.snapshot().unwrap();
        assert_eq!(wal::load(&d.join(WAL_FILE)).unwrap().base, 6);
        r.add_edge(10, 11).unwrap();
        drop(r);
        let r2 = ServeState::resume(&d, 0).unwrap();
        assert_eq!(r2.stats().edges, 7);
        assert!(r2.connected(10, 11).unwrap());
    }

    #[test]
    fn compacted_wal_without_its_snapshot_is_refused() {
        // The compacted prefix lives only in the snapshot; if that file
        // vanishes, resume must refuse rather than silently drop edges.
        let d = tmpdir("compact_nosnap");
        let s = ServeState::open_fresh(&d, 8, 0).unwrap();
        s.add_edge(0, 1).unwrap();
        s.snapshot().unwrap();
        drop(s);
        std::fs::remove_file(d.join(SNAP_FILE)).unwrap();
        let err = match ServeState::resume(&d, 0) {
            Err(e) => e,
            Ok(_) => panic!("compacted WAL without snapshot accepted"),
        };
        assert!(err.contains("compacted past"), "got: {err}");
    }

    #[test]
    fn periodic_snapshots_fire_on_threshold() {
        let d = tmpdir("periodic");
        let s = ServeState::open_fresh(&d, 100, 3).unwrap();
        for i in 0..7 {
            s.add_edge(i, i + 1).unwrap();
        }
        drop(s);
        // 7 records with snapshot_every=3: at least two snapshots fired;
        // the newest covers >= 6 records.
        let (_, covered) = read_snapshot(&d.join(SNAP_FILE)).unwrap().unwrap();
        assert!(covered >= 6, "covered = {covered}");
        let r = ServeState::resume(&d, 3).unwrap();
        assert!(r.connected(0, 7).unwrap());
    }
}
