//! Batch job submission over the engine's machinery.
//!
//! `SUBMIT` routes work onto the same building blocks the batch engine
//! uses — the bounded MPMC [`BoundedQueue`] (admission control: a full
//! queue rejects with `queue-full` instead of stalling the session),
//! the per-backend [`BreakerSet`] (a dead GPU is skipped, probed back
//! in via the simulator's health probe), the seeded [`BackoffPolicy`]
//! between retry rounds, the deduplicating [`GraphStore`], and the
//! certified fallback ladder. Nothing here is new fault-tolerance
//! logic; it is the engine's worker loop reshaped for a long-lived
//! server where jobs arrive one at a time and are polled by id.

use crate::protocol::RequestError;
use ecl_cc::ladder::{self, AttemptOutcome, Backend, LadderConfig};
use ecl_cc::EclError;
use ecl_engine::breaker::BreakerSet;
use ecl_engine::queue::{BoundedQueue, PushError};
use ecl_engine::spec::{GraphSpec, GraphStore};
use ecl_engine::{Admission, BackoffPolicy, BreakerConfig};
use ecl_gpu_sim::Gpu;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Externally visible lifecycle of a submitted job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is on it.
    Running,
    /// Finished with a certified answer.
    Done {
        /// Backend whose answer passed certification.
        backend: &'static str,
        /// Certified component count.
        components: usize,
        /// Wall-clock milliseconds from pop to certification.
        ms: u64,
    },
    /// Failed (bad spec, exhausted ladder, deadline).
    Failed {
        /// Stable error kind.
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl JobStatus {
    /// One-line wire form for `JOB id` responses.
    pub fn to_line(&self) -> String {
        match self {
            JobStatus::Queued => "OK queued".to_string(),
            JobStatus::Running => "OK running".to_string(),
            JobStatus::Done {
                backend,
                components,
                ms,
            } => format!("OK done backend={backend} components={components} ms={ms}"),
            JobStatus::Failed { kind, detail } => {
                format!("OK failed kind={kind} detail={}", detail.replace('\n', " "))
            }
        }
    }
}

struct QueuedJob {
    id: u64,
    spec: GraphSpec,
}

struct Shared {
    statuses: Mutex<HashMap<u64, JobStatus>>,
    breakers: BreakerSet,
    store: GraphStore,
    ladder: LadderConfig,
    backoff: BackoffPolicy,
    retries: u32,
    deadline_ms: Option<u64>,
}

/// Tuning for the job subsystem.
#[derive(Clone, Debug)]
pub struct JobsConfig {
    /// Worker threads consuming the queue.
    pub workers: usize,
    /// Queue capacity — the admission-control bound.
    pub queue_capacity: usize,
    /// Fallback-ladder configuration shared by all jobs.
    pub ladder: LadderConfig,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Retry rounds after the first (backoff-spaced).
    pub retries: u32,
    /// Per-round deadline in milliseconds, if any.
    pub deadline_ms: Option<u64>,
}

impl Default for JobsConfig {
    fn default() -> Self {
        JobsConfig {
            workers: 2,
            queue_capacity: 16,
            ladder: LadderConfig::default(),
            breaker: BreakerConfig::default(),
            retries: 1,
            deadline_ms: None,
        }
    }
}

/// The server's batch-job runner: bounded queue in, polled statuses out.
pub struct JobRunner {
    queue: Arc<BoundedQueue<QueuedJob>>,
    shared: Arc<Shared>,
    next_id: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobRunner {
    /// Starts the worker pool.
    pub fn start(cfg: JobsConfig) -> JobRunner {
        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let shared = Arc::new(Shared {
            statuses: Mutex::new(HashMap::new()),
            breakers: BreakerSet::new(cfg.breaker),
            store: GraphStore::new(),
            ladder: cfg.ladder,
            backoff: BackoffPolicy::default(),
            retries: cfg.retries,
            deadline_ms: cfg.deadline_ms,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        run_job(&shared, job);
                    }
                })
            })
            .collect();
        JobRunner {
            queue,
            shared,
            next_id: AtomicU64::new(0),
            workers: Mutex::new(workers),
        }
    }

    /// Submits a job; `Err` carries `bad-spec` or `queue-full`. The
    /// non-blocking push IS the admission decision: a session thread
    /// must never stall behind a saturated worker pool.
    pub fn submit(&self, spec_str: &str) -> Result<u64, RequestError> {
        let spec = GraphSpec::parse(spec_str).map_err(|e| RequestError::new("bad-spec", e))?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .statuses
            .lock()
            .unwrap()
            .insert(id, JobStatus::Queued);
        match self.queue.try_push(QueuedJob { id, spec }) {
            Ok(()) => Ok(id),
            Err(e) => {
                self.shared.statuses.lock().unwrap().remove(&id);
                match e {
                    PushError::Full(_) => Err(RequestError::from(EclError::QueueFull {
                        capacity: self.queue.capacity(),
                    })),
                    PushError::Closed(_) => {
                        Err(RequestError::new("draining", "server is shutting down"))
                    }
                }
            }
        }
    }

    /// Current status of a submitted job.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.shared.statuses.lock().unwrap().get(&id).cloned()
    }

    /// Current queue depth (for metrics).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Closes the queue, lets queued jobs drain, and joins the workers.
    pub fn shutdown(&self) {
        self.queue.close();
        for h in self.workers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// One job through breaker-filtered, backoff-spaced, deadline-checked
/// ladder rounds — the engine's retry loop in miniature.
fn run_job(shared: &Shared, job: QueuedJob) {
    let set = |status: JobStatus| {
        shared.statuses.lock().unwrap().insert(job.id, status);
    };
    set(JobStatus::Running);

    let graph = match shared.store.get(&job.spec) {
        Ok(g) => g,
        Err(e) => {
            set(JobStatus::Failed {
                kind: "bad-graph".to_string(),
                detail: e,
            });
            return;
        }
    };

    let mut last_error = EclError::Exhausted {
        attempts: 0,
        last: None,
    };
    for round in 0..=shared.retries {
        if round > 0 {
            let delay = shared.backoff.delay_ms(job.id, round);
            if delay > 0 {
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
        }

        let mut ladder_cfg = shared.ladder.clone();
        ladder_cfg.fault.seed = ladder_cfg
            .fault
            .seed
            .wrapping_add(job.id.wrapping_mul(0x9e37_79b9))
            .wrapping_add(round as u64 * 64);

        // Breaker-filtered stages; Serial is never gated.
        let mut stages = Vec::with_capacity(ladder_cfg.stages.len());
        for &backend in &shared.ladder.stages {
            let admission = if backend == Backend::Serial {
                Admission::Allow
            } else {
                shared.breakers.admit(backend)
            };
            match admission {
                Admission::Allow => stages.push(backend),
                Admission::Deny => {}
                Admission::Probe => {
                    if backend == Backend::GpuSim {
                        let mut device = Gpu::new(ladder_cfg.profile.clone());
                        device.set_fault_plan(ladder_cfg.fault);
                        device.set_watchdog(ladder_cfg.watchdog);
                        match device.health_probe() {
                            Ok(()) => stages.push(backend),
                            Err(_) => shared.breakers.record_failure(backend),
                        }
                    } else {
                        stages.push(backend);
                    }
                }
            }
        }
        if stages.is_empty() {
            last_error = EclError::CircuitOpen {
                backend: "all".to_string(),
            };
            continue;
        }
        ladder_cfg.stages = stages;

        let round_start = Instant::now();
        let outcome = ladder::run_with_fallback(&graph, &ladder_cfg);
        if let Ok(out) = &outcome {
            for a in &out.attempts {
                let ok = matches!(a.outcome, AttemptOutcome::Certified { .. });
                if a.backend != Backend::Serial {
                    if ok {
                        shared.breakers.record_success(a.backend);
                    } else {
                        shared.breakers.record_failure(a.backend);
                    }
                }
            }
        }
        match outcome {
            Ok(out) => {
                let elapsed_ms = round_start.elapsed().as_millis() as u64;
                if let Some(deadline) = shared.deadline_ms {
                    if elapsed_ms > deadline {
                        last_error = EclError::Timeout {
                            elapsed_ms,
                            deadline_ms: deadline,
                        };
                        continue;
                    }
                }
                set(JobStatus::Done {
                    backend: out.backend.name(),
                    components: out.certificate.num_components,
                    ms: elapsed_ms,
                });
                return;
            }
            Err(e) => last_error = e,
        }
    }
    set(JobStatus::Failed {
        kind: last_error.kind().to_string(),
        detail: last_error.to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait_done(runner: &JobRunner, id: u64) -> JobStatus {
        for _ in 0..2000 {
            match runner.status(id) {
                Some(JobStatus::Done { .. }) | Some(JobStatus::Failed { .. }) => {
                    return runner.status(id).unwrap()
                }
                _ => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        }
        panic!("job {id} never finished: {:?}", runner.status(id));
    }

    #[test]
    fn submit_runs_to_certified_done() {
        let runner = JobRunner::start(JobsConfig::default());
        let id = runner.submit("cycle:500").unwrap();
        match wait_done(&runner, id) {
            JobStatus::Done { components, .. } => assert_eq!(components, 1),
            other => panic!("expected done, got {other:?}"),
        }
        runner.shutdown();
    }

    #[test]
    fn bad_spec_rejected_at_submit() {
        let runner = JobRunner::start(JobsConfig::default());
        assert_eq!(runner.submit("blob:7").unwrap_err().kind, "bad-spec");
        assert!(runner.status(99).is_none());
        runner.shutdown();
    }

    #[test]
    fn full_queue_rejects_with_queue_full() {
        // Zero workers are clamped to 1, so stuff the queue with slow
        // jobs; capacity 1 guarantees the burst overflows.
        let runner = JobRunner::start(JobsConfig {
            workers: 1,
            queue_capacity: 1,
            ..JobsConfig::default()
        });
        let mut rejected = false;
        for _ in 0..20 {
            if let Err(e) = runner.submit("gnm:2000:6000:1") {
                assert_eq!(e.kind, "queue-full");
                rejected = true;
                break;
            }
        }
        assert!(rejected, "queue never filled");
        runner.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_rejects() {
        let runner = JobRunner::start(JobsConfig::default());
        let id = runner.submit("path:200").unwrap();
        runner.shutdown();
        // The queued job drained to completion before the workers left.
        match runner.status(id).unwrap() {
            JobStatus::Done { .. } => {}
            other => panic!("expected done after drain, got {other:?}"),
        }
        assert_eq!(runner.submit("path:10").unwrap_err().kind, "draining");
    }
}
