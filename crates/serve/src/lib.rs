//! Connectivity-as-a-service over the streaming ECL-CC structure.
//!
//! The paper's computation phase is fully asynchronous, which makes its
//! lock-free union-find a natural *online* service: edges arrive over
//! the network from many untrusted clients, connectivity queries
//! interleave freely, and batch CC jobs ride the same engine machinery
//! the CLI uses. This crate is the server side of that story — the
//! ROADMAP's "heavy traffic from millions of users" north star demands
//! a process that stays up, stays bounded, and survives `SIGKILL`
//! without losing an acknowledged byte.
//!
//! * [`protocol`] — the versioned line-delimited `ECL/1` wire format
//!   and its strict, panic-free parser.
//! * [`wal`] — group-committed fsync'd write-ahead log; the
//!   acknowledgement point for every `ADD`.
//! * [`state`] — `IncrementalCc` + WAL + digest-pinned snapshots, and
//!   the consistency argument for kill/resume.
//! * [`jobs`] — `SUBMIT` routed onto the engine's bounded queue,
//!   circuit breakers, backoff, and certified fallback ladder.
//! * [`server`] — accept loop, per-session panic containment, idle
//!   reaping, `BUSY` admission control, graceful drain.
//! * [`client`] — a small blocking client for harnesses and tests,
//!   including the raw hooks chaos clients need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod jobs;
pub mod protocol;
pub mod server;
pub mod state;
pub mod wal;

pub use client::Client;
pub use jobs::{JobRunner, JobStatus, JobsConfig};
pub use protocol::{parse_request, Request, RequestError, MAX_LINE_BYTES, PROTOCOL_VERSION};
pub use server::{ServeConfig, Server};
pub use state::{ServeState, Stats};
