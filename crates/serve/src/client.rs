//! A small blocking `ECL/1` client.
//!
//! Used by the load harness, the CI smoke gate, and the integration
//! tests. Besides the well-behaved request/response path it exposes the
//! raw socket, because the chaos side of the harness needs to *misuse*
//! the protocol on purpose: half-written frames, stalls, and abrupt
//! disconnects.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A connected client session.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    /// The server's greeting line (`ECL/1 OK vertices=N`, or `BUSY ...`).
    pub greeting: String,
}

impl Client {
    /// Connects and reads the greeting. A `BUSY` greeting still yields
    /// a `Client` (callers inspect [`Client::greeting`]); only
    /// transport errors fail.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut c = Client {
            stream,
            reader,
            greeting: String::new(),
        };
        c.greeting = c.read_line()?;
        Ok(c)
    }

    /// True when the server accepted the session.
    pub fn accepted(&self) -> bool {
        self.greeting.starts_with("ECL/1 OK")
    }

    /// Sends one request line and reads the one-line response.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.read_line()
    }

    /// Writes raw bytes without a newline — the chaos-client primitive
    /// for truncated frames.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one response line (trailing newline stripped). An EOF is
    /// reported as `UnexpectedEof` so chaos callers can distinguish a
    /// dropped connection from an empty response.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }
}
