//! The `ECL/1` wire protocol.
//!
//! Line-delimited, human-debuggable (`nc` is a valid client), and
//! versioned: the server greets every accepted connection with
//! `ECL/1 OK vertices=N` so clients can bail out on a version or
//! capacity mismatch before sending anything. Requests are one line
//! each; responses are one line each, starting with `OK`, `ERR
//! <kind> <detail>`, or (only as a greeting) `BUSY <kind> <detail>`.
//!
//! Parsing is strict by design — the server faces untrusted peers, so
//! every malformed frame must map to a structured [`RequestError`]
//! rather than a panic or a silently-misread command. The same error
//! type carries execution-side failures (out-of-range vertices, queue
//! rejections, I/O trouble) so a session renders every failure the same
//! way.

use std::fmt;

/// Protocol version token sent in the greeting.
pub const PROTOCOL_VERSION: &str = "ECL/1";

/// Hard cap on a request line, greeting included (bytes, excluding the
/// newline). Anything longer is discarded to the next newline and
/// answered with `ERR too-long` — a peer cannot make the server buffer
/// unbounded garbage.
pub const MAX_LINE_BYTES: usize = 1024;

/// One parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `ADD u v` — ingest the undirected edge `{u, v}`.
    Add(u32, u32),
    /// `CONN u v` — are `u` and `v` currently connected?
    Conn(u32, u32),
    /// `COMP v` — current component representative of `v`.
    Comp(u32),
    /// `STATS` — connectivity stats (vertices/edges/components); pure
    /// function of the acknowledged edge set, so it compares equal
    /// across a kill + resume.
    Stats,
    /// `METRICS` — operational counters (sessions, rejects, malformed
    /// frames); deliberately separate from `STATS` because they do
    /// *not* survive a restart.
    Metrics,
    /// `SUBMIT name spec` — queue a batch CC job (e.g. `SUBMIT ring
    /// cycle:5000`) onto the engine-backed worker pool.
    Submit {
        /// Operator-chosen job label.
        name: String,
        /// Graph spec in [`ecl_engine::GraphSpec`] syntax.
        spec: String,
    },
    /// `JOB id` — poll a submitted job's status.
    Job(u64),
    /// `PING` — liveness check.
    Ping,
    /// `QUIT` — close this session cleanly.
    Quit,
    /// `SHUTDOWN` — ask the server to drain gracefully.
    Shutdown,
}

/// A structured request failure: a stable machine-readable `kind` plus
/// a human-readable detail. Rendered on the wire as `ERR <kind>
/// <detail>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestError {
    /// Stable kind tag (`bad-command`, `invalid-vertex`, `queue-full`,
    /// `too-long`, `io`, ...).
    pub kind: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl RequestError {
    /// Convenience constructor.
    pub fn new(kind: &'static str, detail: impl Into<String>) -> RequestError {
        RequestError {
            kind,
            detail: detail.into(),
        }
    }

    /// The wire form: `ERR <kind> <detail>` (detail newlines squashed
    /// so the frame stays one line).
    pub fn to_line(&self) -> String {
        format!("ERR {} {}", self.kind, self.detail.replace('\n', " "))
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

impl From<ecl_cc::EclError> for RequestError {
    fn from(e: ecl_cc::EclError) -> Self {
        RequestError {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

fn vertex(tok: &str) -> Result<u32, RequestError> {
    tok.parse::<u32>().map_err(|_| {
        RequestError::new(
            "bad-vertex",
            format!("expected a non-negative vertex id, got {tok:?}"),
        )
    })
}

/// Parses one request line. Never panics, whatever the bytes.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let mut it = line.split_whitespace();
    let cmd = it
        .next()
        .ok_or_else(|| RequestError::new("empty", "empty request line".to_string()))?;
    let args: Vec<&str> = it.collect();
    let arity = |n: usize| -> Result<(), RequestError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(RequestError::new(
                "bad-arity",
                format!("{cmd} takes {n} argument(s), got {}", args.len()),
            ))
        }
    };
    match cmd {
        "ADD" => {
            arity(2)?;
            Ok(Request::Add(vertex(args[0])?, vertex(args[1])?))
        }
        "CONN" => {
            arity(2)?;
            Ok(Request::Conn(vertex(args[0])?, vertex(args[1])?))
        }
        "COMP" => {
            arity(1)?;
            Ok(Request::Comp(vertex(args[0])?))
        }
        "STATS" => arity(0).map(|()| Request::Stats),
        "METRICS" => arity(0).map(|()| Request::Metrics),
        "SUBMIT" => {
            arity(2)?;
            Ok(Request::Submit {
                name: args[0].to_string(),
                spec: args[1].to_string(),
            })
        }
        "JOB" => {
            arity(1)?;
            let id = args[0].parse::<u64>().map_err(|_| {
                RequestError::new(
                    "bad-job-id",
                    format!("expected a job id, got {:?}", args[0]),
                )
            })?;
            Ok(Request::Job(id))
        }
        "PING" => arity(0).map(|()| Request::Ping),
        "QUIT" => arity(0).map(|()| Request::Quit),
        "SHUTDOWN" => arity(0).map(|()| Request::Shutdown),
        other => Err(RequestError::new(
            "bad-command",
            format!(
                "unknown command {other:?} (ADD, CONN, COMP, STATS, METRICS, \
                 SUBMIT, JOB, PING, QUIT, SHUTDOWN)"
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        assert_eq!(parse_request("ADD 3 9").unwrap(), Request::Add(3, 9));
        assert_eq!(parse_request("CONN 0 1").unwrap(), Request::Conn(0, 1));
        assert_eq!(parse_request("COMP 7").unwrap(), Request::Comp(7));
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(
            parse_request("SUBMIT ring cycle:100").unwrap(),
            Request::Submit {
                name: "ring".into(),
                spec: "cycle:100".into()
            }
        );
        assert_eq!(parse_request("JOB 4").unwrap(), Request::Job(4));
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
        // Whitespace is forgiving; case is not (commands are a protocol,
        // not a shell).
        assert_eq!(parse_request("  ADD  1   2 ").unwrap(), Request::Add(1, 2));
        assert_eq!(parse_request("add 1 2").unwrap_err().kind, "bad-command");
    }

    #[test]
    fn malformed_frames_are_structured_errors() {
        assert_eq!(parse_request("").unwrap_err().kind, "empty");
        assert_eq!(parse_request("   ").unwrap_err().kind, "empty");
        assert_eq!(parse_request("FROB 1").unwrap_err().kind, "bad-command");
        assert_eq!(parse_request("ADD 1").unwrap_err().kind, "bad-arity");
        assert_eq!(parse_request("ADD 1 2 3").unwrap_err().kind, "bad-arity");
        assert_eq!(parse_request("ADD x 2").unwrap_err().kind, "bad-vertex");
        assert_eq!(parse_request("ADD -1 2").unwrap_err().kind, "bad-vertex");
        assert_eq!(
            parse_request("ADD 99999999999 2").unwrap_err().kind,
            "bad-vertex"
        );
        assert_eq!(parse_request("JOB many").unwrap_err().kind, "bad-job-id");
        // Binary garbage parses to *some* structured error, never a panic.
        assert!(parse_request("\u{0}\u{1}\u{2}").is_err());
    }

    #[test]
    fn error_wire_form_is_one_line() {
        let e = RequestError::new("io", "disk\nfull".to_string());
        assert_eq!(e.to_line(), "ERR io disk full");
        let e: RequestError = ecl_cc::EclError::InvalidVertex { vertex: 9, len: 5 }.into();
        assert_eq!(e.kind, "invalid-vertex");
        assert!(e.to_line().starts_with("ERR invalid-vertex "));
    }
}
