//! Serial CPU baselines (the paper's §5.4: Boost, Lemon, igraph, and
//! serial Galois).

use ecl_cc::CcResult;
use ecl_graph::{CsrGraph, Vertex};
use ecl_unionfind::{Compression, DisjointSets};

const UNSET: u32 = u32::MAX;

/// Boost-style CC: depth-first search from every unvisited vertex with an
/// explicit stack. Like `boost::connected_components` (which runs
/// `depth_first_search` with a component-recording visitor), it maintains
/// BGL's tri-state **color map** alongside the component map — the extra
/// property-map traffic is part of what the paper measures when it
/// benchmarks Boost.
pub fn dfs_cc(g: &CsrGraph) -> CcResult {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = g.num_vertices();
    let mut labels = vec![UNSET; n];
    let mut color = vec![WHITE; n];
    let mut stack: Vec<Vertex> = Vec::new();
    for s in 0..n as Vertex {
        if color[s as usize] != WHITE {
            continue;
        }
        color[s as usize] = GRAY;
        labels[s as usize] = s;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if color[u as usize] == WHITE {
                    color[u as usize] = GRAY;
                    labels[u as usize] = s;
                    stack.push(u);
                }
            }
            color[v as usize] = BLACK;
        }
    }
    CcResult::new(labels)
}

/// Lemon-style CC: breadth-first search per unvisited vertex. LEMON's
/// `connectedComponents` iterates arcs through the graph's arc-ID
/// indirection (`OutArcIt` yields an arc whose target is then looked up),
/// modeled here by walking adjacency via explicit edge offsets instead of
/// a direct neighbor slice.
pub fn bfs_cc(g: &CsrGraph) -> CcResult {
    let n = g.num_vertices();
    let mut labels = vec![UNSET; n];
    let mut queue = std::collections::VecDeque::new();
    let adjacency = g.adjacency();
    for s in 0..n as Vertex {
        if labels[s as usize] != UNSET {
            continue;
        }
        labels[s as usize] = s;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            // Arc-iterator style: walk arc IDs, then resolve each target.
            let mut arc = g.neighbor_start(v);
            let end = g.neighbor_end(v);
            while arc != end {
                let u = adjacency[arc];
                if labels[u as usize] == UNSET {
                    labels[u as usize] = s;
                    queue.push_back(u);
                }
                arc += 1;
            }
        }
    }
    CcResult::new(labels)
}

/// igraph-style CC: DFS reachability plus the bookkeeping igraph's
/// `igraph_clusters` performs on top — dense membership and component-size
/// vectors and a compaction pass renumbering components `0..k` (the extra
/// passes are why igraph trails Boost in the paper's Tables 9–10).
pub fn igraph_cc(g: &CsrGraph) -> CcResult {
    let n = g.num_vertices();
    let mut membership = vec![UNSET; n];
    let mut stack: Vec<Vertex> = Vec::new();
    let mut num_components: u32 = 0;
    for s in 0..n as Vertex {
        if membership[s as usize] != UNSET {
            continue;
        }
        let comp = num_components;
        num_components += 1;
        membership[s as usize] = comp;
        stack.push(s);
        while let Some(v) = stack.pop() {
            for &u in g.neighbors(v) {
                if membership[u as usize] == UNSET {
                    membership[u as usize] = comp;
                    stack.push(u);
                }
            }
        }
    }
    // igraph's csize computation: one more pass over the membership.
    let mut csize = vec![0usize; num_components as usize];
    for &c in &membership {
        csize[c as usize] += 1;
    }
    // Convert dense component numbers back to representative labels (first
    // vertex of each component) so the result type matches the others.
    let mut first = vec![UNSET; num_components as usize];
    for (v, &c) in membership.iter().enumerate() {
        if first[c as usize] == UNSET {
            first[c as usize] = v as u32;
        }
    }
    let labels = membership.iter().map(|&c| first[c as usize]).collect();
    let _ = csize;
    CcResult::new(labels)
}

/// Galois-serial-style CC: one pass of union-find over the edges (each
/// undirected edge once) with full path compression, then a flatten.
pub fn unionfind_cc(g: &CsrGraph) -> CcResult {
    let n = g.num_vertices();
    let mut ds = DisjointSets::with_compression(n, Compression::Full);
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            if v > u {
                ds.union(v, u);
            }
        }
    }
    CcResult::new(ds.flatten().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::{generate, stats};

    type SerialFn = fn(&CsrGraph) -> CcResult;
    const ALL: [(&str, SerialFn); 4] = [
        ("dfs", dfs_cc as SerialFn),
        ("bfs", bfs_cc as SerialFn),
        ("igraph", igraph_cc as SerialFn),
        ("unionfind", unionfind_cc as SerialFn),
    ];

    #[test]
    fn all_verify_on_varied_graphs() {
        let graphs = [
            generate::path(300),
            generate::star(200),
            generate::disjoint_cliques(7, 6),
            generate::gnm_random(500, 1200, 1),
            generate::rmat(9, 6, generate::RmatParams::GALOIS, 2),
            ecl_graph::GraphBuilder::new(25).build(),
        ];
        for g in &graphs {
            for (name, f) in ALL {
                let r = f(g);
                r.verify(g).unwrap_or_else(|e| panic!("{name}: {e}"));
            }
        }
    }

    #[test]
    fn all_agree_with_reference_labels() {
        // All four use first-vertex/min-vertex representatives.
        let g = generate::disjoint_cliques(4, 5);
        let expected = stats::reference_labels(&g);
        for (name, f) in ALL {
            assert_eq!(f(&g).labels, expected, "{name}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = ecl_graph::GraphBuilder::new(0).build();
        for (_, f) in ALL {
            assert!(f(&g).labels.is_empty());
        }
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        // Explicit stacks/queues must survive a 100k-deep graph.
        let g = generate::path(100_000);
        for (name, f) in ALL {
            f(&g).verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
