//! Multistep CC (Slota, Rajamanickam, Madduri — IPDPS 2014), as described
//! in the paper's §2: one parallel level-synchronous BFS rooted at the
//! **maximum-degree vertex** captures the giant component cheaply; label
//! propagation then handles the remaining subgraph; a serial sweep
//! finishes once only a few vertices are left.

use super::parallel_expand;
use ecl_cc::CcResult;
use ecl_graph::{CsrGraph, Vertex};
use std::sync::atomic::{AtomicU32, Ordering};

const UNSET: u32 = u32::MAX;

/// Vertices below this count are finished serially (the paper: "finishes
/// the work serially if only a few vertices are left").
const SERIAL_CUTOFF: usize = 512;

/// Runs Multistep CC with `threads` workers.
pub fn run(g: &CsrGraph, threads: usize) -> CcResult {
    let n = g.num_vertices();
    if n == 0 {
        return CcResult::new(Vec::new());
    }
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

    // --- step 1: parallel BFS from the max-degree vertex ----------------
    let root = (0..n as Vertex).max_by_key(|&v| g.degree(v)).unwrap();
    labels[root as usize].store(root, Ordering::Relaxed);
    let mut frontier = vec![root];
    while !frontier.is_empty() {
        let labels_ref = &labels;
        frontier = parallel_expand(threads, &frontier, move |v, push| {
            for &u in g.neighbors(v) {
                if labels_ref[u as usize]
                    .compare_exchange(UNSET, root, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    push.push(u);
                }
            }
        });
    }

    // --- step 2: label propagation on the remainder ---------------------
    let mut remaining: Vec<Vertex> = (0..n as Vertex)
        .filter(|&v| labels[v as usize].load(Ordering::Relaxed) == UNSET)
        .collect();
    for &v in &remaining {
        labels[v as usize].store(v, Ordering::Relaxed);
    }
    while remaining.len() > SERIAL_CUTOFF {
        let labels_ref = &labels;
        let next = parallel_expand(threads, &remaining, move |v, push| {
            let lv = labels_ref[v as usize].load(Ordering::Relaxed);
            for &u in g.neighbors(v) {
                let mut lu = labels_ref[u as usize].load(Ordering::Relaxed);
                while lv < lu {
                    match labels_ref[u as usize].compare_exchange_weak(
                        lu,
                        lv,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            push.push(u);
                            break;
                        }
                        Err(cur) => lu = cur,
                    }
                }
            }
        });
        // Deduplicate to bound the frontier.
        let mut next = next;
        next.sort_unstable();
        next.dedup();
        remaining = next;
    }

    // --- step 3: finish serially ----------------------------------------
    let mut serial: Vec<Vertex> = remaining;
    while !serial.is_empty() {
        let mut next = Vec::new();
        for &v in &serial {
            let lv = labels[v as usize].load(Ordering::Relaxed);
            for &u in g.neighbors(v) {
                if lv < labels[u as usize].load(Ordering::Relaxed) {
                    labels[u as usize].store(lv, Ordering::Relaxed);
                    next.push(u);
                }
            }
        }
        next.sort_unstable();
        next.dedup();
        serial = next;
    }

    CcResult::new(labels.into_iter().map(AtomicU32::into_inner).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::test_support::test_graphs;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let r = run(&g, 4);
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn giant_component_labeled_by_bfs_root() {
        // Star: max-degree root is the hub (vertex 0); whole graph is one
        // component labeled 0.
        let g = ecl_graph::generate::star(200);
        let r = run(&g, 4);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn multiple_components_still_correct() {
        let g = ecl_graph::generate::disjoint_cliques(10, 30);
        let r = run(&g, 4);
        r.verify(&g).unwrap();
        assert_eq!(r.num_components(), 10);
    }

    #[test]
    fn empty_graph() {
        let g = ecl_graph::GraphBuilder::new(0).build();
        assert!(run(&g, 2).labels.is_empty());
    }
}
