//! Ligra+ "Comp"-style label propagation (paper §2): every vertex starts
//! labeled with its own ID; active vertices push their label to neighbors
//! with `atomicMin`; a vertex whose label changed in the previous round
//! joins the next frontier. Keeping the previous label per vertex confines
//! each round's work to vertices that actually changed — Ligra's
//! optimization — but label values still creep one hop per round, which
//! is why the paper measures Comp at 26.5 s on the high-diameter
//! `europe_osm` versus 0.18 s for ECL-CC_OMP.

use super::parallel_expand;
use ecl_cc::CcResult;
use ecl_graph::{CsrGraph, Vertex};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Runs frontier-based label propagation with `threads` workers.
pub fn run(g: &CsrGraph, threads: usize) -> CcResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let queued: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    let mut frontier: Vec<Vertex> = (0..n as Vertex).collect();
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        assert!(rounds <= n + 1, "label propagation failed to converge");
        let labels_ref = &labels;
        let queued_ref = &queued;
        let next = parallel_expand(threads, &frontier, move |v, push| {
            let lv = labels_ref[v as usize].load(Ordering::Relaxed);
            for &u in g.neighbors(v) {
                // Push lv to every neighbor with a larger label.
                let mut lu = labels_ref[u as usize].load(Ordering::Relaxed);
                while lv < lu {
                    match labels_ref[u as usize].compare_exchange_weak(
                        lu,
                        lv,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            if !queued_ref[u as usize].swap(true, Ordering::Relaxed) {
                                push.push(u);
                            }
                            break;
                        }
                        Err(cur) => lu = cur,
                    }
                }
            }
        });
        for &v in &next {
            queued[v as usize].store(false, Ordering::Relaxed);
        }
        frontier = next;
    }

    CcResult::new(labels.into_iter().map(AtomicU32::into_inner).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::test_support::test_graphs;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let r = run(&g, 4);
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn labels_are_component_minimums() {
        let g = ecl_graph::generate::disjoint_cliques(3, 5);
        let r = run(&g, 2);
        assert_eq!(r.labels, ecl_graph::stats::reference_labels(&g));
    }

    #[test]
    fn single_thread_works() {
        let g = ecl_graph::generate::gnm_random(300, 700, 9);
        run(&g, 1).verify(&g).unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = ecl_graph::GraphBuilder::new(0).build();
        assert!(run(&g, 4).labels.is_empty());
    }
}
