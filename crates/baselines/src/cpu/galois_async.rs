//! Galois' asynchronous connected components (paper §2): every edge is
//! added once to a concurrent union-find; only one of the two directed
//! copies of each undirected edge is processed; unions and finds run
//! concurrently with a restricted form of pointer jumping. This is the
//! closest ancestor of ECL-CC's computation phase — what ECL-CC adds on
//! top is the enhanced initialization and the GPU-specific machinery.

use ecl_cc::CcResult;
use ecl_graph::CsrGraph;
use ecl_parallel::{parallel_for, Schedule};
use ecl_unionfind::AtomicParents;

/// Runs Galois-style asynchronous union-find CC with `threads` workers.
pub fn run(g: &CsrGraph, threads: usize) -> CcResult {
    let n = g.num_vertices();
    // Plain vertex-ID initialization (no ECL-CC enhanced init).
    let parents = AtomicParents::new(n);
    {
        let parents = &parents;
        parallel_for(threads, n, Schedule::Dynamic { chunk: 64 }, move |v| {
            let v = v as u32;
            for &u in g.neighbors(v) {
                if v > u {
                    // Restricted pointer jumping: path halving inside find.
                    let ru = parents.find_repres(u);
                    let rv = parents.find_repres(v);
                    parents.hook(ru, rv);
                }
            }
        });
    }
    // Flatten for the final labels.
    {
        let parents = &parents;
        parallel_for(threads, n, Schedule::Dynamic { chunk: 256 }, move |v| {
            let v = v as u32;
            let root = parents.find_naive(v);
            parents.set_parent(v, root);
        });
    }
    CcResult::new(parents.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::test_support::test_graphs;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let r = run(&g, 4);
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn matches_ecl_labels() {
        // Same min-wins convention → identical labels, not just partition.
        let g = ecl_graph::generate::gnm_random(500, 1300, 5);
        let ours = run(&g, 4);
        let ecl = ecl_cc::connected_components(&g);
        assert_eq!(ours.labels, ecl.labels);
    }

    #[test]
    fn repeated_runs_identical() {
        let g = ecl_graph::generate::kronecker(9, 8, 7);
        let a = run(&g, 8);
        let b = run(&g, 8);
        assert_eq!(a.labels, b.labels);
    }
}
