//! Ligra+ "BFSCC"-style connected components (paper §2): iterate over the
//! vertices; every still-unlabeled vertex seeds a **parallel breadth-first
//! search** that labels everything it reaches. Level-synchronous frontier
//! expansion gives excellent parallelism on low-diameter graphs (one of
//! the fastest CPU codes in the paper's Fig. 13) but pays one global
//! barrier per BFS level, which hurts on high-diameter road networks.

use super::parallel_expand;
use ecl_cc::CcResult;
use ecl_graph::{CsrGraph, Vertex};
use std::sync::atomic::{AtomicU32, Ordering};

const UNSET: u32 = u32::MAX;

/// Runs BFS-based CC with `threads` workers.
pub fn run(g: &CsrGraph, threads: usize) -> CcResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();

    for s in 0..n as Vertex {
        if labels[s as usize].load(Ordering::Relaxed) != UNSET {
            continue;
        }
        labels[s as usize].store(s, Ordering::Relaxed);
        let mut frontier = vec![s];
        while !frontier.is_empty() {
            let labels_ref = &labels;
            frontier = parallel_expand(threads, &frontier, move |v, push| {
                for &u in g.neighbors(v) {
                    // Claim unvisited neighbors with a CAS; the winner
                    // enqueues them (no duplicates in the next frontier).
                    if labels_ref[u as usize]
                        .compare_exchange(UNSET, s, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        push.push(u);
                    }
                }
            });
        }
    }

    CcResult::new(labels.into_iter().map(AtomicU32::into_inner).collect())
}

/// Direction-optimizing variant: Ligra's signature hybrid BFS
/// (Beamer-style push/pull switching, which Ligra generalized into its
/// `edgeMap`). When the frontier is small the level expands top-down
/// ("push", as in [`run`]); when the frontier's outgoing edge count
/// exceeds `m / 20` the level instead scans all unvisited vertices
/// bottom-up ("pull"), checking whether any neighbor is in the frontier —
/// asymptotically more work but far fewer cache-hostile scattered writes
/// on social-network frontiers.
pub fn run_direction_optimizing(g: &CsrGraph, threads: usize) -> CcResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    let in_frontier: Vec<std::sync::atomic::AtomicBool> = (0..n)
        .map(|_| std::sync::atomic::AtomicBool::new(false))
        .collect();
    let threshold = (g.num_directed_edges() / 20).max(64);

    for s in 0..n as Vertex {
        if labels[s as usize].load(Ordering::Relaxed) != UNSET {
            continue;
        }
        labels[s as usize].store(s, Ordering::Relaxed);
        let mut frontier = vec![s];
        while !frontier.is_empty() {
            let labels_ref = &labels;
            let frontier_edges: usize = frontier.iter().map(|&v| g.degree(v)).sum();
            if frontier_edges <= threshold {
                // Top-down push.
                frontier = super::parallel_expand(threads, &frontier, move |v, push| {
                    for &u in g.neighbors(v) {
                        if labels_ref[u as usize]
                            .compare_exchange(UNSET, s, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                        {
                            push.push(u);
                        }
                    }
                });
            } else {
                // Bottom-up pull: every unvisited vertex checks whether it
                // has a neighbor in the current frontier.
                for &v in &frontier {
                    in_frontier[v as usize].store(true, Ordering::Relaxed);
                }
                let in_frontier_ref = &in_frontier;
                let candidates: Vec<Vertex> = (0..n as Vertex)
                    .filter(|&v| labels[v as usize].load(Ordering::Relaxed) == UNSET)
                    .collect();
                let next = super::parallel_expand(threads, &candidates, move |v, push| {
                    for &u in g.neighbors(v) {
                        if in_frontier_ref[u as usize].load(Ordering::Relaxed) {
                            labels_ref[v as usize].store(s, Ordering::Relaxed);
                            push.push(v);
                            break;
                        }
                    }
                });
                for &v in &frontier {
                    in_frontier[v as usize].store(false, Ordering::Relaxed);
                }
                frontier = next;
            }
        }
    }
    CcResult::new(labels.into_iter().map(AtomicU32::into_inner).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::test_support::test_graphs;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let r = run(&g, 4);
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn labels_are_bfs_roots() {
        let g = ecl_graph::generate::disjoint_cliques(4, 6);
        let r = run(&g, 2);
        assert_eq!(r.labels, ecl_graph::stats::reference_labels(&g));
    }

    #[test]
    fn isolated_vertices_label_themselves() {
        let g = ecl_graph::GraphBuilder::new(10).build();
        let r = run(&g, 4);
        assert_eq!(r.labels, (0..10u32).collect::<Vec<_>>());
    }

    #[test]
    fn deep_graph_terminates() {
        let g = ecl_graph::generate::path(5000);
        run(&g, 4).verify(&g).unwrap();
    }

    #[test]
    fn direction_optimizing_verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let r = run_direction_optimizing(&g, 4);
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn direction_optimizing_matches_push_only() {
        // Star: the hub's frontier has n-1 outgoing edges → triggers the
        // pull path immediately.
        let g = ecl_graph::generate::star(4000);
        assert_eq!(run_direction_optimizing(&g, 4).labels, run(&g, 4).labels);
        // Dense social-style graph: several pull levels.
        let g = ecl_graph::generate::preferential_attachment(2000, 8, 5);
        assert_eq!(run_direction_optimizing(&g, 4).labels, run(&g, 4).labels);
    }
}
