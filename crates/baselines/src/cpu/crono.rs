//! CRONO's connected components (Ahmad et al., IISWC 2015), as described
//! in the paper's §2: the Shiloach–Vishkin approach — iterated parallel
//! hooking over the edges followed by parallel pointer jumping — on
//! multicore. CRONO's implementation is built on 2D matrices of size
//! `n × dmax`, "as a consequence \[it\] tends to run out of memory for
//! graphs with high-degree vertices"; [`run`] reproduces that failure
//! mode by refusing inputs whose `n × dmax` working set exceeds a budget
//! (the paper's Tables 7–8 show `n/a` for exactly those inputs).

use ecl_cc::CcResult;
use ecl_graph::CsrGraph;
use ecl_parallel::{parallel_for, Schedule};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Default cap on the simulated `n × dmax` allocation (entries). The
/// paper's machine had 128 GB; scaled to this environment we refuse
/// anything above 2^28 entries.
pub const DEFAULT_MEMORY_BUDGET: u64 = 1 << 28;

/// Runs CRONO-style SV with `threads` workers. Returns `None` when the
/// `n × dmax` layout would exceed `DEFAULT_MEMORY_BUDGET` (CRONO's
/// out-of-memory failure, reported as `n/a` in the paper).
pub fn run(g: &CsrGraph, threads: usize) -> Option<CcResult> {
    run_with_budget(g, threads, DEFAULT_MEMORY_BUDGET)
}

/// [`run`] with an explicit memory budget in matrix entries.
pub fn run_with_budget(g: &CsrGraph, threads: usize, budget: u64) -> Option<CcResult> {
    let n = g.num_vertices();
    if (n as u64).saturating_mul(g.max_degree() as u64) > budget {
        return None;
    }
    let parent: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let changed = AtomicBool::new(true);

    let mut rounds = 0usize;
    while changed.swap(false, Ordering::Relaxed) {
        rounds += 1;
        assert!(rounds <= n + 2, "CRONO SV failed to converge");
        let parent_ref = &parent;
        let changed_ref = &changed;
        // Hooking: each vertex scans its row of the adjacency matrix.
        parallel_for(threads, n, Schedule::Static, move |v| {
            let pv = parent_ref[v].load(Ordering::Relaxed);
            for &u in g.neighbors(v as u32) {
                let pu = parent_ref[u as usize].load(Ordering::Relaxed);
                if pu != pv {
                    let (hi, lo) = if pu > pv { (pu, pv) } else { (pv, pu) };
                    if parent_ref[hi as usize].fetch_min(lo, Ordering::Relaxed) > lo {
                        changed_ref.store(true, Ordering::Relaxed);
                    }
                }
            }
        });
        // Pointer jumping: flatten every vertex to its current root.
        parallel_for(threads, n, Schedule::Static, move |v| {
            let mut root = v as u32;
            loop {
                let p = parent_ref[root as usize].load(Ordering::Relaxed);
                if p >= root {
                    break;
                }
                root = p;
            }
            parent_ref[v].store(root, Ordering::Relaxed);
        });
    }

    Some(CcResult::new(
        parent.into_iter().map(AtomicU32::into_inner).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::test_support::test_graphs;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let r = run(&g, 4).expect("within budget");
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn oom_failure_mode() {
        // A star has dmax = n - 1, so n × dmax ~ n²: exceeds a small budget.
        let g = ecl_graph::generate::star(2000);
        assert!(run_with_budget(&g, 2, 100_000).is_none());
        assert!(run_with_budget(&g, 2, u64::MAX).is_some());
    }

    #[test]
    fn labels_are_roots() {
        let g = ecl_graph::generate::gnm_random(400, 1000, 3);
        let r = run(&g, 4).unwrap();
        for (v, &l) in r.labels.iter().enumerate() {
            assert_eq!(r.labels[l as usize], l, "vertex {v}");
        }
    }

    #[test]
    fn single_thread() {
        let g = ecl_graph::generate::grid2d(15, 15);
        run(&g, 1).unwrap().verify(&g).unwrap();
    }
}
