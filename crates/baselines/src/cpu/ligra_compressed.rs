//! Ligra+ over its actual compressed representation.
//!
//! The other Ligra+-style baselines in this crate run over plain CSR;
//! Ligra+'s distinguishing feature is that every algorithm runs directly
//! over byte-compressed adjacency lists ("internally uses a compressed
//! graph representation … generally faster than Ligra when using its fast
//! compression scheme", paper §2). These variants execute the same BFSCC
//! and Comp algorithms while decoding neighbors on the fly.

use super::parallel_expand;
use ecl_cc::CcResult;
use ecl_graph::{CompressedGraph, Vertex};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

const UNSET: u32 = u32::MAX;

/// BFS-based CC over the compressed representation (Ligra+ BFSCC).
pub fn bfscc(g: &CompressedGraph, threads: usize) -> CcResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    for s in 0..n as Vertex {
        if labels[s as usize].load(Ordering::Relaxed) != UNSET {
            continue;
        }
        labels[s as usize].store(s, Ordering::Relaxed);
        let mut frontier = vec![s];
        while !frontier.is_empty() {
            let labels_ref = &labels;
            frontier = parallel_expand(threads, &frontier, move |v, push| {
                for u in g.neighbors(v) {
                    if labels_ref[u as usize]
                        .compare_exchange(UNSET, s, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        push.push(u);
                    }
                }
            });
        }
    }
    CcResult::new(labels.into_iter().map(AtomicU32::into_inner).collect())
}

/// Label propagation over the compressed representation (Ligra+ Comp).
pub fn label_prop(g: &CompressedGraph, threads: usize) -> CcResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as u32).map(AtomicU32::new).collect();
    let queued: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut frontier: Vec<Vertex> = (0..n as Vertex).collect();
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        assert!(rounds <= n + 1, "label propagation failed to converge");
        let labels_ref = &labels;
        let queued_ref = &queued;
        let next = parallel_expand(threads, &frontier, move |v, push| {
            let lv = labels_ref[v as usize].load(Ordering::Relaxed);
            for u in g.neighbors(v) {
                let mut lu = labels_ref[u as usize].load(Ordering::Relaxed);
                while lv < lu {
                    match labels_ref[u as usize].compare_exchange_weak(
                        lu,
                        lv,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            if !queued_ref[u as usize].swap(true, Ordering::Relaxed) {
                                push.push(u);
                            }
                            break;
                        }
                        Err(cur) => lu = cur,
                    }
                }
            }
        });
        for &v in &next {
            queued[v as usize].store(false, Ordering::Relaxed);
        }
        frontier = next;
    }
    CcResult::new(labels.into_iter().map(AtomicU32::into_inner).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::test_support::test_graphs;
    use ecl_graph::CompressedGraph;

    #[test]
    fn bfscc_verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let c = CompressedGraph::from_csr(&g);
            let r = bfscc(&c, 4);
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn label_prop_verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let c = CompressedGraph::from_csr(&g);
            let r = label_prop(&c, 4);
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn compressed_matches_uncompressed_results() {
        let g = ecl_graph::generate::rmat(9, 6, ecl_graph::generate::RmatParams::GALOIS, 8);
        let c = CompressedGraph::from_csr(&g);
        assert_eq!(bfscc(&c, 4).labels, crate::cpu::bfscc::run(&g, 4).labels);
        assert_eq!(
            label_prop(&c, 4).labels,
            crate::cpu::label_prop::run(&g, 4).labels
        );
    }

    #[test]
    fn compression_saves_memory_on_catalog_graph() {
        let g = ecl_graph::catalog::PaperGraph::EuropeOsm.generate(ecl_graph::catalog::Scale::Tiny);
        let c = CompressedGraph::from_csr(&g);
        assert!(
            c.compression_ratio() > 1.5,
            "ratio {:.2}",
            c.compression_ratio()
        );
    }
}
