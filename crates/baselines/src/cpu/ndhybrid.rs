//! ndHybrid-style connected components (Shun, Dhulipala, Blelloch — SPAA
//! 2014), as described in the paper's §2: "runs multiple concurrent BFSs
//! to generate low-diameter partitions of the graph. Then it contracts
//! each partition into a single vertex, relabels the vertices and edges
//! between partitions, and recursively performs the same operations on the
//! resulting graph."
//!
//! This implementation keeps that two-level structure (it is the
//! "practical simplification" documented in DESIGN.md): a staggered
//! multi-source BFS partitions the graph into low-diameter clusters, the
//! cut edges between clusters are contracted through a union-find, and
//! the cluster representatives' labels are pushed back down. Staggering —
//! admitting a geometrically growing number of new BFS sources each round,
//! as in Miller–Peng–Xu decomposition — bounds the number of
//! level-synchronous rounds even on high-diameter inputs.

use super::parallel_expand;
use ecl_cc::CcResult;
use ecl_graph::{CsrGraph, Vertex};
use ecl_parallel::{parallel_for, Schedule};
use ecl_unionfind::AtomicParents;
use std::sync::atomic::{AtomicU32, Ordering};

const UNSET: u32 = u32::MAX;

/// Runs the hybrid LDD + contraction CC with `threads` workers.
pub fn run(g: &CsrGraph, threads: usize) -> CcResult {
    let n = g.num_vertices();
    if n == 0 {
        return CcResult::new(Vec::new());
    }
    // --- phase 1: staggered multi-source BFS partition -------------------
    let cluster: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNSET)).collect();
    let mut frontier: Vec<Vertex> = Vec::new();
    let mut next_source: usize = 0;
    let mut batch: usize = 1;
    while !frontier.is_empty() || next_source < n {
        // Admit the next batch of unclaimed vertices as fresh sources.
        let mut admitted = 0;
        while admitted < batch && next_source < n {
            let s = next_source as Vertex;
            next_source += 1;
            if cluster[s as usize]
                .compare_exchange(UNSET, s, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                frontier.push(s);
                admitted += 1;
            }
        }
        batch = batch.saturating_mul(2);
        if frontier.is_empty() {
            continue;
        }
        let cluster_ref = &cluster;
        frontier = parallel_expand(threads, &frontier, move |v, push| {
            let cv = cluster_ref[v as usize].load(Ordering::Relaxed);
            for &u in g.neighbors(v) {
                if cluster_ref[u as usize]
                    .compare_exchange(UNSET, cv, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    push.push(u);
                }
            }
        });
    }

    // --- phase 2: contract cut edges through a union-find ----------------
    let parents = AtomicParents::new(n);
    {
        let parents = &parents;
        let cluster_ref = &cluster;
        parallel_for(threads, n, Schedule::Dynamic { chunk: 128 }, move |v| {
            let v = v as Vertex;
            let cv = cluster_ref[v as usize].load(Ordering::Relaxed);
            for &u in g.neighbors(v) {
                if v > u {
                    let cu = cluster_ref[u as usize].load(Ordering::Relaxed);
                    if cu != cv {
                        parents.unite(cu, cv);
                    }
                }
            }
        });
    }

    // --- phase 3: push contracted labels back down ------------------------
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    {
        let parents = &parents;
        let cluster_ref = &cluster;
        let labels_ref = &labels;
        parallel_for(threads, n, Schedule::Static, move |v| {
            let c = cluster_ref[v].load(Ordering::Relaxed);
            labels_ref[v].store(parents.find_naive(c), Ordering::Relaxed);
        });
    }
    CcResult::new(labels.into_iter().map(AtomicU32::into_inner).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::test_support::test_graphs;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let r = run(&g, 4);
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn deep_path_bounded_rounds() {
        // Staggered sources must not degrade to n BFS levels.
        let g = ecl_graph::generate::path(20_000);
        let r = run(&g, 4);
        r.verify(&g).unwrap();
    }

    #[test]
    fn many_components() {
        let g = ecl_graph::generate::disjoint_cliques(25, 8);
        let r = run(&g, 4);
        assert_eq!(r.num_components(), 25);
    }

    #[test]
    fn empty_graph() {
        assert!(run(&ecl_graph::GraphBuilder::new(0).build(), 2)
            .labels
            .is_empty());
    }
}
