//! Afforest (Sutton, Ben-Nun, Barak — IPDPS 2018): the contemporaneous
//! successor to ECL-CC's generation of union-find CC codes, included as an
//! extension beyond the paper's comparison set.
//!
//! Afforest's insight: real-world graphs have one giant component, so (1)
//! link only a small fixed *neighbor-sample* of each vertex's edges
//! first, (2) identify the most frequent representative — almost
//! certainly the giant component — by sampling vertices, and (3) process
//! the remaining edges only for vertices **outside** that component,
//! skipping the vast majority of the edge list.

use ecl_cc::CcResult;
use ecl_graph::{CsrGraph, Vertex};
use ecl_parallel::{parallel_for, Schedule};
use ecl_unionfind::AtomicParents;

/// Edges per vertex linked in the sampling phase (the paper's default).
const NEIGHBOR_ROUNDS: usize = 2;
/// Vertices sampled to identify the giant component.
const SAMPLE_SIZE: usize = 1024;

/// Runs Afforest with `threads` workers.
pub fn run(g: &CsrGraph, threads: usize) -> CcResult {
    let n = g.num_vertices();
    let parents = AtomicParents::new(n);

    // --- phase 1: link a sample of each vertex's first edges -----------
    for round in 0..NEIGHBOR_ROUNDS {
        let parents = &parents;
        parallel_for(threads, n, Schedule::Guided { min_chunk: 128 }, move |v| {
            let v = v as Vertex;
            if let Some(&u) = g.neighbors(v).get(round) {
                parents.unite(v, u);
            }
        });
    }

    // --- phase 2: find the most frequent component by sampling ----------
    let giant = most_frequent_root(&parents, n);

    // --- phase 3: finish the remaining edges, skipping the giant --------
    {
        let parents = &parents;
        parallel_for(threads, n, Schedule::Guided { min_chunk: 64 }, move |v| {
            let v = v as Vertex;
            if parents.find_repres(v) == giant {
                return; // already in the giant component: skip its edges
            }
            for &u in g.neighbors(v).iter().skip(NEIGHBOR_ROUNDS) {
                parents.unite(v, u);
            }
        });
    }

    // --- finalize --------------------------------------------------------
    {
        let parents = &parents;
        parallel_for(threads, n, Schedule::Static, move |v| {
            let v = v as Vertex;
            let root = parents.find_naive(v);
            parents.set_parent(v, root);
        });
    }
    CcResult::new(parents.snapshot())
}

/// Approximates the most common representative by probing a fixed,
/// deterministic sample of vertices.
fn most_frequent_root(parents: &AtomicParents, n: usize) -> Vertex {
    if n == 0 {
        return 0;
    }
    let mut counts: std::collections::HashMap<Vertex, usize> = std::collections::HashMap::new();
    let stride = (n / SAMPLE_SIZE).max(1);
    let mut v = 0usize;
    while v < n {
        *counts.entry(parents.find_repres(v as Vertex)).or_insert(0) += 1;
        v += stride;
    }
    counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(r, _)| r)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::test_support::test_graphs;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let r = run(&g, 4);
            r.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn skipping_preserves_correctness_with_many_components() {
        // The skip heuristic must not lose small components.
        let g = ecl_graph::generate::disjoint_cliques(30, 7);
        let r = run(&g, 4);
        r.verify(&g).unwrap();
        assert_eq!(r.num_components(), 30);
    }

    #[test]
    fn giant_component_case() {
        let g = ecl_graph::generate::preferential_attachment(3000, 4, 9);
        let r = run(&g, 4);
        r.verify(&g).unwrap();
        assert_eq!(r.num_components(), 1);
    }

    #[test]
    fn matches_ecl_labels() {
        let g = ecl_graph::generate::gnm_random(600, 1500, 13);
        assert_eq!(run(&g, 4).labels, ecl_cc::connected_components(&g).labels);
    }

    #[test]
    fn empty_graph() {
        assert!(run(&ecl_graph::GraphBuilder::new(0).build(), 2)
            .labels
            .is_empty());
    }
}
