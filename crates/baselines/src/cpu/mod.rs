//! Parallel CPU baselines, all on the workspace thread pool
//! (`ecl-parallel`) and the shared CSR graph, so runtime differences
//! against ECL-CC_OMP reflect the algorithms.

pub mod afforest;
pub mod bfscc;
pub mod crono;
pub mod galois_async;
pub mod label_prop;
pub mod ligra_compressed;
pub mod multistep;
pub mod ndhybrid;

use ecl_graph::Vertex;
use ecl_parallel::counters::WorkCounter;
use ecl_parallel::parallel_for_teams;
use std::sync::Mutex;

/// Expands one frontier in parallel: `visit(v, push)` is called for every
/// `v` in `frontier`; everything pushed becomes the next frontier.
///
/// Threads claim chunks of the frontier and buffer their discoveries in
/// thread-local vectors that are concatenated at the end of the level —
/// the local-worklist scheme the paper attributes to Multistep ("to
/// minimize overheads, each thread uses a local worklist, which are merged
/// at the end of each iteration").
pub(crate) fn parallel_expand<F>(threads: usize, frontier: &[Vertex], visit: F) -> Vec<Vertex>
where
    F: Fn(Vertex, &mut Vec<Vertex>) + Sync,
{
    if frontier.is_empty() {
        return Vec::new();
    }
    let threads = threads.max(1);
    if threads == 1 || frontier.len() < 256 {
        let mut next = Vec::new();
        for &v in frontier {
            visit(v, &mut next);
        }
        return next;
    }
    let counter = WorkCounter::new();
    let results: Vec<Mutex<Vec<Vertex>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
    parallel_for_teams(threads, |tid| {
        let mut local = Vec::new();
        while let Some((s, e)) = counter.claim(64, frontier.len()) {
            for &v in &frontier[s..e] {
                visit(v, &mut local);
            }
        }
        *results[tid].lock().unwrap() = local;
    });
    let mut next = Vec::new();
    for r in results {
        next.append(&mut r.into_inner().unwrap());
    }
    next
}

#[cfg(test)]
pub(crate) mod test_support {
    use ecl_graph::{generate, CsrGraph};

    /// Shared test-graph set for the CPU baselines.
    pub fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
        vec![
            ("path", generate::path(500)),
            ("star", generate::star(300)),
            ("cliques", generate::disjoint_cliques(8, 7)),
            ("grid", generate::grid2d(20, 20)),
            ("random", generate::gnm_random(600, 1500, 1)),
            (
                "rmat",
                generate::rmat(9, 6, generate::RmatParams::GALOIS, 2),
            ),
            ("road", generate::road_network(20, 20, 0.2, 1.0, 3)),
            ("singletons", ecl_graph::GraphBuilder::new(40).build()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_visits_every_frontier_vertex() {
        let frontier: Vec<Vertex> = (0..1000).collect();
        let next = parallel_expand(4, &frontier, |v, push| {
            if v % 2 == 0 {
                push.push(v * 2);
            }
        });
        let mut sorted = next.clone();
        sorted.sort_unstable();
        let expected: Vec<Vertex> = (0..1000).filter(|v| v % 2 == 0).map(|v| v * 2).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn expand_empty_frontier() {
        let next = parallel_expand(4, &[], |_, push| push.push(0));
        assert!(next.is_empty());
    }

    #[test]
    fn expand_small_frontier_sequential_path() {
        let next = parallel_expand(8, &[1, 2, 3], |v, push| push.push(v + 10));
        assert_eq!(next, vec![11, 12, 13]);
    }
}
