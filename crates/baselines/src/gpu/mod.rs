//! GPU baselines on the SIMT simulator.
//!
//! All four share the device-side warp-vector `find`/`hook` helpers from
//! `ecl_cc::gpu::warp_ops` where their algorithms call for them, and all
//! return the labeling plus their full kernel statistics so the benchmark
//! harness can compare simulated cycles against ECL-CC's.

pub mod groute;
pub mod gunrock;
pub mod irgl;
pub mod soman;

use ecl_cc::CcResult;
use ecl_gpu_sim::KernelStats;

/// Labeling plus the kernels a GPU baseline launched.
#[derive(Clone, Debug)]
pub struct GpuBaselineRun {
    /// The computed labeling.
    pub result: CcResult,
    /// All kernels launched by this run, in order.
    pub kernels: Vec<KernelStats>,
}

impl GpuBaselineRun {
    /// Total simulated cycles.
    pub fn total_cycles(&self) -> u64 {
        self.kernels.iter().map(|k| k.cycles).sum()
    }
}

/// Uploads the graph's **full directed** edge list (2m entries) as two
/// device arrays; shared by the edge-centric baselines.
///
/// Processing each undirected edge in only one direction is explicitly an
/// ECL-CC/Galois optimization ("only processes edges in one direction",
/// §3) — the SV-family GPU codes the paper compares against work on the
/// CSR-derived directed edge list, so the baselines here do too.
pub(crate) fn upload_edge_list(
    gpu: &mut ecl_gpu_sim::Gpu,
    g: &ecl_graph::CsrGraph,
) -> (ecl_gpu_sim::DevicePtr, ecl_gpu_sim::DevicePtr, usize) {
    let mut src = Vec::with_capacity(g.num_directed_edges());
    let mut dst = Vec::with_capacity(g.num_directed_edges());
    for (u, v) in g.directed_edges() {
        src.push(u);
        dst.push(v);
    }
    let m = src.len();
    let src = gpu.alloc_from(&src);
    let dst = gpu.alloc_from(&dst);
    (src, dst, m)
}

#[cfg(test)]
pub(crate) mod test_support {
    use ecl_graph::{generate, CsrGraph};

    /// Graphs covering the degree/topology classes the kernels bucket on.
    pub fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
        vec![
            ("path", generate::path(300)),
            ("star", generate::star(400)),
            ("cliques", generate::disjoint_cliques(6, 9)),
            ("grid", generate::grid2d(15, 15)),
            ("random", generate::gnm_random(400, 1000, 1)),
            (
                "rmat",
                generate::rmat(9, 6, generate::RmatParams::GALOIS, 2),
            ),
            ("singletons", ecl_graph::GraphBuilder::new(50).build()),
        ]
    }
}
