//! Groute's connected components (Ben-Nun et al., PPoPP 2017), as
//! described in the paper's §2 and §3: the edge list is split into `2m/n`
//! segments; each segment is processed with **atomic hooking** (CAS-based
//! locking of the two representatives, which eliminates the need for
//! repeated global iteration — each edge is hooked once, like ECL-CC)
//! followed by a multiple-pointer-jumping pass over the segment's
//! endpoints, so hooking and jumping are "somewhat interleaved". A final
//! flatten produces the labels.
//!
//! What ECL-CC adds over this structure (§3): enhanced initialization,
//! intermediate instead of multiple pointer jumping, find-compression
//! *during* hooking, and the degree-bucketed kernels.

use super::GpuBaselineRun;
use ecl_cc::gpu::warp_ops::{warp_find, warp_hook, warp_walk};
use ecl_cc::CcResult;
use ecl_gpu_sim::{Gpu, Lanes};
use ecl_graph::CsrGraph;
use ecl_unionfind::concurrent::JumpKind;

/// Runs Groute-style CC.
pub fn run(gpu: &mut Gpu, g: &CsrGraph) -> GpuBaselineRun {
    let n = g.num_vertices();
    let kernels_before = gpu.kernel_stats().len();
    // One direction per undirected edge: Groute's atomic hooking, like
    // ECL-CC's, only needs each edge once.
    let mut src_h = Vec::with_capacity(g.num_edges());
    let mut dst_h = Vec::with_capacity(g.num_edges());
    for (u, v) in g.edges() {
        src_h.push(u);
        dst_h.push(v);
    }
    let m = src_h.len();
    let src = gpu.alloc_from(&src_h);
    let dst = gpu.alloc_from(&dst_h);
    let parent = gpu.alloc_from(&(0..n as u32).collect::<Vec<_>>());

    let nu = n as u32;
    let total_v = gpu.suggested_threads(n.max(1));

    // 2m/n segments over the directed count (paper's figure), i.e. each
    // segment carries ≈ n/4 undirected edges.
    let num_segments = (2 * g.num_directed_edges())
        .checked_div(n)
        .unwrap_or(1)
        .max(1);
    let seg_len = m.div_ceil(num_segments).max(1);

    // Jump passes are interleaved between hooking segments: a multiple-
    // pointer-jumping sweep over the vertices after every quarter of the
    // segments (and once at the end), giving the "somewhat interleaved"
    // hooking/jumping schedule the paper describes without re-walking the
    // whole vertex array per segment.
    let jump_interval = num_segments.div_ceil(4).max(1);
    let stride_v = total_v as u32;
    let mut seg_start = 0usize;
    let mut seg_idx = 0usize;
    loop {
        let seg_end = (seg_start + seg_len).min(m);
        let s0 = seg_start as u32;
        let s1 = seg_end as u32;
        if s1 > s0 {
            let total_e = gpu.suggested_threads((seg_end - seg_start).max(1));
            let stride = total_e as u32;
            // Atomic hooking over this segment: walk to both
            // representatives (no compression during the find — that is
            // an ECL-CC addition) and CAS-hook them.
            gpu.launch_warps("groute_hook", total_e, |w| {
                let mut e = w.thread_ids().add_scalar(s0);
                loop {
                    let m_act = w.launch_mask() & e.lt_scalar(s1);
                    if m_act.none() {
                        return;
                    }
                    let u = w.load(src, &e, m_act);
                    let v = w.load(dst, &e, m_act);
                    let ru = warp_find(w, parent, &u, m_act, JumpKind::None);
                    let rv = warp_find(w, parent, &v, m_act, JumpKind::None);
                    let _ = warp_hook(w, parent, &ru, &rv, m_act);
                    e = e.add_scalar(stride);
                    w.alu(2);
                }
            });
        }
        seg_idx += 1;
        let last = seg_end >= m;
        if seg_idx.is_multiple_of(jump_interval) || last {
            gpu.launch_warps("groute_jump", total_v, |w| {
                let mut v = w.thread_ids();
                loop {
                    let m_act = w.launch_mask() & v.lt_scalar(nu);
                    if m_act.none() {
                        return;
                    }
                    let _ = warp_find(w, parent, &v, m_act, JumpKind::Multiple);
                    v = v.add_scalar(stride_v);
                    w.alu(1);
                }
            });
        }
        if last {
            break;
        }
        seg_start = seg_end;
    }

    // Final flatten (labels must be roots).
    let stride_v = total_v as u32;
    gpu.launch_warps("groute_final", total_v, |w| {
        let mut v = w.thread_ids();
        loop {
            let m_act = w.launch_mask() & v.lt_scalar(nu);
            if m_act.none() {
                return;
            }
            let root = warp_walk(w, parent, &v, m_act);
            w.store(parent, &v, &root, m_act & root.ne_mask(&v));
            v = v.add_scalar(stride_v);
            w.alu(1);
        }
    });

    let labels = if n == 0 {
        Vec::new()
    } else {
        gpu.download(parent)[..n].to_vec()
    };
    let _ = Lanes::default();
    GpuBaselineRun {
        result: CcResult::new(labels),
        kernels: gpu.kernel_stats()[kernels_before..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::test_support::test_graphs;
    use ecl_gpu_sim::DeviceProfile;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let mut gpu = Gpu::new(DeviceProfile::test_tiny());
            let run = run(&mut gpu, &g);
            run.result
                .verify(&g)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn segment_count_tracks_density() {
        // Denser graph → more segments → more kernel launches.
        let sparse = ecl_graph::generate::gnm_random(400, 500, 1);
        let dense = ecl_graph::generate::gnm_random(400, 4000, 1);
        let mut g1 = Gpu::new(DeviceProfile::test_tiny());
        let mut g2 = Gpu::new(DeviceProfile::test_tiny());
        let k_sparse = run(&mut g1, &sparse).kernels.len();
        let k_dense = run(&mut g2, &dense).kernels.len();
        assert!(k_dense > k_sparse, "dense {k_dense} vs sparse {k_sparse}");
    }

    #[test]
    fn labels_are_roots() {
        let g = ecl_graph::generate::rmat(9, 8, ecl_graph::generate::RmatParams::GALOIS, 7);
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let run = run(&mut gpu, &g);
        for (v, &l) in run.result.labels.iter().enumerate() {
            assert_eq!(run.result.labels[l as usize], l, "vertex {v}");
        }
    }
}
