//! IrGL's connected components (Pai & Pingali, OOPSLA 2016), as described
//! in the paper's §2: the algorithm is Soman's, but the code is
//! auto-generated from a high-level specification. The generated code
//! does not hand-fuse passes: hooking re-derives both representatives
//! every iteration over the *full* edge list (no edge marking), and the
//! convergence check is a separate kernel — modeling the constant-factor
//! overheads the paper measures (IrGL sits between Soman and Gunrock).

use super::{upload_edge_list, GpuBaselineRun};
use ecl_cc::gpu::warp_ops::{warp_find, warp_walk};
use ecl_cc::CcResult;
use ecl_gpu_sim::{Gpu, Lanes};
use ecl_graph::CsrGraph;
use ecl_unionfind::concurrent::JumpKind;

/// Runs IrGL-style CC.
pub fn run(gpu: &mut Gpu, g: &CsrGraph) -> GpuBaselineRun {
    let n = g.num_vertices();
    let kernels_before = gpu.kernel_stats().len();
    let (src, dst, m) = upload_edge_list(gpu, g);
    let parent = gpu.alloc_from(&(0..n as u32).collect::<Vec<_>>());
    let changed = gpu.alloc(1);
    // The generated pipeline is unfused: a condition pass materializes
    // each edge's liveness, then the apply pass re-reads it.
    let live = gpu.alloc(m.max(1));

    let nu = n as u32;
    let mu = m as u32;
    let total_v = gpu.suggested_threads(n.max(1));
    let total_e = gpu.suggested_threads(m.max(1));

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        gpu.upload(changed, &[0]);

        // Condition pass: the generated code has no edge marking, so every
        // iteration rescans the *full* edge list, re-derives both
        // representatives, and materializes each edge's liveness
        // (Soman's hand-written code fuses this into the hook and skips
        // finished edges — the unfused rescan is IrGL's constant-factor
        // cost).
        let stride = total_e as u32;
        gpu.launch_warps("irgl_cond", total_e, |w| {
            let mut e = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & e.lt_scalar(mu);
                if m_act.none() {
                    return;
                }
                let u = w.load(src, &e, m_act);
                let v = w.load(dst, &e, m_act);
                // Parents are representatives after the jump pass.
                let ru = w.load(parent, &u, m_act);
                let rv = w.load(parent, &v, m_act);
                let diff = m_act & ru.ne_mask(&rv);
                let mut f = Lanes::splat(0);
                f.assign_masked(&Lanes::splat(1), diff);
                w.store(live, &e, &f, m_act);
                e = e.add_scalar(stride);
                w.alu(2);
            }
        });

        // Apply pass: hook the live edges (re-reading their endpoints and
        // representatives — nothing was kept in registers across the
        // operator boundary).
        gpu.launch_warps("irgl_hook", total_e, |w| {
            let mut e = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & e.lt_scalar(mu);
                if m_act.none() {
                    return;
                }
                let f = w.load(live, &e, m_act);
                let diff = m_act & f.eq_mask(&Lanes::splat(1));
                if diff.any() {
                    let u = w.load(src, &e, diff);
                    let v = w.load(dst, &e, diff);
                    let ru = w.load(parent, &u, diff);
                    let rv = w.load(parent, &v, diff);
                    // Root-checked SV hooking (the algorithm the
                    // specification encodes).
                    let hi = ru.zip(&rv, u32::max);
                    let lo = ru.zip(&rv, u32::min);
                    let ph = w.load(parent, &hi, diff);
                    let is_root = diff & ph.eq_mask(&hi);
                    if is_root.any() {
                        let _ = w.atomic_min(parent, &hi, &lo, is_root);
                    }
                    w.store(changed, &Lanes::splat(0), &Lanes::splat(1), diff);
                }
                e = e.add_scalar(stride);
                w.alu(3);
            }
        });

        // Separate (unfused) multiple-pointer-jumping pass.
        let stride_v = total_v as u32;
        gpu.launch_warps("irgl_jump", total_v, |w| {
            let mut v = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & v.lt_scalar(nu);
                if m_act.none() {
                    return;
                }
                let _ = warp_find(w, parent, &v, m_act, JumpKind::Multiple);
                v = v.add_scalar(stride_v);
                w.alu(1);
            }
        });

        // Separate convergence-check kernel (the generated pipeline's
        // explicit "pipe" barrier — costs a launch even when trivial).
        gpu.launch_warps("irgl_check", 32, |w| {
            let _ = w.load_uniform(changed, 0);
        });

        if gpu.download(changed)[0] == 0 {
            break;
        }
        assert!(iterations <= n + 2, "IrGL failed to converge");
    }

    let stride_v = total_v as u32;
    gpu.launch_warps("irgl_final", total_v, |w| {
        let mut v = w.thread_ids();
        loop {
            let m_act = w.launch_mask() & v.lt_scalar(nu);
            if m_act.none() {
                return;
            }
            let root = warp_walk(w, parent, &v, m_act);
            w.store(parent, &v, &root, m_act & root.ne_mask(&v));
            v = v.add_scalar(stride_v);
            w.alu(1);
        }
    });

    let labels = if n == 0 {
        Vec::new()
    } else {
        gpu.download(parent)[..n].to_vec()
    };
    GpuBaselineRun {
        result: CcResult::new(labels),
        kernels: gpu.kernel_stats()[kernels_before..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::test_support::test_graphs;
    use ecl_gpu_sim::DeviceProfile;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let mut gpu = Gpu::new(DeviceProfile::test_tiny());
            let run = run(&mut gpu, &g);
            run.result
                .verify(&g)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn does_more_work_than_soman() {
        // No edge marking → every iteration rescans all edges → more
        // cycles than Soman on iteration-heavy inputs.
        let g = ecl_graph::generate::path(600);
        let mut g1 = Gpu::new(DeviceProfile::test_tiny());
        let mut g2 = Gpu::new(DeviceProfile::test_tiny());
        let irgl = run(&mut g1, &g);
        let soman = crate::gpu::soman::run(&mut g2, &g);
        assert!(
            irgl.total_cycles() > soman.total_cycles(),
            "irgl {} vs soman {}",
            irgl.total_cycles(),
            soman.total_cycles()
        );
    }

    #[test]
    fn labels_are_roots() {
        let g = ecl_graph::generate::kronecker(9, 6, 3);
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let run = run(&mut gpu, &g);
        for (v, &l) in run.result.labels.iter().enumerate() {
            assert_eq!(run.result.labels[l as usize], l, "vertex {v}");
        }
    }
}
