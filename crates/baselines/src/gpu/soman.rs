//! Soman et al.'s GPU connected components (IPDPSW 2010), as described in
//! the paper's §2: iterated Shiloach–Vishkin with three improvements —
//! hooking operates on the *representatives* of the edge endpoints, edges
//! whose endpoints are already connected are marked and skipped in later
//! iterations, and a single **multiple pointer jumping** pass flattens all
//! paths after each hooking round.

use super::{upload_edge_list, GpuBaselineRun};
use ecl_cc::gpu::warp_ops::{warp_find, warp_walk};
use ecl_cc::CcResult;
use ecl_gpu_sim::{Gpu, Lanes, LANES};
use ecl_graph::CsrGraph;
use ecl_unionfind::concurrent::JumpKind;

/// Runs Soman-style CC; returns the labeling and all kernel stats.
pub fn run(gpu: &mut Gpu, g: &CsrGraph) -> GpuBaselineRun {
    let n = g.num_vertices();
    let kernels_before = gpu.kernel_stats().len();
    let (src, dst, m) = upload_edge_list(gpu, g);
    let parent = gpu.alloc_from(&(0..n as u32).collect::<Vec<_>>());
    let done = gpu.alloc(m.max(1));
    let changed = gpu.alloc(1);

    let nu = n as u32;
    let mu = m as u32;
    let total_v = gpu.suggested_threads(n.max(1));
    let total_e = gpu.suggested_threads(m.max(1));

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        gpu.upload(changed, &[0]);

        // --- hooking over unmarked edges ---------------------------------
        let stride = total_e as u32;
        gpu.launch_warps("soman_hook", total_e, |w| {
            let mut e = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & e.lt_scalar(mu);
                if m_act.none() {
                    return;
                }
                let flag = w.load(done, &e, m_act);
                let live = m_act & flag.eq_mask(&Lanes::splat(0));
                if live.any() {
                    let u = w.load(src, &e, live);
                    let v = w.load(dst, &e, live);
                    let pu = w.load(parent, &u, live);
                    let pv = w.load(parent, &v, live);
                    let same = live & pu.eq_mask(&pv);
                    // Mark connected edges done; they are skipped next round.
                    w.store(done, &e, &Lanes::splat(1), same);
                    let diff = live & !same;
                    if diff.any() {
                        // SV hooking rule (§2): "if the parent with the
                        // higher ID is a representative, it is made to
                        // point to the other parent" — the root check
                        // costs an extra load, and edges whose higher
                        // parent is mid-path wait for a later iteration.
                        let hi = pu.zip(&pv, u32::max);
                        let lo = pu.zip(&pv, u32::min);
                        let ph = w.load(parent, &hi, diff);
                        let is_root = diff & ph.eq_mask(&hi);
                        if is_root.any() {
                            let _ = w.atomic_min(parent, &hi, &lo, is_root);
                        }
                        w.store(changed, &Lanes::splat(0), &Lanes::splat(1), diff);
                    }
                    w.alu(4);
                }
                e = e.add_scalar(stride);
                w.alu(1);
            }
        });

        // --- multiple pointer jumping over all vertices -------------------
        let stride_v = total_v as u32;
        gpu.launch_warps("soman_jump", total_v, |w| {
            let mut v = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & v.lt_scalar(nu);
                if m_act.none() {
                    return;
                }
                let _ = warp_find(w, parent, &v, m_act, JumpKind::Multiple);
                v = v.add_scalar(stride_v);
                w.alu(1);
            }
        });

        if gpu.download(changed)[0] == 0 {
            break;
        }
        assert!(iterations <= n + 2, "Soman failed to converge");
    }

    // Final flatten so every label is a root (jump already flattened, but
    // a last pass guards against the final iteration's hooks).
    let stride_v = total_v as u32;
    gpu.launch_warps("soman_final", total_v, |w| {
        let mut v = w.thread_ids();
        loop {
            let m_act = w.launch_mask() & v.lt_scalar(nu);
            if m_act.none() {
                return;
            }
            let root = warp_walk(w, parent, &v, m_act);
            w.store(parent, &v, &root, m_act & root.ne_mask(&v));
            v = v.add_scalar(stride_v);
            w.alu(1);
        }
    });

    let labels = if n == 0 {
        Vec::new()
    } else {
        gpu.download(parent)[..n].to_vec()
    };
    let _ = LANES;
    GpuBaselineRun {
        result: CcResult::new(labels),
        kernels: gpu.kernel_stats()[kernels_before..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::test_support::test_graphs;
    use ecl_gpu_sim::DeviceProfile;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let mut gpu = Gpu::new(DeviceProfile::test_tiny());
            let run = run(&mut gpu, &g);
            run.result
                .verify(&g)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn labels_are_roots() {
        let g = ecl_graph::generate::gnm_random(300, 800, 3);
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let run = run(&mut gpu, &g);
        for (v, &l) in run.result.labels.iter().enumerate() {
            assert_eq!(run.result.labels[l as usize], l, "vertex {v}");
        }
    }

    #[test]
    fn iterates_hook_jump_rounds() {
        // SV iterates (hook, jump) rounds to a fixpoint: at least two
        // rounds plus the final flatten must appear, and the whole run
        // must cost more cycles than single-pass ECL-CC.
        let g = ecl_graph::generate::path(512);
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let soman = run(&mut gpu, &g);
        let hooks = soman
            .kernels
            .iter()
            .filter(|k| k.name == "soman_hook")
            .count();
        assert!(hooks >= 2, "expected ≥ 2 hooking rounds, got {hooks}");
        let mut gpu2 = Gpu::new(DeviceProfile::test_tiny());
        let (ecl, s) = ecl_cc::gpu::run(&mut gpu2, &g, &ecl_cc::EclConfig::default());
        ecl.verify(&g).unwrap();
        let ecl_cycles: u64 = s.kernels.iter().map(|k| k.cycles).sum();
        assert!(
            soman.total_cycles() > ecl_cycles,
            "soman {} vs ecl {}",
            soman.total_cycles(),
            ecl_cycles
        );
    }

    #[test]
    fn deterministic() {
        let g = ecl_graph::generate::rmat(8, 8, ecl_graph::generate::RmatParams::GALOIS, 5);
        let mut g1 = Gpu::new(DeviceProfile::test_tiny());
        let mut g2 = Gpu::new(DeviceProfile::test_tiny());
        let a = run(&mut g1, &g);
        let b = run(&mut g2, &g);
        assert_eq!(a.result.labels, b.result.labels);
        assert_eq!(a.total_cycles(), b.total_cycles());
    }
}
