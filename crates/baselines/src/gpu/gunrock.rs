//! Gunrock's connected components (Wang et al., PPoPP 2016), as described
//! in the paper's §2: a variant of Soman's approach where, instead of
//! processing all vertices and edges every iteration, **filter operators**
//! compact the edge frontier (dropping edges whose endpoints share a
//! representative) and the vertex frontier (dropping representatives)
//! after each round. The filters keep the working set shrinking but cost a
//! full scatter/compact pass of memory traffic per iteration — which is
//! why Gunrock trails the field in the paper's Fig. 11/12.

use super::{upload_edge_list, GpuBaselineRun};
use ecl_cc::CcResult;
use ecl_gpu_sim::{Gpu, Lanes};
use ecl_graph::CsrGraph;

/// Runs Gunrock-style CC.
pub fn run(gpu: &mut Gpu, g: &CsrGraph) -> GpuBaselineRun {
    let n = g.num_vertices();
    let kernels_before = gpu.kernel_stats().len();
    let (src0, dst0, m) = upload_edge_list(gpu, g);
    let parent = gpu.alloc_from(&(0..n as u32).collect::<Vec<_>>());
    // Double-buffered *index* frontier: Gunrock frontiers hold edge IDs,
    // so every operator dereferences the CSR-derived edge arrays through
    // the frontier — coalesced on the first iteration, scattered once the
    // filter has compacted it.
    let eidx_a = gpu.alloc_from(&(0..m as u32).collect::<Vec<_>>());
    let eidx_b = gpu.alloc(m.max(1));
    let cursor = gpu.alloc(1);
    // The filter operator is unfused: a flag pass marks survivors, then a
    // compaction pass scatters them (Gunrock's scan-based filter).
    let flags = gpu.alloc(m.max(1));
    // Double-buffered vertex frontier for the filter-based pointer
    // jumping (Gunrock iterates *single* jumps, filtering out vertices
    // that have reached a representative).
    let vf_a = gpu.alloc(n.max(1));
    let vf_b = gpu.alloc(n.max(1));
    let vcursor = gpu.alloc(1);

    let nu = n as u32;
    let total_v = gpu.suggested_threads(n.max(1));

    let mut frontier = (eidx_a, m);
    let mut spare = eidx_b;
    let mut iterations = 0usize;
    while frontier.1 > 0 {
        iterations += 1;
        assert!(iterations <= n + 2, "Gunrock failed to converge");
        let (eidx, fm) = frontier;
        let fmu = fm as u32;
        let total_e = gpu.suggested_threads(fm);
        let stride = total_e as u32;

        // --- hook: two passes over the live frontier ---------------------
        // Gunrock implements Soman's *alternating* hooking: a max-hook
        // pass (larger representative under smaller) followed by a
        // min-hook pass on the edges the first could not hook, each with
        // the root check. Two sweeps of the edge frontier per iteration.
        for hook_pass in ["gunrock_hook_max", "gunrock_hook_min"] {
            gpu.launch_warps(hook_pass, total_e, |w| {
                let mut e = w.thread_ids();
                loop {
                    let m_act = w.launch_mask() & e.lt_scalar(fmu);
                    if m_act.none() {
                        return;
                    }
                    let eid = w.load(eidx, &e, m_act);
                    let u = w.load(src0, &eid, m_act);
                    let v = w.load(dst0, &eid, m_act);
                    let pu = w.load(parent, &u, m_act);
                    let pv = w.load(parent, &v, m_act);
                    let diff = m_act & pu.ne_mask(&pv);
                    if diff.any() {
                        let hi = pu.zip(&pv, u32::max);
                        let lo = pu.zip(&pv, u32::min);
                        let ph = w.load(parent, &hi, diff);
                        let is_root = diff & ph.eq_mask(&hi);
                        if is_root.any() {
                            let _ = w.atomic_min(parent, &hi, &lo, is_root);
                        }
                    }
                    e = e.add_scalar(stride);
                    w.alu(3);
                }
            });
        }

        // --- filter-based pointer jumping --------------------------------
        // Gunrock iterates *single* pointer jumps over a vertex frontier,
        // filtering out vertices whose parent has become a representative
        // ("after multiple pointer jumping, it removes all vertices that
        // are representatives") — one jump pass + one compaction pass per
        // level until every path is flat.
        let stride_v = total_v as u32;
        gpu.launch_warps("gunrock_vinit", total_v, |w| {
            let mut v = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & v.lt_scalar(nu);
                if m_act.none() {
                    return;
                }
                w.store(vf_a, &v, &v, m_act);
                v = v.add_scalar(stride_v);
                w.alu(1);
            }
        });
        let mut vfront = vf_a;
        let mut vspare = vf_b;
        let mut vcount = n as u32;
        let mut pj_rounds = 0usize;
        while vcount > 0 {
            pj_rounds += 1;
            assert!(pj_rounds <= n + 2, "Gunrock pointer jumping diverged");
            gpu.upload(vcursor, &[0]);
            let total_f = gpu.suggested_threads(vcount as usize);
            let stride_f = total_f as u32;
            let (vf, vs) = (vfront, vspare);
            gpu.launch_warps("gunrock_pjump", total_f, |w| {
                let mut i = w.thread_ids();
                loop {
                    let m_act = w.launch_mask() & i.lt_scalar(vcount);
                    if m_act.none() {
                        return;
                    }
                    let v = w.load(vf, &i, m_act);
                    let p = w.load(parent, &v, m_act);
                    let gp = w.load(parent, &p, m_act);
                    // Single jump: parent[v] = grandparent.
                    w.store(parent, &v, &gp, m_act & p.ne_mask(&gp));
                    // Keep v while its new parent is still mid-path.
                    let pgp = w.load(parent, &gp, m_act);
                    let keep = m_act & gp.ne_mask(&pgp);
                    if keep.any() {
                        let slot = w.atomic_add(vcursor, &Lanes::splat(0), &Lanes::splat(1), keep);
                        w.store(vs, &slot, &v, keep);
                    }
                    i = i.add_scalar(stride_f);
                    w.alu(3);
                }
            });
            vcount = gpu.download(vcursor)[0];
            std::mem::swap(&mut vfront, &mut vspare);
            // The vertex filter also compacts by scan: one more sweep
            // over the surviving frontier per jump level.
            if vcount > 0 {
                let total_s = gpu.suggested_threads(vcount as usize);
                let stride_s = total_s as u32;
                let vf = vfront;
                let vc = vcount;
                gpu.launch_warps("gunrock_vscan", total_s, |w| {
                    let mut i = w.thread_ids();
                    loop {
                        let m_act = w.launch_mask() & i.lt_scalar(vc);
                        if m_act.none() {
                            return;
                        }
                        let v = w.load(vf, &i, m_act);
                        w.store(vf, &i, &v, m_act);
                        i = i.add_scalar(stride_s);
                        w.alu(3);
                    }
                });
            }
        }

        // --- filter pass 1: flag edges whose endpoints still differ ------
        gpu.launch_warps("gunrock_flag", total_e, |w| {
            let mut e = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & e.lt_scalar(fmu);
                if m_act.none() {
                    return;
                }
                let eid = w.load(eidx, &e, m_act);
                let u = w.load(src0, &eid, m_act);
                let v = w.load(dst0, &eid, m_act);
                let pu = w.load(parent, &u, m_act);
                let pv = w.load(parent, &v, m_act);
                let keep = m_act & pu.ne_mask(&pv);
                let mut f = Lanes::splat(0);
                f.assign_masked(&Lanes::splat(1), keep);
                w.store(flags, &e, &f, m_act);
                e = e.add_scalar(stride);
                w.alu(2);
            }
        });

        // --- filter pass 2: exclusive scan over the flags -----------------
        // Gunrock compacts with a scan, not an atomic counter: the scan is
        // two more sweeps over the frontier (up-sweep reduce, down-sweep
        // scatter of partial sums). The simulator charges them as one
        // read sweep and one read+write sweep over the flag array.
        gpu.launch_warps("gunrock_scan", total_e, |w| {
            let mut e = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & e.lt_scalar(fmu);
                if m_act.none() {
                    return;
                }
                let f = w.load(flags, &e, m_act);
                w.alu(2); // up-sweep adds
                w.store(flags, &e, &f, m_act); // down-sweep writes offsets
                e = e.add_scalar(stride);
                w.alu(2);
            }
        });

        // --- filter pass 3: compact the flagged edge IDs -------------------
        gpu.upload(cursor, &[0]);
        let nidx = spare;
        gpu.launch_warps("gunrock_filter", total_e, |w| {
            let mut e = w.thread_ids();
            loop {
                let m_act = w.launch_mask() & e.lt_scalar(fmu);
                if m_act.none() {
                    return;
                }
                let f = w.load(flags, &e, m_act);
                let keep = m_act & f.eq_mask(&Lanes::splat(1));
                if keep.any() {
                    let eid = w.load(eidx, &e, keep);
                    let slot = w.atomic_add(cursor, &Lanes::splat(0), &Lanes::splat(1), keep);
                    w.store(nidx, &slot, &eid, keep);
                }
                e = e.add_scalar(stride);
                w.alu(2);
            }
        });
        let kept = gpu.download(cursor)[0] as usize;
        spare = eidx;
        frontier = (nidx, kept);
    }

    let labels = if n == 0 {
        Vec::new()
    } else {
        gpu.download(parent)[..n].to_vec()
    };
    GpuBaselineRun {
        result: CcResult::new(labels),
        kernels: gpu.kernel_stats()[kernels_before..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::test_support::test_graphs;
    use ecl_gpu_sim::DeviceProfile;

    #[test]
    fn verifies_on_all_shapes() {
        for (name, g) in test_graphs() {
            let mut gpu = Gpu::new(DeviceProfile::test_tiny());
            let run = run(&mut gpu, &g);
            run.result
                .verify(&g)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn filter_launches_appear() {
        let g = ecl_graph::generate::path(256);
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let run = run(&mut gpu, &g);
        assert!(run.kernels.iter().any(|k| k.name == "gunrock_filter"));
    }

    #[test]
    fn labels_are_roots() {
        let g = ecl_graph::generate::gnm_random(300, 900, 5);
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let run = run(&mut gpu, &g);
        for (v, &l) in run.result.labels.iter().enumerate() {
            assert_eq!(run.result.labels[l as usize], l, "vertex {v}");
        }
    }
}
