//! Reimplementations of every connected-components code the paper
//! compares against (Table 1), each built from its published description
//! on the same substrates as ECL-CC so the comparisons measure the
//! *algorithms*:
//!
//! * **GPU codes** (on the SIMT simulator): [`gpu::soman`] (Shiloach–
//!   Vishkin with edge marking and multiple pointer jumping),
//!   [`gpu::groute`] (segmented atomic hooking), [`gpu::gunrock`]
//!   (filter-based SV), [`gpu::irgl`] (compiler-generated SV: unfused
//!   passes, no edge marking).
//! * **Parallel CPU codes**: [`cpu::label_prop`] (Ligra+ Comp),
//!   [`cpu::bfscc`] (Ligra+ BFSCC), [`cpu::multistep`], [`cpu::crono`]
//!   (SV, including its n·dmax memory blow-up failure mode),
//!   [`cpu::galois_async`] (asynchronous union-find), [`cpu::ndhybrid`]
//!   (low-diameter-decomposition hybrid).
//! * **Serial CPU codes**: [`serial::dfs_cc`] (Boost-style),
//!   [`serial::bfs_cc`] (Lemon-style), [`serial::igraph_cc`],
//!   [`serial::unionfind_cc`] (Galois serial).
//!
//! Every function returns a [`ecl_cc::CcResult`] whose partition is
//! verified against the BFS reference in the test suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod gpu;
pub mod serial;
