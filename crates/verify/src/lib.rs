//! Certifying verification for connected-components results.
//!
//! Every CC implementation in the workspace returns a per-vertex label
//! array. This crate checks such an array against the input graph in
//! O(n + m) with its own, independent serial BFS as ground truth — it
//! shares no code with the algorithms under test, so a bug in the
//! lock-free union-find (or in the GPU simulator underneath it) cannot
//! also hide the evidence.
//!
//! The checker is *certifying* in the Mehlhorn sense: a passing run
//! returns a [`Certificate`] stating the facts that were established,
//! and a failing run returns a [`VerifyError`] pinpointing a concrete
//! witness (an edge whose endpoints disagree, a label that is not its
//! own representative, a parent pointer forming a cycle, …) that a human
//! or a test harness can re-check directly.
//!
//! Three layers of checks:
//!
//! * [`certify`] — labels form a valid partition into connected
//!   components (edge consistency + representative fixpoints + component
//!   count against BFS ground truth).
//! * [`certify_canonical`] — additionally, every label is the *minimum*
//!   vertex ID of its component (the invariant of the paper's min-wins
//!   hooking family).
//! * [`validate_forest`] / [`validate_star`] — structural checks on raw
//!   union-find parent arrays: an acyclic forest (legal any time after
//!   the compute phase) and a perfect star (required after finalize).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ecl_graph::{CsrGraph, Vertex};
use std::fmt;

/// A concrete witness of an invalid labeling or parent array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// The label array's length differs from the vertex count.
    LengthMismatch {
        /// Vertices in the graph.
        expected: usize,
        /// Labels supplied.
        got: usize,
    },
    /// A label names a vertex outside the graph.
    LabelOutOfRange {
        /// The offending vertex.
        vertex: Vertex,
        /// Its out-of-range label.
        label: Vertex,
    },
    /// `labels[labels[v]] != labels[v]`: a label that is not its own
    /// representative, so "label" does not name a component.
    NotRepresentative {
        /// The offending vertex.
        vertex: Vertex,
        /// Its label.
        label: Vertex,
        /// The label of the label (≠ `label`).
        label_of_label: Vertex,
    },
    /// An edge whose endpoints carry different labels (the labeling
    /// splits a connected component).
    EdgeSplit {
        /// Edge endpoint.
        u: Vertex,
        /// Edge endpoint.
        v: Vertex,
        /// `labels[u]`.
        label_u: Vertex,
        /// `labels[v]`.
        label_v: Vertex,
    },
    /// The number of distinct labels disagrees with the BFS ground truth
    /// (with edge consistency already established, a smaller count means
    /// separate components were merged).
    ComponentCountMismatch {
        /// Count from the independent BFS.
        expected: usize,
        /// Distinct labels found.
        got: usize,
    },
    /// A vertex whose label is not the minimum vertex ID of its
    /// component (only checked by [`certify_canonical`]).
    NotCanonical {
        /// The offending vertex.
        vertex: Vertex,
        /// Its label.
        label: Vertex,
        /// The true component minimum.
        component_min: Vertex,
    },
    /// A parent entry naming a vertex outside the array.
    ParentOutOfRange {
        /// The offending vertex.
        vertex: Vertex,
        /// Its out-of-range parent.
        parent: Vertex,
    },
    /// Following parent pointers from `vertex` never reaches a root.
    ParentCycle {
        /// A vertex on (or leading into) the cycle.
        vertex: Vertex,
    },
    /// `parent[parent[v]] != parent[v]` after finalize: the forest is
    /// not a perfect star.
    NotStar {
        /// The offending vertex.
        vertex: Vertex,
        /// Its parent.
        parent: Vertex,
        /// The parent's parent (≠ `parent`).
        grandparent: Vertex,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            VerifyError::LengthMismatch { expected, got } => {
                write!(f, "label array has {got} entries for {expected} vertices")
            }
            VerifyError::LabelOutOfRange { vertex, label } => {
                write!(f, "vertex {vertex} carries out-of-range label {label}")
            }
            VerifyError::NotRepresentative {
                vertex,
                label,
                label_of_label,
            } => write!(
                f,
                "label {label} of vertex {vertex} is not a representative \
                 (labels[{label}] = {label_of_label})"
            ),
            VerifyError::EdgeSplit {
                u,
                v,
                label_u,
                label_v,
            } => write!(
                f,
                "edge ({u}, {v}) crosses labels: {label_u} vs {label_v} — a component was split"
            ),
            VerifyError::ComponentCountMismatch { expected, got } => write!(
                f,
                "{got} distinct labels but BFS ground truth finds {expected} components"
            ),
            VerifyError::NotCanonical {
                vertex,
                label,
                component_min,
            } => write!(
                f,
                "vertex {vertex} labeled {label}, but its component's minimum is {component_min}"
            ),
            VerifyError::ParentOutOfRange { vertex, parent } => {
                write!(f, "parent[{vertex}] = {parent} is out of range")
            }
            VerifyError::ParentCycle { vertex } => {
                write!(f, "parent pointers from vertex {vertex} form a cycle")
            }
            VerifyError::NotStar {
                vertex,
                parent,
                grandparent,
            } => write!(
                f,
                "parent[{vertex}] = {parent} is not a root (parent[{parent}] = {grandparent}); \
                 forest is not a star"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// The facts established by a passing [`certify`] run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// Vertices checked.
    pub num_vertices: usize,
    /// Undirected edges whose endpoint labels were compared.
    pub edges_checked: usize,
    /// Components found (equal for the labeling and the BFS ground
    /// truth).
    pub num_components: usize,
    /// Whether the stronger canonical (component-minimum) invariant was
    /// also established.
    pub canonical: bool,
}

/// Certifies that `labels` is a valid connected-components labeling of
/// `g`: every edge's endpoints carry equal labels, every used label is
/// its own representative, and the component count matches an
/// independent serial BFS. O(n + m) time, O(n) space.
pub fn certify(g: &CsrGraph, labels: &[Vertex]) -> Result<Certificate, VerifyError> {
    certify_inner(g, labels, false)
}

/// [`certify`], plus the min-wins family's canonical invariant: every
/// vertex's label is the minimum vertex ID in its component.
pub fn certify_canonical(g: &CsrGraph, labels: &[Vertex]) -> Result<Certificate, VerifyError> {
    certify_inner(g, labels, true)
}

fn certify_inner(
    g: &CsrGraph,
    labels: &[Vertex],
    canonical: bool,
) -> Result<Certificate, VerifyError> {
    let n = g.num_vertices();
    if labels.len() != n {
        return Err(VerifyError::LengthMismatch {
            expected: n,
            got: labels.len(),
        });
    }

    // Labels in range, and each used label a fixpoint of the labeling —
    // so distinct labels biject with the classes they name.
    for v in 0..n {
        let l = labels[v];
        if (l as usize) >= n {
            return Err(VerifyError::LabelOutOfRange {
                vertex: v as Vertex,
                label: l,
            });
        }
        let ll = labels[l as usize];
        if ll != l {
            return Err(VerifyError::NotRepresentative {
                vertex: v as Vertex,
                label: l,
                label_of_label: ll,
            });
        }
    }

    // Edge consistency: labels are constant on connected components.
    let mut edges_checked = 0usize;
    for (u, v) in g.edges() {
        let (lu, lv) = (labels[u as usize], labels[v as usize]);
        if lu != lv {
            return Err(VerifyError::EdgeSplit {
                u,
                v,
                label_u: lu,
                label_v: lv,
            });
        }
        edges_checked += 1;
    }

    // Independent ground truth: serial BFS component count (and minima
    // for the canonical check). With edge consistency established, label
    // classes can only be unions of whole components, so count equality
    // proves the partitions are identical.
    let truth = bfs_ground_truth(g);
    let distinct = labels
        .iter()
        .enumerate()
        .filter(|&(v, &l)| l as usize == v)
        .count();
    if distinct != truth.num_components {
        return Err(VerifyError::ComponentCountMismatch {
            expected: truth.num_components,
            got: distinct,
        });
    }

    if canonical {
        for (v, (&l, &min)) in labels.iter().zip(&truth.component_min).enumerate() {
            if l != min {
                return Err(VerifyError::NotCanonical {
                    vertex: v as Vertex,
                    label: l,
                    component_min: min,
                });
            }
        }
    }

    Ok(Certificate {
        num_vertices: n,
        edges_checked,
        num_components: truth.num_components,
        canonical,
    })
}

struct GroundTruth {
    num_components: usize,
    /// Minimum vertex ID of each vertex's component.
    component_min: Vec<Vertex>,
}

/// Serial BFS over the CSR graph: intentionally the most boring possible
/// implementation, independent of `ecl_graph::stats` and every algorithm
/// under test.
fn bfs_ground_truth(g: &CsrGraph) -> GroundTruth {
    let n = g.num_vertices();
    let mut component_min = vec![u32::MAX; n];
    let mut queue: Vec<Vertex> = Vec::new();
    let mut num_components = 0usize;
    for start in 0..n {
        if component_min[start] != u32::MAX {
            continue;
        }
        // Vertices are visited in increasing start order, so `start` is
        // its component's minimum.
        num_components += 1;
        let min = start as Vertex;
        component_min[start] = min;
        queue.clear();
        queue.push(start as Vertex);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &w in g.neighbors(u) {
                if component_min[w as usize] == u32::MAX {
                    component_min[w as usize] = min;
                    queue.push(w);
                }
            }
        }
    }
    GroundTruth {
        num_components,
        component_min,
    }
}

/// Validates that `parents` is an acyclic forest: every entry in range
/// and every chain of parent pointers reaching a root (`parent[r] == r`).
/// This is the legal state of the union-find array at *any* point after
/// initialization — the compute phase may leave arbitrary tree depths.
/// O(n) via path memoization. Returns the number of roots.
pub fn validate_forest(parents: &[Vertex]) -> Result<usize, VerifyError> {
    let n = parents.len();
    // 0 = unvisited, 1 = on the current path, 2 = proven to reach a root.
    let mut state = vec![0u8; n];
    let mut path: Vec<usize> = Vec::new();
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        path.clear();
        let mut v = start;
        loop {
            let p = parents[v];
            if (p as usize) >= n {
                return Err(VerifyError::ParentOutOfRange {
                    vertex: v as Vertex,
                    parent: p,
                });
            }
            match state[v] {
                1 => {
                    return Err(VerifyError::ParentCycle {
                        vertex: v as Vertex,
                    })
                }
                2 => break,
                _ => {}
            }
            state[v] = 1;
            path.push(v);
            if p as usize == v {
                break; // root
            }
            v = p as usize;
        }
        for &u in &path {
            state[u] = 2;
        }
    }
    let roots = parents
        .iter()
        .enumerate()
        .filter(|&(v, &p)| p as usize == v)
        .count();
    Ok(roots)
}

/// Validates that `parents` is a perfect star forest — every parent is a
/// root (`parent[parent[v]] == parent[v]`) — the state finalize must
/// leave so labels can be read off in one hop. Returns the number of
/// stars (= components).
pub fn validate_star(parents: &[Vertex]) -> Result<usize, VerifyError> {
    let n = parents.len();
    let mut stars = 0usize;
    for (v, &p) in parents.iter().enumerate() {
        if (p as usize) >= n {
            return Err(VerifyError::ParentOutOfRange {
                vertex: v as Vertex,
                parent: p,
            });
        }
        let pp = parents[p as usize];
        if pp != p {
            return Err(VerifyError::NotStar {
                vertex: v as Vertex,
                parent: p,
                grandparent: pp,
            });
        }
        if p as usize == v {
            stars += 1;
        }
    }
    Ok(stars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generate;

    fn labels_of(g: &CsrGraph) -> Vec<Vertex> {
        ecl_graph::stats::reference_labels(g)
    }

    #[test]
    fn accepts_correct_labelings() {
        for g in [
            generate::path(50),
            generate::cycle(33),
            generate::disjoint_cliques(5, 6),
            generate::gnm_random(120, 300, 3),
            ecl_graph::GraphBuilder::new(0).build(),
            ecl_graph::GraphBuilder::new(7).build(),
        ] {
            let labels = labels_of(&g);
            let cert = certify_canonical(&g, &labels).expect("reference labeling must certify");
            assert_eq!(cert.num_vertices, g.num_vertices());
            assert_eq!(cert.edges_checked, g.num_edges());
            assert!(cert.canonical);
        }
    }

    #[test]
    fn rejects_wrong_length() {
        let g = generate::path(10);
        assert!(matches!(
            certify(&g, &[0; 9]),
            Err(VerifyError::LengthMismatch {
                expected: 10,
                got: 9
            })
        ));
    }

    #[test]
    fn rejects_split_component() {
        let g = generate::path(10);
        let mut labels = labels_of(&g);
        // Split the path in half: a real edge now crosses labels.
        for l in labels.iter_mut().skip(5) {
            *l = 5;
        }
        assert!(matches!(
            certify(&g, &labels),
            Err(VerifyError::EdgeSplit { .. })
        ));
    }

    #[test]
    fn rejects_merged_components() {
        let g = generate::disjoint_cliques(4, 5); // 4 cliques of 5
        let labels = vec![0; g.num_vertices()];
        // All-zero labels are edge-consistent and representative-consistent
        // but merge four components into one: only the BFS cross-check can
        // catch this.
        assert!(matches!(
            certify(&g, &labels),
            Err(VerifyError::ComponentCountMismatch {
                expected: 4,
                got: 1
            })
        ));
    }

    #[test]
    fn rejects_non_representative_labels() {
        let g = generate::path(4);
        // 1 is not a fixpoint: labels[1] = 0.
        let labels = vec![0, 0, 1, 1];
        assert!(matches!(
            certify(&g, &labels),
            Err(VerifyError::NotRepresentative { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_label() {
        let g = generate::path(3);
        assert!(matches!(
            certify(&g, &[0, 9, 0]),
            Err(VerifyError::LabelOutOfRange {
                vertex: 1,
                label: 9
            })
        ));
    }

    #[test]
    fn rejects_non_canonical_but_valid_partition() {
        let g = generate::disjoint_cliques(2, 3); // {0,1,2} and {3,4,5}
        let labels = vec![0, 0, 0, 4, 4, 4]; // valid partition, wrong minima
                                             // labels[3] = 4 and labels[4] = 4: 4 is a fixpoint, so plain
                                             // certify accepts…
        certify(&g, &labels).expect("partition itself is valid");
        // …while the canonical check pins the minimum.
        assert!(matches!(
            certify_canonical(&g, &labels),
            Err(VerifyError::NotCanonical {
                vertex: 3,
                label: 4,
                component_min: 3
            })
        ));
    }

    #[test]
    fn forest_validation() {
        // A legal mid-compute forest: chains, not stars.
        assert_eq!(validate_forest(&[0, 0, 1, 2, 4, 4]), Ok(2));
        // A perfect star set.
        assert_eq!(validate_star(&[0, 0, 0, 3, 3]), Ok(2));
        // Chains are forests but not stars.
        assert!(matches!(
            validate_star(&[0, 0, 1, 2]),
            Err(VerifyError::NotStar { .. })
        ));
        // A 2-cycle is neither.
        assert!(matches!(
            validate_forest(&[1, 0]),
            Err(VerifyError::ParentCycle { .. })
        ));
        // Out-of-range parents are caught in both.
        assert!(matches!(
            validate_forest(&[5]),
            Err(VerifyError::ParentOutOfRange { .. })
        ));
        assert!(matches!(
            validate_star(&[5]),
            Err(VerifyError::ParentOutOfRange { .. })
        ));
        // Empty arrays are trivially valid.
        assert_eq!(validate_forest(&[]), Ok(0));
        assert_eq!(validate_star(&[]), Ok(0));
    }

    #[test]
    fn error_messages_carry_witnesses() {
        let e = VerifyError::EdgeSplit {
            u: 3,
            v: 4,
            label_u: 0,
            label_v: 4,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('4'));
    }
}
