//! Simulated global memory: a flat word-addressed space with a bump
//! allocator and typed buffer handles.

/// Handle to a device buffer: a base *word* address and a length in words.
///
/// Cheap to copy; kernels index buffers by element, and the warp context
/// translates to byte addresses for the cache model. Bounds are checked on
/// every simulated access (a fault aborts the simulation with a panic,
/// standing in for a CUDA illegal-address error).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DevicePtr {
    pub(crate) base: u64,
    pub(crate) len: usize,
}

impl DevicePtr {
    /// Number of `u32` elements in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `idx` (used by the cache model).
    #[inline]
    pub(crate) fn byte_addr(&self, idx: usize) -> u64 {
        (self.base + idx as u64) * 4
    }
}

/// Flat global memory backing all device buffers.
#[derive(Debug, Default)]
pub struct GlobalMemory {
    words: Vec<u32>,
}

impl GlobalMemory {
    /// Empty memory.
    pub fn new() -> Self {
        GlobalMemory { words: Vec::new() }
    }

    /// Allocates a zero-initialized buffer of `len` words.
    pub fn alloc(&mut self, len: usize) -> DevicePtr {
        let base = self.words.len() as u64;
        self.words.resize(self.words.len() + len, 0);
        DevicePtr { base, len }
    }

    /// Allocates a buffer holding a copy of `data`.
    pub fn alloc_from(&mut self, data: &[u32]) -> DevicePtr {
        let ptr = self.alloc(data.len());
        self.words[ptr.base as usize..ptr.base as usize + data.len()].copy_from_slice(data);
        ptr
    }

    /// Host-side read of a whole buffer (no cache traffic — models a
    /// `cudaMemcpy` outside the timed region, as the paper excludes
    /// transfer time).
    pub fn download(&self, ptr: DevicePtr) -> Vec<u32> {
        self.words[ptr.base as usize..ptr.base as usize + ptr.len].to_vec()
    }

    /// Host-side write of a whole buffer.
    pub fn upload(&mut self, ptr: DevicePtr, data: &[u32]) {
        assert_eq!(data.len(), ptr.len, "upload size mismatch");
        self.words[ptr.base as usize..ptr.base as usize + ptr.len].copy_from_slice(data);
    }

    /// Raw word read with bounds check.
    #[inline]
    pub fn read(&self, ptr: DevicePtr, idx: usize) -> u32 {
        assert!(
            idx < ptr.len,
            "device read OOB: idx {idx} >= len {}",
            ptr.len
        );
        self.words[ptr.base as usize + idx]
    }

    /// Raw word write with bounds check.
    #[inline]
    pub fn write(&mut self, ptr: DevicePtr, idx: usize, v: u32) {
        assert!(
            idx < ptr.len,
            "device write OOB: idx {idx} >= len {}",
            ptr.len
        );
        self.words[ptr.base as usize + idx] = v;
    }

    /// Total allocated words.
    pub fn allocated_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_and_disjoint() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(10);
        let b = m.alloc(10);
        m.write(a, 9, 7);
        assert_eq!(m.read(b, 0), 0, "buffers must not alias");
        assert_eq!(m.read(a, 9), 7);
        assert_eq!(m.allocated_words(), 20);
    }

    #[test]
    fn upload_download_roundtrip() {
        let mut m = GlobalMemory::new();
        let data: Vec<u32> = (0..100).collect();
        let p = m.alloc_from(&data);
        assert_eq!(m.download(p), data);
        let newdata: Vec<u32> = (100..200).collect();
        m.upload(p, &newdata);
        assert_eq!(m.download(p), newdata);
    }

    #[test]
    #[should_panic(expected = "OOB")]
    fn read_oob_panics() {
        let mut m = GlobalMemory::new();
        let p = m.alloc(4);
        m.read(p, 4);
    }

    #[test]
    #[should_panic(expected = "OOB")]
    fn write_oob_panics() {
        let mut m = GlobalMemory::new();
        let p = m.alloc(4);
        m.write(p, 100, 1);
    }

    #[test]
    fn byte_addresses_are_word_scaled() {
        let mut m = GlobalMemory::new();
        let _pad = m.alloc(3);
        let p = m.alloc(4);
        assert_eq!(p.byte_addr(0), 12);
        assert_eq!(p.byte_addr(2), 20);
    }

    #[test]
    fn empty_buffer() {
        let mut m = GlobalMemory::new();
        let p = m.alloc(0);
        assert!(p.is_empty());
        assert_eq!(m.download(p), Vec::<u32>::new());
    }
}
