//! Simulated global memory: a flat word-addressed space with a bump
//! allocator and typed buffer handles.
//!
//! Words are stored as [`AtomicU32`] so the host-parallel execution mode
//! (see [`crate::ExecMode`]) can run kernel warps on real threads with
//! `atomicCAS`/`atomicAdd` mapped to real atomic read-modify-writes. All
//! orderings are `Relaxed`: CUDA global memory guarantees nothing stronger
//! between independent threads, and on the serial path a relaxed atomic on
//! one thread is exactly a plain load/store — serial behaviour is
//! bit-identical to the pre-atomic model.

use std::sync::atomic::{AtomicU32, Ordering};

/// Handle to a device buffer: a base *word* address and a length in words.
///
/// Cheap to copy; kernels index buffers by element, and the warp context
/// translates to byte addresses for the cache model. Bounds are checked on
/// every simulated access (a fault aborts the simulation with a panic,
/// standing in for a CUDA illegal-address error).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DevicePtr {
    pub(crate) base: u64,
    pub(crate) len: usize,
}

impl DevicePtr {
    /// Number of `u32` elements in the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte address of element `idx` (used by the cache model).
    #[inline]
    pub(crate) fn byte_addr(&self, idx: usize) -> u64 {
        (self.base + idx as u64) * 4
    }
}

/// Flat global memory backing all device buffers.
#[derive(Debug, Default)]
pub struct GlobalMemory {
    words: Vec<AtomicU32>,
}

impl GlobalMemory {
    /// Empty memory.
    pub fn new() -> Self {
        GlobalMemory { words: Vec::new() }
    }

    #[inline]
    fn cell(&self, ptr: DevicePtr, idx: usize, what: &str) -> &AtomicU32 {
        assert!(
            idx < ptr.len,
            "device {what} OOB: idx {idx} >= len {}",
            ptr.len
        );
        &self.words[ptr.base as usize + idx]
    }

    /// Allocates a zero-initialized buffer of `len` words.
    pub fn alloc(&mut self, len: usize) -> DevicePtr {
        let base = self.words.len() as u64;
        self.words.extend((0..len).map(|_| AtomicU32::new(0)));
        DevicePtr { base, len }
    }

    /// Allocates a buffer holding a copy of `data`.
    pub fn alloc_from(&mut self, data: &[u32]) -> DevicePtr {
        let base = self.words.len() as u64;
        self.words.extend(data.iter().map(|&w| AtomicU32::new(w)));
        DevicePtr {
            base,
            len: data.len(),
        }
    }

    /// Host-side read of a whole buffer (no cache traffic — models a
    /// `cudaMemcpy` outside the timed region, as the paper excludes
    /// transfer time).
    pub fn download(&self, ptr: DevicePtr) -> Vec<u32> {
        self.words[ptr.base as usize..ptr.base as usize + ptr.len]
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }

    /// Host-side write of a whole buffer.
    pub fn upload(&mut self, ptr: DevicePtr, data: &[u32]) {
        assert_eq!(data.len(), ptr.len, "upload size mismatch");
        for (cell, &v) in self.words[ptr.base as usize..ptr.base as usize + ptr.len]
            .iter()
            .zip(data)
        {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raw word read with bounds check.
    #[inline]
    pub fn read(&self, ptr: DevicePtr, idx: usize) -> u32 {
        self.cell(ptr, idx, "read").load(Ordering::Relaxed)
    }

    /// Raw word write with bounds check. Takes `&self`: words are atomic,
    /// so concurrent SM workers can write without aliasing UB (conflicting
    /// writes race exactly as unsynchronized CUDA stores do — some write
    /// wins, no tearing).
    #[inline]
    pub fn write(&self, ptr: DevicePtr, idx: usize, v: u32) {
        self.cell(ptr, idx, "write").store(v, Ordering::Relaxed)
    }

    /// Real `atomicCAS`: installs `new` iff the word equals `cmp`; returns
    /// the pre-operation value either way.
    #[inline]
    pub fn cas(&self, ptr: DevicePtr, idx: usize, cmp: u32, new: u32) -> u32 {
        match self.cell(ptr, idx, "cas").compare_exchange(
            cmp,
            new,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(old) | Err(old) => old,
        }
    }

    /// Real `atomicAdd` (wrapping); returns the pre-add value.
    #[inline]
    pub fn fetch_add(&self, ptr: DevicePtr, idx: usize, v: u32) -> u32 {
        self.cell(ptr, idx, "add").fetch_add(v, Ordering::Relaxed)
    }

    /// Real `atomicMin`; returns the pre-min value.
    #[inline]
    pub fn fetch_min(&self, ptr: DevicePtr, idx: usize, v: u32) -> u32 {
        self.cell(ptr, idx, "min").fetch_min(v, Ordering::Relaxed)
    }

    /// Total allocated words.
    pub fn allocated_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroed_and_disjoint() {
        let mut m = GlobalMemory::new();
        let a = m.alloc(10);
        let b = m.alloc(10);
        m.write(a, 9, 7);
        assert_eq!(m.read(b, 0), 0, "buffers must not alias");
        assert_eq!(m.read(a, 9), 7);
        assert_eq!(m.allocated_words(), 20);
    }

    #[test]
    fn upload_download_roundtrip() {
        let mut m = GlobalMemory::new();
        let data: Vec<u32> = (0..100).collect();
        let p = m.alloc_from(&data);
        assert_eq!(m.download(p), data);
        let newdata: Vec<u32> = (100..200).collect();
        m.upload(p, &newdata);
        assert_eq!(m.download(p), newdata);
    }

    #[test]
    fn rmw_primitives() {
        let mut m = GlobalMemory::new();
        let p = m.alloc_from(&[5, 10, 100]);
        assert_eq!(m.cas(p, 0, 5, 9), 5, "winning CAS returns old");
        assert_eq!(m.cas(p, 0, 5, 7), 9, "losing CAS returns current");
        assert_eq!(m.read(p, 0), 9);
        assert_eq!(m.fetch_add(p, 1, 3), 10);
        assert_eq!(m.read(p, 1), 13);
        assert_eq!(m.fetch_min(p, 2, 42), 100);
        assert_eq!(m.fetch_min(p, 2, 77), 42, "min is sticky");
        assert_eq!(m.read(p, 2), 42);
    }

    #[test]
    #[should_panic(expected = "OOB")]
    fn read_oob_panics() {
        let mut m = GlobalMemory::new();
        let p = m.alloc(4);
        m.read(p, 4);
    }

    #[test]
    #[should_panic(expected = "OOB")]
    fn write_oob_panics() {
        let mut m = GlobalMemory::new();
        let p = m.alloc(4);
        m.write(p, 100, 1);
    }

    #[test]
    fn byte_addresses_are_word_scaled() {
        let mut m = GlobalMemory::new();
        let _pad = m.alloc(3);
        let p = m.alloc(4);
        assert_eq!(p.byte_addr(0), 12);
        assert_eq!(p.byte_addr(2), 20);
    }

    #[test]
    fn empty_buffer() {
        let mut m = GlobalMemory::new();
        let p = m.alloc(0);
        assert!(p.is_empty());
        assert_eq!(m.download(p), Vec::<u32>::new());
    }
}
