//! The simulated device: memory + caches + SM cycle accounting + the
//! kernel-launch API.
//!
//! Two execution modes are supported (see [`ExecMode`]): the default
//! serial mode runs every warp on the calling thread in a deterministic
//! order and is the reference for all timing/profiling numbers; the
//! host-parallel mode runs each simulated SM's warps on a real host
//! thread for wall-clock throughput, trading shared-L2 modelling fidelity
//! for speed while preserving the simulated machine's semantics (real
//! atomics, per-SM L1s, and the modelled L2 capacity statically sliced
//! per SM so workers never contend on a lock or a cache line).

use crate::cache::{Cache, CacheStats};
use crate::error::{SimError, WatchdogAbort};
use crate::fault::{FaultPlan, FaultRng};
use crate::mem::{DevicePtr, GlobalMemory};
use crate::profile::DeviceProfile;
use crate::warp::{BlockCtx, SmView, WarpCtx};
use crate::{Lanes, LANES};

std::thread_local! {
    /// True while a `try_launch_*` call is on this thread's stack — the
    /// quiet panic hook only swallows simulator aborts raised inside one.
    /// Host-parallel SM workers set it for their own thread, so aborts
    /// raised on a worker are silenced exactly like serial ones.
    static IN_TRY_LAUNCH: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: std::sync::Once = std::sync::Once::new();

/// Installs (once, process-wide) a panic hook that suppresses the default
/// message/backtrace for panics `try_launch_*` is about to convert into
/// [`SimError`] — watchdog aborts and device OOB faults. All other panics,
/// and these same panics outside a `try_launch_*`, still reach the
/// previous hook unchanged.
fn install_quiet_abort_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let convertible = payload.is::<WatchdogAbort>()
                || payload
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("OOB"))
                || payload
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("OOB"));
            if !(convertible && IN_TRY_LAUNCH.with(|c| c.get())) {
                prev(info);
            }
        }));
    });
}

/// RAII guard for the thread-local launch flag: restores the previous
/// value even if the launch panics with a non-convertible payload.
struct TryLaunchScope {
    was: bool,
}

impl TryLaunchScope {
    fn enter() -> Self {
        install_quiet_abort_hook();
        let was = IN_TRY_LAUNCH.with(|c| c.replace(true));
        TryLaunchScope { was }
    }
}

impl Drop for TryLaunchScope {
    fn drop(&mut self) {
        IN_TRY_LAUNCH.with(|c| c.set(self.was));
    }
}

/// How kernel launches execute on the host.
///
/// * `Serial` (the default) runs every warp on the calling thread in a
///   fixed order. Cycles, cache stats, fault injection, and watchdog
///   behaviour are bit-for-bit reproducible — all timing experiments use
///   this mode.
/// * `HostParallel(workers)` runs each simulated SM's warps on real host
///   threads (`workers` of them; `0` = one per available core). Final
///   memory contents for order-independent algorithms (ECL-CC's min-wins
///   hooking) are byte-identical to serial mode. The modelled L2 is
///   statically sliced per SM, so cycle counts and cache stats do not
///   depend on the worker count or thread interleaving *unless* the
///   kernel's memory traffic itself races across SMs (CAS retry loops do);
///   they still differ from serial mode's shared-L2 numbers, so serial
///   remains the timing record. Use host-parallel for throughput:
///   `components`, `verify`, batch jobs, and large harness sweeps, where
///   every run is certified by `ecl-verify`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Deterministic single-threaded execution (reference timing mode).
    #[default]
    Serial,
    /// Multi-threaded SM execution with the given worker count
    /// (0 = available parallelism).
    HostParallel(usize),
}

impl ExecMode {
    /// Parses a CLI spec: `serial`, `parallel`, or `parallel:N`.
    pub fn parse(spec: &str) -> Result<ExecMode, String> {
        match spec.trim() {
            "serial" => Ok(ExecMode::Serial),
            "parallel" => Ok(ExecMode::HostParallel(0)),
            other => match other.strip_prefix("parallel:") {
                Some(n) => n
                    .parse::<usize>()
                    .map(ExecMode::HostParallel)
                    .map_err(|e| format!("bad worker count '{n}': {e}")),
                None => Err(format!(
                    "unknown exec mode '{other}' (expected serial, parallel, or parallel:N)"
                )),
            },
        }
    }

    /// The concrete worker count this mode runs with (1 for serial,
    /// the machine's available parallelism for `HostParallel(0)`).
    pub fn resolved_workers(&self) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::HostParallel(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ExecMode::HostParallel(n) => *n,
        }
    }

    /// Stable spec string (the inverse of [`ExecMode::parse`]), stamped
    /// into bench records and trace metadata.
    pub fn describe(&self) -> String {
        match self {
            ExecMode::Serial => "serial".to_string(),
            ExecMode::HostParallel(0) => "parallel".to_string(),
            ExecMode::HostParallel(n) => format!("parallel:{n}"),
        }
    }
}

/// Counters gathered for one kernel launch.
#[derive(Clone, Debug, Default)]
pub struct KernelStats {
    /// Kernel name as passed to the launch call.
    pub name: String,
    /// Simulated execution time: max over SMs of the cycles this launch
    /// added, plus the fixed launch overhead.
    pub cycles: u64,
    /// Warp instructions issued (ALU + one per memory operation).
    pub instructions: u64,
    /// Memory transactions that hit in L1.
    pub l1_hit_transactions: u64,
    /// Read accesses presented to the L2 (L1 read misses, write-allocate
    /// fills, and atomic reads).
    pub l2_read_accesses: u64,
    /// Write accesses presented to the L2 (L1 dirty write-backs and atomic
    /// writes).
    pub l2_write_accesses: u64,
    /// Transactions served by DRAM (L2 misses).
    pub dram_transactions: u64,
    /// Atomic operations executed.
    pub atomics: u64,
    /// Number of warps executed.
    pub warps: u64,
    /// Cycles spent in ALU instructions (including shuffles/reductions).
    pub alu_cycles: u64,
    /// Cycles spent on transactions served by the L1.
    pub l1_cycles: u64,
    /// Cycles spent on transactions served by the L2.
    pub l2_cycles: u64,
    /// Cycles spent on transactions served by DRAM.
    pub dram_cycles: u64,
    /// Cycles spent serialized on atomic operations.
    pub atomic_cycles: u64,
    /// Extra cycles injected by a memory-delay fault plan.
    pub stall_cycles: u64,
    /// Lane-level `atomicCAS` operations issued.
    pub cas_attempts: u64,
    /// CAS operations that observed a value other than their comparand —
    /// the contention signal (includes injected spurious failures).
    pub cas_failures: u64,
    /// Warp memory/atomic instructions carrying an active-lane mask.
    pub mask_ops: u64,
    /// Sum of active lanes over those instructions (occupancy numerator).
    pub active_lanes: u64,
    /// Masked instructions where all 32 lanes were active (no divergence).
    pub full_mask_ops: u64,
    /// Cycles each SM added during this launch (index = SM id).
    pub sm_cycle_deltas: Vec<u64>,
    /// L1 counters accrued by this launch (summed over SMs).
    pub l1_cache: CacheStats,
    /// L2 counters accrued by this launch.
    pub l2_cache: CacheStats,
}

impl KernelStats {
    /// Simulated time in pseudo-milliseconds on `profile`.
    pub fn ms(&self, profile: &DeviceProfile) -> f64 {
        profile.cycles_to_ms(self.cycles)
    }

    /// Mean active lanes per masked warp instruction, in [0, 32]
    /// (32.0 when nothing was masked — fully converged).
    pub fn warp_occupancy(&self) -> f64 {
        if self.mask_ops == 0 {
            crate::LANES as f64
        } else {
            self.active_lanes as f64 / self.mask_ops as f64
        }
    }

    /// Fraction of masked instructions issued with a partial mask.
    pub fn divergence_ratio(&self) -> f64 {
        if self.mask_ops == 0 {
            0.0
        } else {
            1.0 - self.full_mask_ops as f64 / self.mask_ops as f64
        }
    }

    /// Fraction of CAS operations that observed contention.
    pub fn cas_failure_ratio(&self) -> f64 {
        if self.cas_attempts == 0 {
            0.0
        } else {
            self.cas_failures as f64 / self.cas_attempts as f64
        }
    }

    /// Serializes through the workspace's shared JSON writer — the one
    /// serialization path for kernel statistics (bench `--json`, metrics
    /// export, the profile artifacts).
    pub fn to_json(&self) -> String {
        ecl_obs::json::Obj::new()
            .str("name", &self.name)
            .u64("cycles", self.cycles)
            .u64("instructions", self.instructions)
            .u64("warps", self.warps)
            .u64("l1_hit_transactions", self.l1_hit_transactions)
            .u64("l2_read_accesses", self.l2_read_accesses)
            .u64("l2_write_accesses", self.l2_write_accesses)
            .u64("dram_transactions", self.dram_transactions)
            .u64("atomics", self.atomics)
            .u64("alu_cycles", self.alu_cycles)
            .u64("l1_cycles", self.l1_cycles)
            .u64("l2_cycles", self.l2_cycles)
            .u64("dram_cycles", self.dram_cycles)
            .u64("atomic_cycles", self.atomic_cycles)
            .u64("stall_cycles", self.stall_cycles)
            .u64("cas_attempts", self.cas_attempts)
            .u64("cas_failures", self.cas_failures)
            .f64("warp_occupancy", self.warp_occupancy())
            .f64("divergence_ratio", self.divergence_ratio())
            .raw("l1_cache", &self.l1_cache.to_json())
            .raw("l2_cache", &self.l2_cache.to_json())
            .build()
    }
}

/// The L2 representation tracks the execution mode: serial keeps the
/// monolithic cache (bit-exact stats by construction); host-parallel
/// statically slices the modelled capacity into one private cache per SM,
/// so SM workers touch disjoint state and need no locking. Per-SM slicing
/// also makes parallel-mode stats deterministic for any kernel whose
/// memory behaviour does not depend on cross-SM data races: each SM's
/// slice sees exactly its own SM's (fixed) work list.
enum L2Store {
    Excl(Cache),
    PerSm(Vec<Cache>),
}

/// The simulated GPU. See the crate docs for the model.
pub struct Gpu {
    pub(crate) profile: DeviceProfile,
    pub(crate) mem: GlobalMemory,
    pub(crate) l1: Vec<Cache>,
    l2: L2Store,
    pub(crate) sm_cycles: Vec<u64>,
    pub(crate) cur: LaunchCounters,
    kernels: Vec<KernelStats>,
    pub(crate) fault: FaultPlan,
    pub(crate) fault_rng: FaultRng,
    pub(crate) watchdog: Option<u64>,
    pub(crate) launch_start_sm: Vec<u64>,
    launch_index: u64,
    exec: ExecMode,
    /// Per-launch scratch for the warp/block execution order, reused
    /// across launches to avoid a fresh allocation per kernel.
    warp_order: Vec<usize>,
    /// Per-SM item-list scratch for host-parallel launches, reused across
    /// launches so the inner `Vec` capacities survive.
    parallel_items: Vec<Vec<usize>>,
    /// Optional observability recorder; spans are emitted at launch end
    /// (never from the hot path) and only when the recorder is enabled.
    recorder: Option<ecl_obs::Recorder>,
    /// Cumulative kernel cycles, the `ts` base of the simulated timeline.
    timeline_cycles: u64,
}

/// Counters accumulated while a launch is in flight. All fields are pure
/// bookkeeping: they never influence cycle charges, cache behaviour, or
/// fault-RNG draws, so recording them cannot perturb the golden-pinned
/// serial timing record.
#[derive(Clone, Debug, Default)]
pub(crate) struct LaunchCounters {
    pub instructions: u64,
    pub l1_hits: u64,
    pub dram: u64,
    pub atomics: u64,
    pub warps: u64,
    pub alu_cycles: u64,
    pub l1_cycles: u64,
    pub l2_cycles: u64,
    pub dram_cycles: u64,
    pub atomic_cycles: u64,
    pub stall_cycles: u64,
    pub cas_attempts: u64,
    pub cas_failures: u64,
    pub mask_ops: u64,
    pub active_lanes: u64,
    pub full_mask_ops: u64,
}

impl LaunchCounters {
    /// Adds a detached SM's counters back into the launch total.
    fn merge(&mut self, other: &LaunchCounters) {
        self.instructions += other.instructions;
        self.l1_hits += other.l1_hits;
        self.dram += other.dram;
        self.atomics += other.atomics;
        self.warps += other.warps;
        self.alu_cycles += other.alu_cycles;
        self.l1_cycles += other.l1_cycles;
        self.l2_cycles += other.l2_cycles;
        self.dram_cycles += other.dram_cycles;
        self.atomic_cycles += other.atomic_cycles;
        self.stall_cycles += other.stall_cycles;
        self.cas_attempts += other.cas_attempts;
        self.cas_failures += other.cas_failures;
        self.mask_ops += other.mask_ops;
        self.active_lanes += other.active_lanes;
        self.full_mask_ops += other.full_mask_ops;
    }
}

/// One simulated SM's exclusive state, detached from the [`Gpu`] for the
/// duration of a host-parallel launch so a worker thread can own it.
struct SmSlot {
    sm: usize,
    l1: Cache,
    l2: Cache,
    cycles: u64,
    start: u64,
    counters: LaunchCounters,
    rng: FaultRng,
    items: Vec<usize>,
}

impl Gpu {
    /// A device with the given profile and empty memory.
    pub fn new(profile: DeviceProfile) -> Self {
        let l1 = (0..profile.num_sms)
            .map(|_| {
                Cache::new(
                    profile.l1_bytes,
                    profile.l1_ways,
                    profile.line_bytes,
                    profile.sector_bytes,
                )
            })
            .collect();
        let l2 = L2Store::Excl(Cache::new(
            profile.l2_bytes,
            profile.l2_ways,
            profile.line_bytes,
            profile.sector_bytes,
        ));
        let sm_cycles = vec![0; profile.num_sms];
        let launch_start_sm = sm_cycles.clone();
        Gpu {
            profile,
            mem: GlobalMemory::new(),
            l1,
            l2,
            sm_cycles,
            cur: LaunchCounters::default(),
            kernels: Vec::new(),
            fault: FaultPlan::none(),
            fault_rng: FaultRng::new(0, 0),
            watchdog: None,
            launch_start_sm,
            launch_index: 0,
            exec: ExecMode::Serial,
            warp_order: Vec::new(),
            parallel_items: Vec::new(),
            recorder: None,
            timeline_cycles: 0,
        }
    }

    /// Attaches (or with `None` detaches) an observability recorder.
    /// Recording is observation-only: it reads counters the simulator
    /// maintains unconditionally, so cycles, cache stats, and fault-RNG
    /// streams are bit-identical with a recorder attached or not.
    pub fn set_recorder(&mut self, recorder: Option<ecl_obs::Recorder>) {
        self.recorder = recorder;
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&ecl_obs::Recorder> {
        self.recorder.as_ref()
    }

    /// Current position on the simulated-cycle trace timeline (the sum
    /// of all launched kernels' cycles since the last reset or origin
    /// change). Kernel spans are emitted at this offset.
    pub fn timeline_cycles(&self) -> u64 {
        self.timeline_cycles
    }

    /// Moves the trace timeline origin, so that several runs (possibly
    /// on fresh devices) can share one recorder without their kernel
    /// spans overlapping. Affects only span timestamps, never timing.
    pub fn set_timeline_origin(&mut self, cycles: u64) {
        self.timeline_cycles = cycles;
    }

    /// Takes the per-SM item scratch, cleared and sized to `num_sms`, with
    /// inner capacities preserved from earlier launches.
    fn take_item_scratch(&mut self) -> Vec<Vec<usize>> {
        let mut items = std::mem::take(&mut self.parallel_items);
        items.resize_with(self.profile.num_sms, Vec::new);
        for v in &mut items {
            v.clear();
        }
        items
    }

    /// Selects the execution mode for subsequent `*_sync` launches (the
    /// `FnMut` launch APIs always run serially regardless). Switching
    /// between serial and parallel rebuilds the L2 model cold — cache
    /// *contents* only affect stats, never values, so this is safe at any
    /// point between launches.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec = mode;
        let want_sliced = matches!(mode, ExecMode::HostParallel(_));
        let is_sliced = matches!(self.l2, L2Store::PerSm(_));
        if want_sliced != is_sliced {
            self.l2 = if want_sliced {
                // Slice capacity is rounded down to a power-of-two set
                // count so every slice keeps the shift-mask index path;
                // parallel-mode stats are a distinct record from serial
                // anyway, so the model trades a little modelled capacity
                // for wall-clock speed on the hot path.
                let way_bytes = self.profile.l2_ways * self.profile.line_bytes;
                let raw_sets = ((self.profile.l2_bytes / self.profile.num_sms) / way_bytes).max(1);
                // Largest power of two <= raw_sets.
                let slice_sets = (raw_sets + 1).next_power_of_two() >> 1;
                let per_sm = slice_sets.max(1) * way_bytes;
                L2Store::PerSm(
                    (0..self.profile.num_sms)
                        .map(|_| {
                            Cache::new(
                                per_sm,
                                self.profile.l2_ways,
                                self.profile.line_bytes,
                                self.profile.sector_bytes,
                            )
                        })
                        .collect(),
                )
            } else {
                L2Store::Excl(Cache::new(
                    self.profile.l2_bytes,
                    self.profile.l2_ways,
                    self.profile.line_bytes,
                    self.profile.sector_bytes,
                ))
            };
        }
    }

    /// The active execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec
    }

    /// Installs a fault-injection plan applied to every subsequent launch
    /// (see [`FaultPlan`]); [`FaultPlan::none`] restores clean execution.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// The active fault-injection plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Arms (or with `None` disarms) the kernel watchdog: any single
    /// launch whose busiest SM exceeds `budget` cycles is aborted, and the
    /// fallible launch APIs report it as [`SimError::Watchdog`]. The
    /// infallible `launch_*` APIs propagate the abort as a panic.
    ///
    /// After a watchdog abort the in-flight launch's counters are
    /// discarded and device memory may hold a partial kernel's writes;
    /// callers are expected to re-run on a fresh device (what the
    /// fallback ladder in `ecl-cc` does) or re-upload their buffers.
    /// In host-parallel mode each SM worker checks its own budget, so a
    /// livelocked SM aborts the launch without cross-thread coordination.
    pub fn set_watchdog(&mut self, budget: Option<u64>) {
        self.watchdog = budget;
    }

    /// The armed watchdog budget, if any.
    pub fn watchdog(&self) -> Option<u64> {
        self.watchdog
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Allocates a zeroed buffer of `len` words.
    pub fn alloc(&mut self, len: usize) -> DevicePtr {
        self.mem.alloc(len)
    }

    /// Allocates and uploads `data` (untimed, like a pre-kernel memcpy —
    /// the paper excludes transfer time from all measurements, §4).
    pub fn alloc_from(&mut self, data: &[u32]) -> DevicePtr {
        self.mem.alloc_from(data)
    }

    /// Untimed host read-back of a buffer.
    pub fn download(&self, ptr: DevicePtr) -> Vec<u32> {
        self.mem.download(ptr)
    }

    /// Untimed host write of a buffer.
    pub fn upload(&mut self, ptr: DevicePtr, data: &[u32]) {
        self.mem.upload(ptr, data)
    }

    /// A launch size that fills the device for a grid-stride loop over `n`
    /// items: enough blocks for 4 resident blocks per SM, capped at `n`
    /// rounded up to a block.
    pub fn suggested_threads(&self, n: usize) -> usize {
        let tpb = self.profile.threads_per_block;
        let max_threads = self.profile.num_sms * 4 * tpb;
        let needed = n.div_ceil(tpb) * tpb;
        needed.min(max_threads).max(tpb)
    }

    /// The [`SmView`] for one SM in serial execution: disjoint borrows of
    /// the device's per-SM and shared state.
    fn sm_view(&mut self, sm: usize) -> SmView<'_> {
        SmView {
            mem: &self.mem,
            l2: match &mut self.l2 {
                L2Store::Excl(c) => c,
                L2Store::PerSm(v) => &mut v[sm],
            },
            l1: &mut self.l1[sm],
            cycles: &mut self.sm_cycles[sm],
            launch_start: self.launch_start_sm[sm],
            watchdog: self.watchdog,
            counters: &mut self.cur,
            fault: self.fault,
            rng: &mut self.fault_rng,
            profile: &self.profile,
            sm,
        }
    }

    /// Launches a thread-granularity kernel: `total_threads` threads, 32
    /// per warp, blocks assigned round-robin to SMs. The closure runs once
    /// per warp with the warp's context (lane `i`'s global thread ID is
    /// `ctx.thread_ids().get(i)`); lanes beyond `total_threads` are
    /// inactive in [`WarpCtx::launch_mask`]. Always executes serially on
    /// the calling thread — use [`Self::try_launch_warps_sync`] for a
    /// launch that honours [`ExecMode::HostParallel`].
    pub fn launch_warps<F>(&mut self, name: &str, total_threads: usize, mut body: F) -> KernelStats
    where
        F: FnMut(&mut WarpCtx),
    {
        self.begin_launch();
        let before = (self.l1_stats(), self.l2_stats());
        self.cur = LaunchCounters::default();

        let warps_per_block = self.profile.warps_per_block();
        let num_warps = total_threads.div_ceil(LANES);
        // Block→SM placement is fixed at launch; only the *execution order*
        // of warps is perturbed under a scheduler-chaos fault plan (real
        // hardware guarantees nothing about it either).
        let mut order = std::mem::take(&mut self.warp_order);
        order.clear();
        order.extend(0..num_warps);
        if self.fault.shuffle_warps {
            self.fault_rng.shuffle(&mut order);
        }
        for &wid in &order {
            let block = wid / warps_per_block;
            let sm = block % self.profile.num_sms;
            let base = (wid * LANES) as u32;
            let active = crate::Mask::first(total_threads.saturating_sub(wid * LANES).min(LANES));
            let mut ctx = WarpCtx::new(self.sm_view(sm), base, total_threads as u32, active);
            body(&mut ctx);
            self.cur.warps += 1;
        }
        self.warp_order = order;
        self.finish_launch(name, before)
    }

    /// Launches a block-granularity kernel: the closure runs once per
    /// thread block and drives its warps through [`BlockCtx::for_each_warp`].
    /// Always executes serially — see [`Self::try_launch_blocks_sync`].
    pub fn launch_blocks<F>(&mut self, name: &str, num_blocks: usize, mut body: F) -> KernelStats
    where
        F: FnMut(&mut BlockCtx),
    {
        self.begin_launch();
        let before = (self.l1_stats(), self.l2_stats());
        self.cur = LaunchCounters::default();

        let mut order = std::mem::take(&mut self.warp_order);
        order.clear();
        order.extend(0..num_blocks);
        if self.fault.shuffle_warps {
            self.fault_rng.shuffle(&mut order);
        }
        for &b in &order {
            let sm = b % self.profile.num_sms;
            let mut ctx = BlockCtx::new(self.sm_view(sm), b, num_blocks);
            body(&mut ctx);
        }
        self.warp_order = order;
        self.finish_launch(name, before)
    }

    /// Fallible form of [`Self::launch_warps`]: converts watchdog aborts
    /// and out-of-bounds device accesses into a structured [`SimError`]
    /// instead of a panic. Any other panic from the kernel body is
    /// propagated unchanged.
    pub fn try_launch_warps<F>(
        &mut self,
        name: &str,
        total_threads: usize,
        body: F,
    ) -> Result<KernelStats, SimError>
    where
        F: FnMut(&mut WarpCtx),
    {
        let _scope = TryLaunchScope::enter();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.launch_warps(name, total_threads, body)
        }));
        result.map_err(|payload| Self::classify_abort(name, payload))
    }

    /// Fallible form of [`Self::launch_blocks`] (see
    /// [`Self::try_launch_warps`] for the abort contract).
    pub fn try_launch_blocks<F>(
        &mut self,
        name: &str,
        num_blocks: usize,
        body: F,
    ) -> Result<KernelStats, SimError>
    where
        F: FnMut(&mut BlockCtx),
    {
        let _scope = TryLaunchScope::enter();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.launch_blocks(name, num_blocks, body)
        }));
        result.map_err(|payload| Self::classify_abort(name, payload))
    }

    /// Mode-aware thread-granularity launch: executes serially under
    /// [`ExecMode::Serial`] (identical to [`Self::try_launch_warps`]) and
    /// across host threads under [`ExecMode::HostParallel`]. The kernel
    /// body must be `Fn + Sync` because warps on different SMs run
    /// concurrently in parallel mode.
    pub fn try_launch_warps_sync<F>(
        &mut self,
        name: &str,
        total_threads: usize,
        body: F,
    ) -> Result<KernelStats, SimError>
    where
        F: Fn(&mut WarpCtx) + Sync,
    {
        match self.exec {
            ExecMode::Serial => self.try_launch_warps(name, total_threads, |w| body(w)),
            ExecMode::HostParallel(workers) => {
                let warps_per_block = self.profile.warps_per_block();
                let num_sms = self.profile.num_sms;
                let num_warps = total_threads.div_ceil(LANES);
                let mut items = self.take_item_scratch();
                for wid in 0..num_warps {
                    items[(wid / warps_per_block) % num_sms].push(wid);
                }
                let total = total_threads as u32;
                self.launch_parallel(name, workers, items, move |view, wid| {
                    let base = (wid * LANES) as u32;
                    let active =
                        crate::Mask::first(total_threads.saturating_sub(wid * LANES).min(LANES));
                    let mut ctx = WarpCtx::new(view.reborrow(), base, total, active);
                    body(&mut ctx);
                    view.counters.warps += 1;
                })
            }
        }
    }

    /// Mode-aware block-granularity launch (see
    /// [`Self::try_launch_warps_sync`]).
    pub fn try_launch_blocks_sync<F>(
        &mut self,
        name: &str,
        num_blocks: usize,
        body: F,
    ) -> Result<KernelStats, SimError>
    where
        F: Fn(&mut BlockCtx) + Sync,
    {
        match self.exec {
            ExecMode::Serial => self.try_launch_blocks(name, num_blocks, |b| body(b)),
            ExecMode::HostParallel(workers) => {
                let num_sms = self.profile.num_sms;
                let mut items = self.take_item_scratch();
                for b in 0..num_blocks {
                    items[b % num_sms].push(b);
                }
                self.launch_parallel(name, workers, items, move |view, b| {
                    let mut ctx = BlockCtx::new(view.reborrow(), b, num_blocks);
                    body(&mut ctx);
                })
            }
        }
    }

    /// The host-parallel launch engine. Detaches each SM's exclusive state
    /// — its L1, its private L2 slice, its cycle counter, its stat
    /// counters, and its fault-RNG stream — into an [`SmSlot`],
    /// distributes slots round-robin over worker threads, runs every item
    /// (warp or block) of a slot on its worker, and merges all slots back
    /// once at kernel end — even when a worker aborted, so the device
    /// stays structurally valid for the caller's recovery path. Workers
    /// share nothing mutable but global memory (real atomics) and the
    /// abort flag; the first worker's bucket runs inline on the calling
    /// thread, so one-worker launches spawn no threads at all.
    /// The first abort payload is classified into a [`SimError`] exactly
    /// like a serial abort; other workers stop at the next item boundary.
    fn launch_parallel<R>(
        &mut self,
        name: &str,
        workers: usize,
        items_per_sm: Vec<Vec<usize>>,
        run_item: R,
    ) -> Result<KernelStats, SimError>
    where
        R: Fn(&mut SmView<'_>, usize) + Sync,
    {
        self.begin_launch();
        let before = (self.l1_stats(), self.l2_stats());
        self.cur = LaunchCounters::default();

        let num_sms = self.profile.num_sms;
        let nworkers = match workers {
            0 => ExecMode::HostParallel(0).resolved_workers(),
            n => n,
        }
        .min(num_sms)
        .max(1);

        let l1s = std::mem::take(&mut self.l1);
        let l2s = match &mut self.l2 {
            L2Store::PerSm(v) => std::mem::take(v),
            L2Store::Excl(_) => unreachable!("host-parallel launch requires the per-SM L2"),
        };
        let mut slots: Vec<SmSlot> = Vec::with_capacity(num_sms);
        for (sm, ((l1, l2), mut items)) in l1s.into_iter().zip(l2s).zip(items_per_sm).enumerate() {
            // Each SM draws from its own seeded stream so injection stays
            // replayable per SM no matter how the OS schedules workers.
            let mut rng = FaultRng::for_sm(self.fault.seed, self.launch_index, sm);
            if self.fault.shuffle_warps {
                rng.shuffle(&mut items);
            }
            slots.push(SmSlot {
                sm,
                l1,
                l2,
                cycles: self.sm_cycles[sm],
                start: self.launch_start_sm[sm],
                counters: LaunchCounters::default(),
                rng,
                items,
            });
        }

        let mem = &self.mem;
        let profile = &self.profile;
        let fault = self.fault;
        let watchdog = self.watchdog;
        let abort = std::sync::atomic::AtomicBool::new(false);

        let run_slice = |slice: &mut [SmSlot]| -> Option<Box<dyn std::any::Any + Send>> {
            let _guard = TryLaunchScope::enter();
            let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for slot in slice.iter_mut() {
                    // One view per slot, not per item — items only ever
                    // reborrow it, so the construction cost is hoisted
                    // out of the warp loop.
                    let items = std::mem::take(&mut slot.items);
                    let mut view = SmView {
                        mem,
                        l2: &mut slot.l2,
                        l1: &mut slot.l1,
                        cycles: &mut slot.cycles,
                        launch_start: slot.start,
                        watchdog,
                        counters: &mut slot.counters,
                        fault,
                        rng: &mut slot.rng,
                        profile,
                        sm: slot.sm,
                    };
                    for &item in &items {
                        if abort.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                        run_item(&mut view, item);
                    }
                    slot.items = items;
                }
            }))
            .err();
            if panic.is_some() {
                abort.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            panic
        };

        // When everything runs on one OS thread anyway, step the slots in
        // lockstep (item 0 of every SM, then item 1, ...) instead of
        // SM-major order. Each slot still sees exactly its own item
        // sequence — per-slot caches, RNG streams, and cycle counters are
        // order-independent across slots — but global memory is walked in
        // near-serial block order, which keeps the *host's* caches warm on
        // large graphs instead of sweeping the whole graph once per SM.
        let run_lockstep = |slots: &mut [SmSlot]| -> Option<Box<dyn std::any::Any + Send>> {
            let _guard = TryLaunchScope::enter();
            let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let items: Vec<Vec<usize>> = slots
                    .iter_mut()
                    .map(|s| std::mem::take(&mut s.items))
                    .collect();
                {
                    let mut views: Vec<SmView<'_>> = slots
                        .iter_mut()
                        .map(|slot| SmView {
                            mem,
                            l2: &mut slot.l2,
                            l1: &mut slot.l1,
                            cycles: &mut slot.cycles,
                            launch_start: slot.start,
                            watchdog,
                            counters: &mut slot.counters,
                            fault,
                            rng: &mut slot.rng,
                            profile,
                            sm: slot.sm,
                        })
                        .collect();
                    let depth = items.iter().map(|v| v.len()).max().unwrap_or(0);
                    'outer: for k in 0..depth {
                        for (view, its) in views.iter_mut().zip(&items) {
                            if let Some(&item) = its.get(k) {
                                if abort.load(std::sync::atomic::Ordering::Relaxed) {
                                    break 'outer;
                                }
                                run_item(view, item);
                            }
                        }
                    }
                }
                for (slot, its) in slots.iter_mut().zip(items) {
                    slot.items = its;
                }
            }))
            .err();
            if panic.is_some() {
                abort.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            panic
        };

        // Which slot runs on which OS thread is unobservable: slots are
        // self-contained and interact only through real atomics on global
        // memory. So never run more OS threads than min(workers, cores) —
        // extra threads would only add spawn and context-switch cost.
        // On a single-core host every slot runs inline on the calling
        // thread and a parallel launch spawns no threads at all.
        let os_threads = nworkers
            .min(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
            .max(1);
        let first_panic = if os_threads == 1 {
            run_lockstep(&mut slots)
        } else {
            let chunk = slots.len().div_ceil(os_threads);
            std::thread::scope(|scope| {
                let run_slice = &run_slice;
                let mut chunks = slots.chunks_mut(chunk);
                let first = chunks.next().expect("at least one slot chunk");
                let handles: Vec<_> = chunks
                    .map(|slice| scope.spawn(move || run_slice(slice)))
                    .collect();
                // The first chunk runs on the calling thread while the
                // spawned workers chew through the rest.
                let mut first_panic = run_slice(first);
                for h in handles {
                    let p = h.join().expect("SM worker died outside the launch guard");
                    if first_panic.is_none() {
                        first_panic = p;
                    }
                }
                first_panic
            })
        };

        // Slots were never reordered, so the merge is a straight in-order
        // sweep that hands the caches and the item scratch back to `self`.
        let mut l1s = Vec::with_capacity(num_sms);
        let mut l2s = Vec::with_capacity(num_sms);
        let mut item_scratch = std::mem::take(&mut self.parallel_items);
        item_scratch.clear();
        for slot in slots {
            self.sm_cycles[slot.sm] = slot.cycles;
            self.cur.merge(&slot.counters);
            l1s.push(slot.l1);
            l2s.push(slot.l2);
            item_scratch.push(slot.items);
        }
        self.l1 = l1s;
        self.l2 = L2Store::PerSm(l2s);
        self.parallel_items = item_scratch;
        if let Some(payload) = first_panic {
            return Err(Self::classify_abort(name, payload));
        }
        Ok(self.finish_launch(name, before))
    }

    /// Cheap device self-test for circuit-breaker half-open probes.
    ///
    /// Launches one tiny diagnostic kernel under the *currently
    /// installed* fault plan and watchdog budget — the exact machinery
    /// real jobs run under — and verifies its output on the host. Each
    /// thread CAS-publishes a known value into its own cell with the
    /// same retry-loop shape production hook loops use (so spurious-CAS
    /// injection is exercised), and all threads bump a shared
    /// `atomicAdd` counter.
    ///
    /// Returns `Ok(())` when the downloaded results are exactly right;
    /// a structured [`SimError`] when the launch aborted (watchdog trip
    /// or memory fault); and a synthesized [`SimError::MemoryFault`]
    /// when the kernel ran but produced wrong values — a device that
    /// computes incorrectly must not be trusted with real jobs.
    ///
    /// Each probe allocates a small scratch buffer (probes are expected
    /// to be rare: one per breaker half-open transition). Probes always
    /// execute serially, so they work identically in either exec mode.
    pub fn health_probe(&mut self) -> Result<(), SimError> {
        const N: usize = 64;
        let cells = self.alloc(N);
        let counter = self.alloc(1);
        let nu = N as u32;
        self.try_launch_warps("health-probe", N, |w| {
            let v = w.thread_ids();
            let m = w.launch_mask() & v.lt_scalar(nu);
            if m.none() {
                return;
            }
            let want = v.map(|x| 2 * x + 1);
            // CAS-publish with a load-back retry loop: under spurious
            // contention the returned "old" value lies, but the memory
            // state does not — exactly the discipline hook loops need.
            let mut pending = m;
            while pending.any() {
                let _ = w.atomic_cas(cells, &v, &Lanes::splat(0), &want, pending);
                let now = w.load(cells, &v, pending);
                pending &= now.ne_mask(&want);
                w.alu(1);
            }
            let _ = w.atomic_add(counter, &Lanes::splat(0), &Lanes::splat(1), m);
        })?;
        let got_cells = self.download(cells);
        let got_count = self.download(counter)[0];
        for (i, &c) in got_cells.iter().take(N).enumerate() {
            let want = 2 * i as u32 + 1;
            if c != want {
                return Err(SimError::MemoryFault {
                    kernel: "health-probe".to_string(),
                    detail: format!("self-test cell {i}: got {c}, want {want}"),
                });
            }
        }
        if got_count != nu {
            return Err(SimError::MemoryFault {
                kernel: "health-probe".to_string(),
                detail: format!("self-test counter: got {got_count}, want {nu}"),
            });
        }
        Ok(())
    }

    /// Maps a caught launch panic to the error taxonomy: the watchdog's
    /// dedicated payload becomes [`SimError::Watchdog`], bounds-check
    /// failures become [`SimError::MemoryFault`], anything else resumes
    /// unwinding (it is a simulator or kernel bug, not a modelled fault).
    fn classify_abort(name: &str, payload: Box<dyn std::any::Any + Send>) -> SimError {
        let payload = match payload.downcast::<WatchdogAbort>() {
            Ok(w) => {
                return SimError::Watchdog {
                    kernel: name.to_string(),
                    budget: w.budget,
                    spent: w.spent,
                }
            }
            Err(other) => other,
        };
        let detail = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()));
        match detail {
            Some(d) if d.contains("OOB") => SimError::MemoryFault {
                kernel: name.to_string(),
                detail: d,
            },
            _ => std::panic::resume_unwind(payload),
        }
    }

    /// Per-launch prologue: advances the fault-RNG stream and snapshots
    /// SM counters for the watchdog (reusing the snapshot buffer — no
    /// per-launch allocation).
    fn begin_launch(&mut self) {
        self.launch_index += 1;
        self.fault_rng = FaultRng::new(self.fault.seed, self.launch_index);
        self.launch_start_sm.clone_from(&self.sm_cycles);
    }

    /// Aggregate access statistics of the L2 level (summed over slices in
    /// host-parallel mode) since construction or the last
    /// [`Self::reset_profiling`].
    pub fn l2_stats(&self) -> CacheStats {
        match &self.l2 {
            L2Store::Excl(c) => c.stats(),
            L2Store::PerSm(v) => {
                let mut total = CacheStats::default();
                for c in v {
                    total.accumulate(&c.stats());
                }
                total
            }
        }
    }

    /// Aggregate access statistics of all per-SM L1 caches since
    /// construction or the last [`Self::reset_profiling`].
    pub fn l1_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for c in &self.l1 {
            total.accumulate(&c.stats());
        }
        total
    }

    fn finish_launch(&mut self, name: &str, before: (CacheStats, CacheStats)) -> KernelStats {
        let (l1_before, l2_before) = before;
        let sm_cycle_deltas: Vec<u64> = self
            .sm_cycles
            .iter()
            .zip(&self.launch_start_sm)
            .map(|(now, then)| now - then)
            .collect();
        let max_delta = sm_cycle_deltas.iter().copied().max().unwrap_or(0);
        let l1_now = self.l1_stats();
        let l2_now = self.l2_stats();
        let stats = KernelStats {
            name: name.to_string(),
            cycles: max_delta + self.profile.launch_overhead_cycles,
            instructions: self.cur.instructions,
            l1_hit_transactions: self.cur.l1_hits,
            l2_read_accesses: l2_now.read_accesses - l2_before.read_accesses,
            l2_write_accesses: l2_now.write_accesses - l2_before.write_accesses,
            dram_transactions: self.cur.dram,
            atomics: self.cur.atomics,
            warps: self.cur.warps,
            alu_cycles: self.cur.alu_cycles,
            l1_cycles: self.cur.l1_cycles,
            l2_cycles: self.cur.l2_cycles,
            dram_cycles: self.cur.dram_cycles,
            atomic_cycles: self.cur.atomic_cycles,
            stall_cycles: self.cur.stall_cycles,
            cas_attempts: self.cur.cas_attempts,
            cas_failures: self.cur.cas_failures,
            mask_ops: self.cur.mask_ops,
            active_lanes: self.cur.active_lanes,
            full_mask_ops: self.cur.full_mask_ops,
            sm_cycle_deltas,
            l1_cache: l1_now.delta(&l1_before),
            l2_cache: l2_now.delta(&l2_before),
        };
        self.emit_launch_span(&stats);
        self.timeline_cycles += stats.cycles;
        self.kernels.push(stats.clone());
        stats
    }

    /// Emits the per-launch span tree and metric updates. Runs only at
    /// launch end (the "span close" of the recording contract), buffers
    /// locally, and merges with one lock; a disabled or absent recorder
    /// costs one branch.
    fn emit_launch_span(&self, stats: &KernelStats) {
        let Some(rec) = &self.recorder else { return };
        if !rec.is_enabled() {
            return;
        }
        use ecl_obs::{TraceEvent, PID_SIM};
        let ts = self.timeline_cycles;
        let mut buf = rec.local();
        buf.push(
            TraceEvent::span(&stats.name, "kernel", PID_SIM, 0, ts, stats.cycles)
                .arg_u64("instructions", stats.instructions)
                .arg_u64("warps", stats.warps)
                .arg_u64("alu_cycles", stats.alu_cycles)
                .arg_u64("l1_cycles", stats.l1_cycles)
                .arg_u64("l2_cycles", stats.l2_cycles)
                .arg_u64("dram_cycles", stats.dram_cycles)
                .arg_u64("atomic_cycles", stats.atomic_cycles)
                .arg_u64("stall_cycles", stats.stall_cycles)
                .arg_u64("cas_attempts", stats.cas_attempts)
                .arg_u64("cas_failures", stats.cas_failures)
                .arg_f64("warp_occupancy", stats.warp_occupancy())
                .arg_f64("divergence_ratio", stats.divergence_ratio())
                .arg_f64("l1_read_hit_ratio", stats.l1_cache.read_hit_ratio())
                .arg_f64("l2_read_hit_ratio", stats.l2_cache.read_hit_ratio())
                .arg_u64("dram_transactions", stats.dram_transactions),
        );
        // One sub-span per SM that did work: the launch's load-balance
        // picture, rendered as per-SM tracks under the kernel row.
        for (sm, &delta) in stats.sm_cycle_deltas.iter().enumerate() {
            if delta > 0 {
                buf.push(TraceEvent::span(
                    &format!("{}@sm{sm}", stats.name),
                    "sm",
                    PID_SIM,
                    sm as u32 + 1,
                    ts,
                    delta,
                ));
            }
        }
        rec.merge(&mut buf);
        rec.add_metric("sim.cycles", stats.cycles as f64);
        rec.add_metric("sim.instructions", stats.instructions as f64);
        rec.add_metric("sim.warps", stats.warps as f64);
        rec.add_metric("sim.atomics", stats.atomics as f64);
        rec.add_metric("sim.dram_transactions", stats.dram_transactions as f64);
        rec.add_metric("sim.cas_attempts", stats.cas_attempts as f64);
        rec.add_metric("sim.cas_failures", stats.cas_failures as f64);
        rec.add_metric("sim.launches", 1.0);
    }

    /// Stats of every kernel launched so far, in launch order.
    pub fn kernel_stats(&self) -> &[KernelStats] {
        &self.kernels
    }

    /// Sum of all kernel cycles (launches are sequential, as in the CUDA
    /// code where each kernel waits for the previous one).
    pub fn total_cycles(&self) -> u64 {
        self.kernels.iter().map(|k| k.cycles).sum()
    }

    /// Total simulated time in pseudo-ms.
    pub fn total_ms(&self) -> f64 {
        self.profile.cycles_to_ms(self.total_cycles())
    }

    /// Per-SM busy-cycle counters since construction (or the last
    /// [`Self::reset_profiling`]). The spread across SMs is the
    /// load-imbalance signal ECL-CC's degree-bucketed kernels exist to
    /// minimize.
    pub fn sm_cycles(&self) -> &[u64] {
        &self.sm_cycles
    }

    /// SM load balance: mean busy cycles divided by the maximum
    /// (1.0 = perfectly balanced; small values = one SM dominated).
    /// Returns 1.0 when nothing has executed.
    pub fn sm_balance(&self) -> f64 {
        let max = self.sm_cycles.iter().copied().max().unwrap_or(0);
        if max == 0 {
            return 1.0;
        }
        let mean = self.sm_cycles.iter().sum::<u64>() as f64 / self.sm_cycles.len() as f64;
        mean / max as f64
    }

    /// Clears kernel history and cache contents/counters; memory contents
    /// are preserved (like re-running a program on a device with data
    /// already resident).
    pub fn reset_profiling(&mut self) {
        self.kernels.clear();
        self.timeline_cycles = 0;
        for c in &mut self.l1 {
            c.flush();
        }
        match &mut self.l2 {
            L2Store::Excl(c) => c.flush(),
            L2Store::PerSm(v) => {
                for c in v {
                    c.flush();
                }
            }
        }
        for c in &mut self.sm_cycles {
            *c = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lanes;

    #[test]
    fn simple_copy_kernel() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let src: Vec<u32> = (0..1000).collect();
        let a = gpu.alloc_from(&src);
        let b = gpu.alloc(1000);
        let total = 1000;
        gpu.launch_warps("copy", total, |w| {
            let tid = w.thread_ids();
            let m = w.launch_mask();
            let v = w.load(a, &tid, m);
            w.store(b, &tid, &v, m);
        });
        assert_eq!(gpu.download(b), src);
        let k = &gpu.kernel_stats()[0];
        assert!(k.cycles > 0);
        assert_eq!(k.warps as usize, total.div_ceil(32));
    }

    #[test]
    fn grid_stride_kernel_covers_all() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let n = 5000u32;
        let buf = gpu.alloc(n as usize);
        let total = gpu.suggested_threads(n as usize);
        gpu.launch_warps("fill", total, |w| {
            let mut idx = w.thread_ids();
            loop {
                let m = w.launch_mask() & idx.lt_scalar(n);
                if m.none() {
                    break;
                }
                w.store(buf, &idx, &idx, m);
                idx = idx.add_scalar(total as u32);
                w.alu(1);
            }
        });
        let out = gpu.download(buf);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn coalesced_cheaper_than_scattered() {
        let mut gpu = Gpu::new(DeviceProfile::titan_x());
        let n = 32 * 1024;
        let buf = gpu.alloc(n);
        // Coalesced: lane i reads consecutive words.
        let k1 = gpu.launch_warps("coalesced", 1024, |w| {
            let mut idx = w.thread_ids();
            for _ in 0..(n / 1024) {
                let m = w.launch_mask();
                let _ = w.load(buf, &idx, m);
                idx = idx.add_scalar(1024);
            }
        });
        gpu.reset_profiling();
        // Scattered: lane addresses hashed apart so every lane touches its
        // own sector and sectors are rarely revisited (same total
        // lane-loads as the coalesced kernel).
        let k2 = gpu.launch_warps("scattered", 1024, |w| {
            let tid = w.thread_ids();
            let mut iter = 0u32;
            for _ in 0..(n / 1024) {
                let idx = tid.map(|t| {
                    t.wrapping_mul(2654435761)
                        .wrapping_add(iter.wrapping_mul(40503))
                        % n as u32
                });
                let m = w.launch_mask();
                let _ = w.load(buf, &idx, m);
                iter = iter.wrapping_add(1);
            }
        });
        assert!(
            k2.cycles > 2 * k1.cycles,
            "scattered {} vs coalesced {}",
            k2.cycles,
            k1.cycles
        );
    }

    #[test]
    fn atomic_add_counts() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let ctr = gpu.alloc(1);
        let k = gpu.launch_warps("count", 320, |w| {
            let m = w.launch_mask();
            let _ = w.atomic_add(ctr, &Lanes::splat(0), &Lanes::splat(1), m);
        });
        assert_eq!(gpu.download(ctr)[0], 320);
        assert_eq!(k.atomics, 320);
        assert!(k.l2_read_accesses >= 320);
        assert!(k.l2_write_accesses >= 320);
    }

    #[test]
    fn atomic_cas_semantics() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let cell = gpu.alloc_from(&[5]);
        gpu.launch_warps("cas", 32, |w| {
            let m = w.launch_mask();
            let old = w.atomic_cas(
                cell,
                &Lanes::splat(0),
                &Lanes::splat(5),
                &Lanes::splat(9),
                m,
            );
            // Exactly one lane observes 5; the rest observe 9.
            let winners = old.eq_mask(&Lanes::splat(5)) & m;
            assert_eq!(winners.count(), 1);
        });
        assert_eq!(gpu.download(cell)[0], 9);
    }

    #[test]
    fn kernel_time_is_max_over_sms() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        // One block does 1000 ALU cycles, others do nothing → kernel time
        // tracks the busiest SM, not the sum.
        let k = gpu.launch_blocks("imbalanced", 4, |b| {
            if b.block_idx() == 0 {
                b.for_each_warp(|w| w.alu(1000));
            }
        });
        assert!(k.cycles >= 1000 + 100);
        assert!(
            k.cycles < 3000,
            "cycles {} look summed, not maxed",
            k.cycles
        );
    }

    #[test]
    fn sm_balance_reflects_imbalance() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        // Balanced: every block does the same work.
        gpu.launch_blocks("even", 4, |b| b.for_each_warp(|w| w.alu(100)));
        assert!(gpu.sm_balance() > 0.99, "balance {}", gpu.sm_balance());
        gpu.reset_profiling();
        // Imbalanced: only block 0 works.
        gpu.launch_blocks("skew", 4, |b| {
            if b.block_idx() == 0 {
                b.for_each_warp(|w| w.alu(1000));
            }
        });
        assert!(gpu.sm_balance() < 0.6, "balance {}", gpu.sm_balance());
        assert_eq!(gpu.sm_cycles().len(), 2);
    }

    #[test]
    fn launch_history_accumulates() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let b = gpu.alloc(64);
        gpu.launch_warps("a", 64, |w| {
            let m = w.launch_mask();
            let t = w.thread_ids();
            w.store(b, &t, &t, m);
        });
        gpu.launch_warps("b", 64, |w| w.alu(1));
        assert_eq!(gpu.kernel_stats().len(), 2);
        assert_eq!(gpu.kernel_stats()[0].name, "a");
        assert!(gpu.total_cycles() >= gpu.kernel_stats()[1].cycles);
    }

    #[test]
    fn repeated_reads_hit_l1() {
        let mut gpu = Gpu::new(DeviceProfile::titan_x());
        let buf = gpu.alloc(32);
        let k = gpu.launch_warps("rehit", 32, |w| {
            let tid = w.thread_ids();
            let m = w.launch_mask();
            for _ in 0..10 {
                let _ = w.load(buf, &tid, m);
            }
        });
        assert!(
            k.l1_hit_transactions >= 9 * 4,
            "l1 hits {}",
            k.l1_hit_transactions
        );
        // Only the first pass misses: 4 sectors.
        assert!(k.l2_read_accesses <= 8, "l2 reads {}", k.l2_read_accesses);
    }

    #[test]
    fn exec_mode_parses() {
        assert_eq!(ExecMode::parse("serial").unwrap(), ExecMode::Serial);
        assert_eq!(
            ExecMode::parse("parallel").unwrap(),
            ExecMode::HostParallel(0)
        );
        assert_eq!(
            ExecMode::parse("parallel:4").unwrap(),
            ExecMode::HostParallel(4)
        );
        assert!(ExecMode::parse("bogus").is_err());
        assert!(ExecMode::parse("parallel:x").is_err());
        assert_eq!(ExecMode::Serial.resolved_workers(), 1);
        assert_eq!(ExecMode::HostParallel(3).resolved_workers(), 3);
        assert!(ExecMode::HostParallel(0).resolved_workers() >= 1);
    }

    #[test]
    fn parallel_copy_matches_serial_memory() {
        let src: Vec<u32> = (0..4096).map(|i| i * 3 + 1).collect();
        let run = |mode: ExecMode| {
            let mut gpu = Gpu::new(DeviceProfile::test_tiny());
            gpu.set_exec_mode(mode);
            let a = gpu.alloc_from(&src);
            let b = gpu.alloc(src.len());
            gpu.try_launch_warps_sync("copy", src.len(), |w| {
                let tid = w.thread_ids();
                let m = w.launch_mask();
                let v = w.load(a, &tid, m);
                w.store(b, &tid, &v, m);
            })
            .unwrap();
            gpu.download(b)
        };
        for workers in [1, 2, 3, 8] {
            assert_eq!(run(ExecMode::HostParallel(workers)), run(ExecMode::Serial));
        }
    }

    #[test]
    fn parallel_atomic_add_is_exact() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.set_exec_mode(ExecMode::HostParallel(2));
        let ctr = gpu.alloc(1);
        let k = gpu
            .try_launch_warps_sync("count", 4096, |w| {
                let m = w.launch_mask();
                let _ = w.atomic_add(ctr, &Lanes::splat(0), &Lanes::splat(1), m);
            })
            .unwrap();
        assert_eq!(gpu.download(ctr)[0], 4096, "real atomics never lose adds");
        assert_eq!(k.atomics, 4096);
        assert_eq!(k.warps, 128);
    }

    #[test]
    fn parallel_blocks_run_every_block() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.set_exec_mode(ExecMode::HostParallel(2));
        let seen = gpu.alloc(16);
        gpu.try_launch_blocks_sync("mark", 16, |b| {
            let idx = b.block_idx() as u32;
            let v = b.load_uniform(seen, idx);
            assert_eq!(v, 0);
            // One warp writes the block's cell.
            let mut done = false;
            b.for_each_warp(|w| {
                if !done {
                    w.store(
                        seen,
                        &Lanes::splat(idx),
                        &Lanes::splat(idx + 1),
                        crate::Mask(1),
                    );
                    done = true;
                }
            });
        })
        .unwrap();
        let got = gpu.download(seen);
        let want: Vec<u32> = (1..=16).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_watchdog_aborts_structuredly() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.set_exec_mode(ExecMode::HostParallel(2));
        gpu.set_watchdog(Some(500));
        let err = gpu
            .try_launch_warps_sync("spin", 256, |w| {
                for _ in 0..10_000 {
                    w.alu(1);
                }
            })
            .unwrap_err();
        match err {
            SimError::Watchdog { kernel, budget, .. } => {
                assert_eq!(kernel, "spin");
                assert_eq!(budget, 500);
            }
            other => panic!("expected watchdog, got {other:?}"),
        }
        // The device must remain usable after the abort.
        gpu.set_watchdog(None);
        gpu.health_probe().unwrap();
    }

    #[test]
    fn parallel_oob_is_memory_fault() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.set_exec_mode(ExecMode::HostParallel(3));
        let buf = gpu.alloc(8);
        let err = gpu
            .try_launch_warps_sync("oob", 256, |w| {
                let tid = w.thread_ids();
                let _ = w.load(buf, &tid, w.launch_mask());
            })
            .unwrap_err();
        assert!(matches!(err, SimError::MemoryFault { .. }), "got {err:?}");
    }

    #[test]
    fn sync_launch_in_serial_mode_is_bit_identical_to_fnmut() {
        let run = |sync: bool| {
            let mut gpu = Gpu::new(DeviceProfile::titan_x());
            gpu.set_fault_plan(FaultPlan::everything(77));
            let buf = gpu.alloc(1024);
            let k = if sync {
                gpu.try_launch_warps_sync("k", 1024, |w| {
                    let tid = w.thread_ids();
                    let m = w.launch_mask();
                    let _ = w.atomic_min(buf, &tid, &tid, m);
                })
                .unwrap()
            } else {
                gpu.try_launch_warps("k", 1024, |w| {
                    let tid = w.thread_ids();
                    let m = w.launch_mask();
                    let _ = w.atomic_min(buf, &tid, &tid, m);
                })
                .unwrap()
            };
            (
                k.cycles,
                k.instructions,
                k.l2_read_accesses,
                gpu.download(buf),
            )
        };
        assert_eq!(run(true), run(false));
    }
}
