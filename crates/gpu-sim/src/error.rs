//! Structured simulator errors.
//!
//! The simulator historically aborted with panics (standing in for CUDA
//! illegal-address errors and host-side hangs). The fallible launch API
//! ([`crate::Gpu::try_launch_warps`] / [`crate::Gpu::try_launch_blocks`])
//! converts those aborts into this taxonomy so callers can degrade
//! gracefully instead of crashing a whole sweep.

use std::fmt;

/// An abort raised while simulating a kernel launch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The per-launch cycle budget was exceeded — the kernel is presumed
    /// livelocked (the simulator equivalent of a GPU watchdog reset).
    Watchdog {
        /// Kernel name as passed to the launch call.
        kernel: String,
        /// Configured budget, in cycles.
        budget: u64,
        /// Cycles the busiest SM had consumed when the watchdog fired.
        spent: u64,
    },
    /// An out-of-bounds device access (the CUDA illegal-address analogue).
    MemoryFault {
        /// Kernel name as passed to the launch call.
        kernel: String,
        /// Human-readable description of the faulting access.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Watchdog {
                kernel,
                budget,
                spent,
            } => write!(
                f,
                "watchdog: kernel `{kernel}` exceeded its cycle budget ({spent} > {budget}); \
                 presumed livelocked"
            ),
            SimError::MemoryFault { kernel, detail } => {
                write!(f, "memory fault in kernel `{kernel}`: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Panic payload used by the watchdog to abort a launch from deep inside
/// a kernel body; `try_launch_*` downcasts it back into
/// [`SimError::Watchdog`]. Not public API.
#[derive(Debug)]
pub(crate) struct WatchdogAbort {
    pub budget: u64,
    pub spent: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_kernel() {
        let e = SimError::Watchdog {
            kernel: "compute1".into(),
            budget: 100,
            spent: 150,
        };
        assert!(e.to_string().contains("compute1"));
        assert!(e.to_string().contains("150"));
        let m = SimError::MemoryFault {
            kernel: "init".into(),
            detail: "idx 9 >= len 4".into(),
        };
        assert!(m.to_string().contains("init"));
        assert!(m.to_string().contains("idx 9"));
    }
}
