//! Warp-vector value and mask types.
//!
//! Simulated kernels manipulate [`Lanes`] — one `u32` per lane of a warp —
//! under an active-lane [`Mask`]. Comparisons produce masks; arithmetic is
//! lane-wise. This is the explicit-SIMT style in which all kernels in the
//! workspace are written.

/// Number of lanes in a warp (CUDA warp size).
pub const LANES: usize = 32;

/// A set of active lanes, one bit per lane (bit `i` = lane `i`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Mask(pub u32);

impl Mask {
    /// No lanes active.
    pub const NONE: Mask = Mask(0);
    /// All 32 lanes active.
    pub const ALL: Mask = Mask(u32::MAX);

    /// Mask with the first `n` lanes active.
    #[inline]
    pub fn first(n: usize) -> Mask {
        if n >= LANES {
            Mask::ALL
        } else {
            Mask((1u32 << n) - 1)
        }
    }

    /// True if any lane is active.
    #[inline]
    pub fn any(self) -> bool {
        self.0 != 0
    }

    /// True if no lane is active.
    #[inline]
    pub fn none(self) -> bool {
        self.0 == 0
    }

    /// Number of active lanes.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if lane `i` is active.
    #[inline]
    pub fn lane(self, i: usize) -> bool {
        (self.0 >> i) & 1 == 1
    }

    /// Set membership of lane `i`.
    #[inline]
    pub fn set(&mut self, i: usize, on: bool) {
        if on {
            self.0 |= 1 << i;
        } else {
            self.0 &= !(1 << i);
        }
    }

    /// Iterator over the indices of active lanes, in ascending order.
    /// Implemented as a bit scan (`trailing_zeros` + clear-lowest-set-bit)
    /// so sparse masks cost one step per active lane, not 32 — this is the
    /// inner loop of every simulated memory operation.
    #[inline]
    pub fn iter(self) -> MaskIter {
        MaskIter(self.0)
    }
}

/// Iterator over active lane indices (see [`Mask::iter`]).
#[derive(Clone, Copy, Debug)]
pub struct MaskIter(u32);

impl Iterator for MaskIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let lane = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(lane)
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for MaskIter {}

impl std::ops::BitAnd for Mask {
    type Output = Mask;
    #[inline]
    fn bitand(self, rhs: Mask) -> Mask {
        Mask(self.0 & rhs.0)
    }
}

impl std::ops::BitOr for Mask {
    type Output = Mask;
    #[inline]
    fn bitor(self, rhs: Mask) -> Mask {
        Mask(self.0 | rhs.0)
    }
}

impl std::ops::Not for Mask {
    type Output = Mask;
    #[inline]
    fn not(self) -> Mask {
        Mask(!self.0)
    }
}

impl std::ops::BitAndAssign for Mask {
    #[inline]
    fn bitand_assign(&mut self, rhs: Mask) {
        self.0 &= rhs.0;
    }
}

impl std::ops::BitOrAssign for Mask {
    #[inline]
    fn bitor_assign(&mut self, rhs: Mask) {
        self.0 |= rhs.0;
    }
}

/// One 32-bit register per lane.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lanes(pub [u32; LANES]);

impl Default for Lanes {
    fn default() -> Self {
        Lanes([0; LANES])
    }
}

impl Lanes {
    /// Every lane holds `v`.
    #[inline]
    pub fn splat(v: u32) -> Lanes {
        Lanes([v; LANES])
    }

    /// Lane `i` holds `base + i * stride` (the canonical thread-ID shape).
    #[inline]
    pub fn iota(base: u32, stride: u32) -> Lanes {
        let mut l = [0; LANES];
        for (i, slot) in l.iter_mut().enumerate() {
            *slot = base.wrapping_add(stride.wrapping_mul(i as u32));
        }
        Lanes(l)
    }

    /// Value of lane `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.0[i]
    }

    /// Sets lane `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: u32) {
        self.0[i] = v;
    }

    /// Lane-wise map.
    #[inline]
    pub fn map(&self, f: impl Fn(u32) -> u32) -> Lanes {
        let mut out = [0; LANES];
        for (o, &v) in out.iter_mut().zip(&self.0) {
            *o = f(v);
        }
        Lanes(out)
    }

    /// Lane-wise binary op.
    #[inline]
    pub fn zip(&self, other: &Lanes, f: impl Fn(u32, u32) -> u32) -> Lanes {
        let mut out = [0; LANES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(self.0[i], other.0[i]);
        }
        Lanes(out)
    }

    /// Lane-wise wrapping add.
    #[inline]
    pub fn add(&self, other: &Lanes) -> Lanes {
        self.zip(other, u32::wrapping_add)
    }

    /// Adds a scalar to every lane.
    #[inline]
    pub fn add_scalar(&self, v: u32) -> Lanes {
        self.map(|x| x.wrapping_add(v))
    }

    /// Mask of lanes where `self < other`.
    #[inline]
    pub fn lt(&self, other: &Lanes) -> Mask {
        self.cmp_mask(other, |a, b| a < b)
    }

    /// Mask of lanes where `self > other`.
    #[inline]
    pub fn gt(&self, other: &Lanes) -> Mask {
        self.cmp_mask(other, |a, b| a > b)
    }

    /// Mask of lanes where `self <= other`.
    #[inline]
    pub fn le(&self, other: &Lanes) -> Mask {
        self.cmp_mask(other, |a, b| a <= b)
    }

    /// Mask of lanes where `self == other`.
    #[inline]
    pub fn eq_mask(&self, other: &Lanes) -> Mask {
        self.cmp_mask(other, |a, b| a == b)
    }

    /// Mask of lanes where `self != other`.
    #[inline]
    pub fn ne_mask(&self, other: &Lanes) -> Mask {
        self.cmp_mask(other, |a, b| a != b)
    }

    /// Mask of lanes where `self < v`.
    #[inline]
    pub fn lt_scalar(&self, v: u32) -> Mask {
        let mut m = Mask::NONE;
        for i in 0..LANES {
            m.set(i, self.0[i] < v);
        }
        m
    }

    /// Generic comparison producing a mask.
    #[inline]
    pub fn cmp_mask(&self, other: &Lanes, f: impl Fn(u32, u32) -> bool) -> Mask {
        let mut m = Mask::NONE;
        for i in 0..LANES {
            m.set(i, f(self.0[i], other.0[i]));
        }
        m
    }

    /// Lane-wise select: take `self` where `mask` is set, `other` elsewhere.
    #[inline]
    pub fn select(&self, other: &Lanes, mask: Mask) -> Lanes {
        let mut out = other.0;
        for i in mask.iter() {
            out[i] = self.0[i];
        }
        Lanes(out)
    }

    /// Writes `v` into the lanes selected by `mask`, in place.
    #[inline]
    pub fn assign_masked(&mut self, v: &Lanes, mask: Mask) {
        for i in mask.iter() {
            self.0[i] = v.0[i];
        }
    }

    /// Minimum over the lanes selected by `mask` (None when mask empty).
    #[inline]
    pub fn min_masked(&self, mask: Mask) -> Option<u32> {
        mask.iter().map(|i| self.0[i]).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_first() {
        assert_eq!(Mask::first(0), Mask::NONE);
        assert_eq!(Mask::first(32), Mask::ALL);
        assert_eq!(Mask::first(3).count(), 3);
        assert!(Mask::first(3).lane(2));
        assert!(!Mask::first(3).lane(3));
    }

    #[test]
    fn mask_ops() {
        let a = Mask::first(4);
        let b = Mask(0b1100);
        assert_eq!((a & b).0, 0b1100);
        assert_eq!((a | b).0, 0b1111);
        assert_eq!((!a & a), Mask::NONE);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn iota_and_arith() {
        let t = Lanes::iota(10, 2);
        assert_eq!(t.get(0), 10);
        assert_eq!(t.get(5), 20);
        let u = t.add_scalar(1);
        assert_eq!(u.get(5), 21);
        let sum = t.add(&u);
        assert_eq!(sum.get(5), 41);
    }

    #[test]
    fn comparisons() {
        let a = Lanes::iota(0, 1);
        let b = Lanes::splat(5);
        assert_eq!(a.lt(&b).count(), 5);
        assert_eq!(a.lt_scalar(5).count(), 5);
        assert_eq!(a.eq_mask(&b).count(), 1);
        assert_eq!(a.gt(&b).count(), 32 - 6);
        assert_eq!(a.ne_mask(&b).count(), 31);
        assert_eq!(a.le(&b).count(), 6);
    }

    #[test]
    fn select_and_assign() {
        let a = Lanes::splat(1);
        let b = Lanes::splat(2);
        let m = Mask::first(8);
        let s = a.select(&b, m);
        assert_eq!(s.get(0), 1);
        assert_eq!(s.get(8), 2);
        let mut c = Lanes::splat(0);
        c.assign_masked(&a, m);
        assert_eq!(c.get(7), 1);
        assert_eq!(c.get(8), 0);
    }

    #[test]
    fn min_masked() {
        let a = Lanes::iota(100, 1);
        assert_eq!(a.min_masked(Mask::NONE), None);
        assert_eq!(a.min_masked(Mask(0b1010)), Some(101));
        assert_eq!(a.min_masked(Mask::ALL), Some(100));
    }
}
