//! Warp- and block-level execution contexts.
//!
//! A [`WarpCtx`] is the view a kernel has of one warp: 32 lanes executing
//! in lockstep. Every memory operation takes the active-lane mask, runs the
//! coalescer, charges cycles to the warp's SM, and updates the cache
//! models. A [`BlockCtx`] groups the warps of one thread block for
//! block-granularity kernels (the paper's third compute kernel).
//!
//! Both contexts are built on an [`SmView`]: the slice of device state one
//! simulated SM may touch while executing a warp — its private L1 and
//! cycle counter (exclusive), plus the shared memory/L2 (safe to share).
//! In serial mode the view borrows straight out of the [`crate::Gpu`]; in
//! host-parallel mode each worker thread holds views over its own SMs, so
//! warps on different SMs run concurrently without ever aliasing
//! another SM's exclusive state.

use crate::cache::{Cache, Lookup};
use crate::device::LaunchCounters;
use crate::error::WatchdogAbort;
use crate::fault::{FaultPlan, FaultRng};
use crate::lanes::{Lanes, Mask};
use crate::mem::{DevicePtr, GlobalMemory};
use crate::profile::DeviceProfile;
use crate::LANES;

/// Everything one SM needs to execute a warp: shared device state by
/// reference, exclusive per-SM state by mutable reference. The L2 is
/// exclusive too: serial mode lends out the monolithic cache, and in
/// host-parallel mode each SM owns a private slice of the modelled L2
/// capacity — no lock is ever taken on a memory access.
pub(crate) struct SmView<'a> {
    pub(crate) mem: &'a GlobalMemory,
    pub(crate) l2: &'a mut Cache,
    pub(crate) l1: &'a mut Cache,
    pub(crate) cycles: &'a mut u64,
    pub(crate) launch_start: u64,
    pub(crate) watchdog: Option<u64>,
    pub(crate) counters: &'a mut LaunchCounters,
    pub(crate) fault: FaultPlan,
    pub(crate) rng: &'a mut FaultRng,
    pub(crate) profile: &'a DeviceProfile,
    pub(crate) sm: usize,
}

impl SmView<'_> {
    /// A shorter-lived view over the same SM (for nesting contexts).
    pub(crate) fn reborrow(&mut self) -> SmView<'_> {
        SmView {
            mem: self.mem,
            l2: &mut *self.l2,
            l1: &mut *self.l1,
            cycles: &mut *self.cycles,
            launch_start: self.launch_start,
            watchdog: self.watchdog,
            counters: &mut *self.counters,
            fault: self.fault,
            rng: &mut *self.rng,
            profile: self.profile,
            sm: self.sm,
        }
    }

    /// Adds `cycles` to this SM's busy counter, aborting the launch when an
    /// armed watchdog's budget is exhausted. Every cycle-charging site in
    /// the warp context funnels through here, so a livelocked kernel trips
    /// the watchdog no matter which operation it spins on — and in
    /// host-parallel mode the budget is checked against this SM's own
    /// counter, so the check needs no cross-thread state.
    #[inline]
    pub(crate) fn charge(&mut self, cycles: u64) {
        *self.cycles += cycles;
        if let Some(budget) = self.watchdog {
            let spent = *self.cycles - self.launch_start;
            if spent > budget {
                std::panic::panic_any(WatchdogAbort { budget, spent });
            }
        }
    }
}

/// Execution context of one warp.
pub struct WarpCtx<'a> {
    view: SmView<'a>,
    base_gid: u32,
    total_threads: u32,
    launch_mask: Mask,
}

impl<'a> WarpCtx<'a> {
    pub(crate) fn new(
        view: SmView<'a>,
        base_gid: u32,
        total_threads: u32,
        launch_mask: Mask,
    ) -> Self {
        WarpCtx {
            view,
            base_gid,
            total_threads,
            launch_mask,
        }
    }

    /// Global thread ID per lane (`base + lane`).
    #[inline]
    pub fn thread_ids(&self) -> Lanes {
        Lanes::iota(self.base_gid, 1)
    }

    /// Lanes that correspond to launched threads (the tail warp of a
    /// launch may be partial).
    #[inline]
    pub fn launch_mask(&self) -> Mask {
        self.launch_mask
    }

    /// Total threads in the launch (the grid-stride step).
    #[inline]
    pub fn total_threads(&self) -> u32 {
        self.total_threads
    }

    /// SM this warp is resident on.
    #[inline]
    pub fn sm(&self) -> usize {
        self.view.sm
    }

    /// Charges `n` warp ALU instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        let cost = n * self.view.profile.alu_cycles;
        self.view.charge(cost);
        self.view.counters.instructions += n;
        self.view.counters.alu_cycles += cost;
    }

    /// Divergence bookkeeping for one masked warp instruction. Pure
    /// counting — no cycles, no cache traffic, no RNG draws — so the
    /// golden serial timing record is unaffected.
    #[inline]
    fn note_mask(&mut self, mask: Mask) {
        let c = &mut *self.view.counters;
        c.mask_ops += 1;
        c.active_lanes += mask.count() as u64;
        if mask == Mask::ALL {
            c.full_mask_ops += 1;
        }
    }

    /// Gathers `ptr[idx[lane]]` for every active lane. Inactive lanes
    /// return 0. Addresses are coalesced into sector transactions.
    pub fn load(&mut self, ptr: DevicePtr, idx: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        if mask.none() {
            return out;
        }
        self.note_mask(mask);
        self.issue_transactions(ptr, idx, mask, false);
        for lane in mask.iter() {
            out.set(lane, self.view.mem.read(ptr, idx.get(lane) as usize));
        }
        self.view.counters.instructions += 1;
        out
    }

    /// Scatters `vals[lane]` to `ptr[idx[lane]]` for every active lane.
    /// When several lanes target the same element, the highest lane wins
    /// (CUDA leaves the winner unspecified; fixing it keeps the simulator
    /// deterministic).
    pub fn store(&mut self, ptr: DevicePtr, idx: &Lanes, vals: &Lanes, mask: Mask) {
        if mask.none() {
            return;
        }
        self.note_mask(mask);
        self.issue_transactions(ptr, idx, mask, true);
        for lane in mask.iter() {
            self.view
                .mem
                .write(ptr, idx.get(lane) as usize, vals.get(lane));
        }
        self.view.counters.instructions += 1;
    }

    /// Warp-uniform load of a single element (one transaction, value
    /// broadcast to the caller).
    pub fn load_uniform(&mut self, ptr: DevicePtr, idx: u32) -> u32 {
        let lanes = Lanes::splat(idx);
        self.note_mask(Mask(1));
        self.issue_transactions(ptr, &lanes, Mask(1), false);
        self.view.counters.instructions += 1;
        self.view.mem.read(ptr, idx as usize)
    }

    /// Per-lane `atomicCAS(&ptr[idx], cmp, new)`, serialized in lane order
    /// (resolved at the L2, as on hardware — and in host-parallel mode
    /// backed by a real compare-exchange, so cross-SM races behave like
    /// the machine's). Returns the old value each lane observed.
    pub fn atomic_cas(
        &mut self,
        ptr: DevicePtr,
        idx: &Lanes,
        cmp: &Lanes,
        new: &Lanes,
        mask: Mask,
    ) -> Lanes {
        let mut out = Lanes::default();
        if mask.any() {
            self.note_mask(mask);
        }
        let cas_fault = self.view.fault.cas_spurious_permille;
        let mut cost = 0;
        for lane in mask.iter() {
            let i = idx.get(lane) as usize;
            let cmpv = cmp.get(lane);
            let newv = new.get(lane);
            let old = self.view.mem.cas(ptr, i, cmpv, newv);
            if old == cmpv {
                // Spurious-contention injection: the update lands, but the
                // lane observes the post-write value — the exact state it
                // would see had an identical-intent competitor won the race
                // one atomic earlier. Memory and the returned "old" value
                // stay mutually consistent, and the caller's retry path runs.
                if cas_fault > 0 && newv != cmpv && self.view.rng.chance(cas_fault) {
                    out.set(lane, newv);
                } else {
                    out.set(lane, old);
                }
            } else {
                out.set(lane, old);
            }
            // Contention bookkeeping: a lane "failed" when the value it
            // observed differs from its comparand (lost races and injected
            // spurious failures alike — both send the caller around its
            // retry loop).
            self.view.counters.cas_attempts += 1;
            if out.get(lane) != cmpv {
                self.view.counters.cas_failures += 1;
            }
            cost += self.atomic_transaction(ptr, idx.get(lane));
        }
        self.view.charge(cost);
        self.view.counters.instructions += 1;
        out
    }

    /// Per-lane `atomicAdd(&ptr[idx], val)`, serialized in lane order.
    /// Returns the pre-add value each lane observed.
    pub fn atomic_add(&mut self, ptr: DevicePtr, idx: &Lanes, val: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        if mask.any() {
            self.note_mask(mask);
        }
        let mut cost = 0;
        for lane in mask.iter() {
            let i = idx.get(lane) as usize;
            out.set(lane, self.view.mem.fetch_add(ptr, i, val.get(lane)));
            cost += self.atomic_transaction(ptr, idx.get(lane));
        }
        self.view.charge(cost);
        self.view.counters.instructions += 1;
        out
    }

    /// Per-lane `atomicMin(&ptr[idx], val)`; returns pre-min values.
    pub fn atomic_min(&mut self, ptr: DevicePtr, idx: &Lanes, val: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        if mask.any() {
            self.note_mask(mask);
        }
        let mut cost = 0;
        for lane in mask.iter() {
            let i = idx.get(lane) as usize;
            out.set(lane, self.view.mem.fetch_min(ptr, i, val.get(lane)));
            cost += self.atomic_transaction(ptr, idx.get(lane));
        }
        self.view.charge(cost);
        self.view.counters.instructions += 1;
        out
    }

    /// Warp shuffle: lane `i` receives the value of lane `src_lane.get(i) % 32`
    /// (like CUDA `__shfl_sync`). Register traffic only — no memory cost.
    pub fn shfl(&mut self, vals: &Lanes, src_lane: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        for lane in mask.iter() {
            out.set(lane, vals.get(src_lane.get(lane) as usize % LANES));
        }
        self.alu(1);
        out
    }

    /// Warp-wide minimum over the active lanes (butterfly reduction,
    /// log2(32) = 5 instructions). Returns `u32::MAX` when no lane is
    /// active.
    pub fn reduce_min(&mut self, vals: &Lanes, mask: Mask) -> u32 {
        self.alu(5);
        mask.iter().map(|l| vals.get(l)).min().unwrap_or(u32::MAX)
    }

    /// Warp-wide wrapping sum over the active lanes (butterfly reduction).
    pub fn reduce_add(&mut self, vals: &Lanes, mask: Mask) -> u32 {
        self.alu(5);
        mask.iter().fold(0u32, |a, l| a.wrapping_add(vals.get(l)))
    }

    /// Exclusive prefix sum over the active lanes, in lane order: each
    /// active lane receives the sum of the active lanes before it
    /// (inactive lanes receive 0). The building block of warp-level
    /// compaction (Gunrock-style filters use the block-level analogue).
    pub fn exclusive_scan_add(&mut self, vals: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        let mut acc = 0u32;
        for lane in mask.iter() {
            out.set(lane, acc);
            acc = acc.wrapping_add(vals.get(lane));
        }
        self.alu(5);
        out
    }

    /// Untimed, uncounted read of one element — **instrumentation only**
    /// (e.g. the path-length probe behind the paper's Table 4). Does not
    /// touch the caches, charge cycles, or count as an instruction.
    #[inline]
    pub fn peek(&self, ptr: DevicePtr, idx: u32) -> u32 {
        self.view.mem.read(ptr, idx as usize)
    }

    /// Models one lane's atomic at the memory system and returns its cycle
    /// cost. Cycles are accumulated by the caller and charged once per
    /// warp instruction (the sum — and therefore every observable cycle
    /// count — is identical to per-transaction charging; only the
    /// watchdog's trip point within an instruction can shift, and no
    /// contract pins that).
    fn atomic_transaction(&mut self, ptr: DevicePtr, idx: u32) -> u64 {
        let addr = ptr.byte_addr(idx as usize);
        // Atomics bypass L1 and are resolved at L2 as one read-modify-write.
        let l2r = self.view.l2.access(addr, false);
        if matches!(l2r, Lookup::Miss { .. }) {
            self.view.counters.dram += 1;
        }
        let _ = self.view.l2.access(addr, true);
        self.view.counters.atomics += 1;
        let delay = self.injected_delay();
        self.view.counters.atomic_cycles += self.view.profile.atomic_cycles;
        self.view.counters.stall_cycles += delay;
        self.view.profile.atomic_cycles + delay
    }

    /// Extra cycles for this transaction under a memory-delay fault plan
    /// (0 when the plan injects no delays).
    #[inline]
    fn injected_delay(&mut self) -> u64 {
        let p = self.view.fault.mem_delay_permille;
        if p > 0 && self.view.rng.chance(p) {
            self.view.fault.mem_delay_cycles
        } else {
            0
        }
    }

    /// Runs the coalescer for one warp memory instruction and charges the
    /// resulting transactions through the cache hierarchy. Transactions
    /// are issued in first-occurrence lane order — the cache models' LRU
    /// state is order-sensitive, so the dedup must never reorder — and
    /// cycles/counters are accumulated locally and charged once for the
    /// whole instruction.
    fn issue_transactions(&mut self, ptr: DevicePtr, idx: &Lanes, mask: Mask, is_write: bool) {
        let sector = self.view.profile.sector_bytes as u64;
        // Sector-align each lane's byte address. All real profiles use a
        // power-of-two sector, turning the division into a mask.
        let align_mask = if sector.is_power_of_two() {
            !(sector - 1)
        } else {
            0
        };
        // Collect distinct sector addresses across active lanes in
        // first-occurrence order. 32 lanes touch at most 32 sectors; a
        // fixed scratch array avoids allocation, and the dominant
        // coalesced pattern (runs of adjacent lanes in one sector) is
        // caught by the compare against the last emitted sector before
        // falling back to the linear scan.
        let mut sectors = [u64::MAX; LANES];
        let mut count = 0;
        for lane in mask.iter() {
            let b = ptr.byte_addr(idx.get(lane) as usize);
            let a = if align_mask != 0 {
                b & align_mask
            } else {
                b / sector * sector
            };
            if count > 0 && sectors[count - 1] == a {
                continue;
            }
            if !sectors[..count].contains(&a) {
                sectors[count] = a;
                count += 1;
            }
        }
        let prof_l1 = self.view.profile.l1_hit_cycles;
        let prof_l2 = self.view.profile.l2_hit_cycles;
        let prof_dram = self.view.profile.dram_cycles;
        // Cycle cost is accumulated per service level (L1/L2/DRAM, plus
        // fault-injected stalls) so launch stats can attribute occupancy;
        // the charged total — and the RNG draw sequence behind
        // `injected_delay` — is exactly the same as before the split.
        let mut l1_cyc = 0;
        let mut l2_cyc = 0;
        let mut dram_cyc = 0;
        let mut stall = 0;
        let mut l1_hits = 0;
        let mut dram = 0;
        for &addr in &sectors[..count] {
            match self.view.l1.access(addr, is_write) {
                Lookup::Hit => {
                    l1_hits += 1;
                    l1_cyc += prof_l1;
                    stall += self.injected_delay();
                }
                Lookup::Miss { evicted_dirty } => {
                    // Fill from L2 (write-allocate: stores also fill).
                    let l2r = self.view.l2.access(addr, false);
                    match l2r {
                        Lookup::Hit => l2_cyc += prof_l2,
                        Lookup::Miss { .. } => {
                            dram += 1;
                            dram_cyc += prof_dram;
                        }
                    }
                    stall += self.injected_delay();
                    // Dirty sectors evicted from L1 are L2 write accesses.
                    for _ in 0..evicted_dirty {
                        let _ = self.view.l2.access(addr, true);
                    }
                }
            }
        }
        let counters = &mut *self.view.counters;
        counters.l1_hits += l1_hits;
        counters.dram += dram;
        counters.l1_cycles += l1_cyc;
        counters.l2_cycles += l2_cyc;
        counters.dram_cycles += dram_cyc;
        counters.stall_cycles += stall;
        self.view.charge(l1_cyc + l2_cyc + dram_cyc + stall);
    }
}

/// Execution context of one thread block (for block-granularity kernels).
pub struct BlockCtx<'a> {
    view: SmView<'a>,
    block_idx: usize,
    num_blocks: usize,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(view: SmView<'a>, block_idx: usize, num_blocks: usize) -> Self {
        BlockCtx {
            view,
            block_idx,
            num_blocks,
        }
    }

    /// Index of this block in the launch.
    pub fn block_idx(&self) -> usize {
        self.block_idx
    }

    /// Number of blocks in the launch.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Threads per block on this device.
    pub fn threads_per_block(&self) -> usize {
        self.view.profile.threads_per_block
    }

    /// Runs `body` once per warp of this block, in warp order. Warps run
    /// to completion sequentially, which is equivalent to hardware for
    /// kernels without intra-block synchronization (ECL-CC's kernels have
    /// none).
    pub fn for_each_warp<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut WarpCtx),
    {
        let warps = self.view.profile.warps_per_block();
        let tpb = self.view.profile.threads_per_block as u32;
        for w in 0..warps {
            let base = self.block_idx as u32 * tpb + (w * LANES) as u32;
            let mut ctx = WarpCtx::new(self.view.reborrow(), base, tpb, Mask::ALL);
            body(&mut ctx);
            self.view.counters.warps += 1;
        }
    }

    /// Warp-uniform load performed once at block scope (e.g. reading this
    /// block's worklist entry).
    pub fn load_uniform(&mut self, ptr: DevicePtr, idx: u32) -> u32 {
        // Base thread ID is irrelevant for a single-lane uniform load.
        let mut ctx = WarpCtx::new(self.view.reborrow(), 0, 1, Mask(1));
        ctx.load_uniform(ptr, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Gpu;
    use crate::profile::DeviceProfile;

    #[test]
    fn load_inactive_lanes_untouched() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let buf = gpu.alloc_from(&[7; 32]);
        gpu.launch_warps("t", 32, |w| {
            let v = w.load(buf, &w.thread_ids(), Mask::first(4));
            assert_eq!(v.get(0), 7);
            assert_eq!(v.get(4), 0, "inactive lane must read nothing");
        });
    }

    #[test]
    fn store_conflict_resolved_deterministically() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let buf = gpu.alloc(1);
        gpu.launch_warps("t", 32, |w| {
            let vals = w.thread_ids();
            w.store(buf, &Lanes::splat(0), &vals, Mask::ALL);
        });
        assert_eq!(gpu.download(buf)[0], 31, "highest lane wins");
    }

    #[test]
    fn atomic_min_takes_minimum() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let buf = gpu.alloc_from(&[100]);
        gpu.launch_warps("t", 32, |w| {
            let vals = w.thread_ids().add_scalar(3);
            let _ = w.atomic_min(buf, &Lanes::splat(0), &vals, Mask::ALL);
        });
        assert_eq!(gpu.download(buf)[0], 3);
    }

    #[test]
    fn coalescer_counts_sectors_not_lanes() {
        let mut gpu = Gpu::new(DeviceProfile::titan_x());
        let buf = gpu.alloc(64);
        let k = gpu.launch_warps("t", 32, |w| {
            // All 32 lanes read consecutive words: 32 * 4 B = 128 B = 4
            // sectors → 4 transactions, all L2 reads (cold L1).
            let _ = w.load(buf, &w.thread_ids(), Mask::ALL);
        });
        assert_eq!(k.l2_read_accesses, 4);
    }

    #[test]
    fn uniform_load_single_transaction() {
        let mut gpu = Gpu::new(DeviceProfile::titan_x());
        let buf = gpu.alloc_from(&[5, 6, 7]);
        gpu.launch_warps("t", 32, |w| {
            assert_eq!(w.load_uniform(buf, 2), 7);
        });
        assert_eq!(gpu.kernel_stats()[0].l2_read_accesses, 1);
    }

    #[test]
    fn shfl_broadcast_and_rotate() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.launch_warps("t", 32, |w| {
            let vals = w.thread_ids();
            // Broadcast lane 5 to everyone.
            let b = w.shfl(&vals, &Lanes::splat(5), Mask::ALL);
            assert_eq!(b, Lanes::splat(5));
            // Rotate by one.
            let idx = Lanes::iota(1, 1); // lane 31 reads 32 % 32 = 0
            let r = w.shfl(&vals, &idx, Mask::ALL);
            assert_eq!(r.get(0), 1);
            assert_eq!(r.get(31), 0);
        });
    }

    #[test]
    fn warp_reductions() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.launch_warps("t", 32, |w| {
            let vals = w.thread_ids().add_scalar(10);
            assert_eq!(w.reduce_min(&vals, Mask::ALL), 10);
            assert_eq!(w.reduce_min(&vals, Mask(0b1000)), 13);
            assert_eq!(w.reduce_min(&vals, Mask::NONE), u32::MAX);
            assert_eq!(w.reduce_add(&Lanes::splat(2), Mask::ALL), 64);
            assert_eq!(w.reduce_add(&Lanes::splat(2), Mask::first(5)), 10);
        });
    }

    #[test]
    fn warp_scan_compaction_pattern() {
        // The canonical use: exclusive scan of 0/1 flags gives each
        // surviving lane its output slot.
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.launch_warps("t", 32, |w| {
            let keep = Mask(0b1011_0110);
            let ones = Lanes::splat(1);
            let slots = w.exclusive_scan_add(&ones, keep);
            let expected: Vec<u32> = (0..keep.count() as u32).collect();
            let got: Vec<u32> = keep.iter().map(|l| slots.get(l)).collect();
            assert_eq!(got, expected);
        });
    }

    #[test]
    fn block_ctx_warp_ids() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny()); // 64 threads/block
        let mut seen = Vec::new();
        gpu.launch_blocks("t", 3, |b| {
            let bi = b.block_idx() as u32;
            b.for_each_warp(|w| {
                let first = w.thread_ids().get(0);
                assert_eq!(w.total_threads(), 64);
                assert!(first / 64 == bi);
            });
            seen.push(b.block_idx());
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
