//! Warp- and block-level execution contexts.
//!
//! A [`WarpCtx`] is the view a kernel has of one warp: 32 lanes executing
//! in lockstep. Every memory operation takes the active-lane mask, runs the
//! coalescer, charges cycles to the warp's SM, and updates the cache
//! models. A [`BlockCtx`] groups the warps of one thread block for
//! block-granularity kernels (the paper's third compute kernel).

use crate::cache::Lookup;
use crate::device::Gpu;
use crate::lanes::{Lanes, Mask};
use crate::mem::DevicePtr;
use crate::LANES;

/// Execution context of one warp.
pub struct WarpCtx<'a> {
    gpu: &'a mut Gpu,
    sm: usize,
    base_gid: u32,
    total_threads: u32,
    launch_mask: Mask,
}

impl<'a> WarpCtx<'a> {
    pub(crate) fn new(
        gpu: &'a mut Gpu,
        sm: usize,
        base_gid: u32,
        total_threads: u32,
        launch_mask: Mask,
    ) -> Self {
        WarpCtx {
            gpu,
            sm,
            base_gid,
            total_threads,
            launch_mask,
        }
    }

    /// Global thread ID per lane (`base + lane`).
    #[inline]
    pub fn thread_ids(&self) -> Lanes {
        Lanes::iota(self.base_gid, 1)
    }

    /// Lanes that correspond to launched threads (the tail warp of a
    /// launch may be partial).
    #[inline]
    pub fn launch_mask(&self) -> Mask {
        self.launch_mask
    }

    /// Total threads in the launch (the grid-stride step).
    #[inline]
    pub fn total_threads(&self) -> u32 {
        self.total_threads
    }

    /// SM this warp is resident on.
    #[inline]
    pub fn sm(&self) -> usize {
        self.sm
    }

    /// Charges `n` warp ALU instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.gpu.charge(self.sm, n * self.gpu.profile.alu_cycles);
        self.gpu.cur.instructions += n;
    }

    /// Gathers `ptr[idx[lane]]` for every active lane. Inactive lanes
    /// return 0. Addresses are coalesced into sector transactions.
    pub fn load(&mut self, ptr: DevicePtr, idx: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        if mask.none() {
            return out;
        }
        self.issue_transactions(ptr, idx, mask, false);
        for lane in mask.iter() {
            out.set(lane, self.gpu.mem.read(ptr, idx.get(lane) as usize));
        }
        self.gpu.cur.instructions += 1;
        out
    }

    /// Scatters `vals[lane]` to `ptr[idx[lane]]` for every active lane.
    /// When several lanes target the same element, the highest lane wins
    /// (CUDA leaves the winner unspecified; fixing it keeps the simulator
    /// deterministic).
    pub fn store(&mut self, ptr: DevicePtr, idx: &Lanes, vals: &Lanes, mask: Mask) {
        if mask.none() {
            return;
        }
        self.issue_transactions(ptr, idx, mask, true);
        for lane in mask.iter() {
            self.gpu
                .mem
                .write(ptr, idx.get(lane) as usize, vals.get(lane));
        }
        self.gpu.cur.instructions += 1;
    }

    /// Warp-uniform load of a single element (one transaction, value
    /// broadcast to the caller).
    pub fn load_uniform(&mut self, ptr: DevicePtr, idx: u32) -> u32 {
        let lanes = Lanes::splat(idx);
        self.issue_transactions(ptr, &lanes, Mask(1), false);
        self.gpu.cur.instructions += 1;
        self.gpu.mem.read(ptr, idx as usize)
    }

    /// Per-lane `atomicCAS(&ptr[idx], cmp, new)`, serialized in lane order
    /// (resolved at the L2, as on hardware). Returns the old value each
    /// lane observed.
    pub fn atomic_cas(
        &mut self,
        ptr: DevicePtr,
        idx: &Lanes,
        cmp: &Lanes,
        new: &Lanes,
        mask: Mask,
    ) -> Lanes {
        let mut out = Lanes::default();
        let cas_fault = self.gpu.fault.cas_spurious_permille;
        for lane in mask.iter() {
            let i = idx.get(lane) as usize;
            let old = self.gpu.mem.read(ptr, i);
            if old == cmp.get(lane) {
                self.gpu.mem.write(ptr, i, new.get(lane));
                // Spurious-contention injection: the update lands, but the
                // lane observes the post-write value — the exact state it
                // would see had an identical-intent competitor won the race
                // one atomic earlier. Memory and the returned "old" value
                // stay mutually consistent, and the caller's retry path runs.
                if cas_fault > 0
                    && new.get(lane) != cmp.get(lane)
                    && self.gpu.fault_rng.chance(cas_fault)
                {
                    out.set(lane, new.get(lane));
                } else {
                    out.set(lane, old);
                }
            } else {
                out.set(lane, old);
            }
            self.charge_atomic(ptr, idx.get(lane));
        }
        self.gpu.cur.instructions += 1;
        out
    }

    /// Per-lane `atomicAdd(&ptr[idx], val)`, serialized in lane order.
    /// Returns the pre-add value each lane observed.
    pub fn atomic_add(&mut self, ptr: DevicePtr, idx: &Lanes, val: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        for lane in mask.iter() {
            let i = idx.get(lane) as usize;
            let old = self.gpu.mem.read(ptr, i);
            out.set(lane, old);
            self.gpu.mem.write(ptr, i, old.wrapping_add(val.get(lane)));
            self.charge_atomic(ptr, idx.get(lane));
        }
        self.gpu.cur.instructions += 1;
        out
    }

    /// Per-lane `atomicMin(&ptr[idx], val)`; returns pre-min values.
    pub fn atomic_min(&mut self, ptr: DevicePtr, idx: &Lanes, val: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        for lane in mask.iter() {
            let i = idx.get(lane) as usize;
            let old = self.gpu.mem.read(ptr, i);
            out.set(lane, old);
            if val.get(lane) < old {
                self.gpu.mem.write(ptr, i, val.get(lane));
            }
            self.charge_atomic(ptr, idx.get(lane));
        }
        self.gpu.cur.instructions += 1;
        out
    }

    /// Warp shuffle: lane `i` receives the value of lane `src_lane.get(i) % 32`
    /// (like CUDA `__shfl_sync`). Register traffic only — no memory cost.
    pub fn shfl(&mut self, vals: &Lanes, src_lane: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        for lane in mask.iter() {
            out.set(lane, vals.get(src_lane.get(lane) as usize % LANES));
        }
        self.alu(1);
        out
    }

    /// Warp-wide minimum over the active lanes (butterfly reduction,
    /// log2(32) = 5 instructions). Returns `u32::MAX` when no lane is
    /// active.
    pub fn reduce_min(&mut self, vals: &Lanes, mask: Mask) -> u32 {
        self.alu(5);
        mask.iter().map(|l| vals.get(l)).min().unwrap_or(u32::MAX)
    }

    /// Warp-wide wrapping sum over the active lanes (butterfly reduction).
    pub fn reduce_add(&mut self, vals: &Lanes, mask: Mask) -> u32 {
        self.alu(5);
        mask.iter().fold(0u32, |a, l| a.wrapping_add(vals.get(l)))
    }

    /// Exclusive prefix sum over the active lanes, in lane order: each
    /// active lane receives the sum of the active lanes before it
    /// (inactive lanes receive 0). The building block of warp-level
    /// compaction (Gunrock-style filters use the block-level analogue).
    pub fn exclusive_scan_add(&mut self, vals: &Lanes, mask: Mask) -> Lanes {
        let mut out = Lanes::default();
        let mut acc = 0u32;
        for lane in mask.iter() {
            out.set(lane, acc);
            acc = acc.wrapping_add(vals.get(lane));
        }
        self.alu(5);
        out
    }

    /// Untimed, uncounted read of one element — **instrumentation only**
    /// (e.g. the path-length probe behind the paper's Table 4). Does not
    /// touch the caches, charge cycles, or count as an instruction.
    #[inline]
    pub fn peek(&self, ptr: DevicePtr, idx: u32) -> u32 {
        self.gpu.mem.read(ptr, idx as usize)
    }

    fn charge_atomic(&mut self, ptr: DevicePtr, idx: u32) {
        let addr = ptr.byte_addr(idx as usize);
        // Atomics bypass L1 and are resolved at L2 as one read-modify-write.
        let l2r = self.gpu.l2.access(addr, false);
        if matches!(l2r, Lookup::Miss { .. }) {
            self.gpu.cur.dram += 1;
        }
        let _ = self.gpu.l2.access(addr, true);
        let mut cost = self.gpu.profile.atomic_cycles;
        cost += self.injected_delay();
        self.gpu.charge(self.sm, cost);
        self.gpu.cur.atomics += 1;
    }

    /// Extra cycles for this transaction under a memory-delay fault plan
    /// (0 when the plan injects no delays).
    #[inline]
    fn injected_delay(&mut self) -> u64 {
        let p = self.gpu.fault.mem_delay_permille;
        if p > 0 && self.gpu.fault_rng.chance(p) {
            self.gpu.fault.mem_delay_cycles
        } else {
            0
        }
    }

    /// Runs the coalescer for one warp memory instruction and charges the
    /// resulting transactions through the cache hierarchy.
    fn issue_transactions(&mut self, ptr: DevicePtr, idx: &Lanes, mask: Mask, is_write: bool) {
        let sector = self.gpu.l2.sector_bytes();
        // Collect distinct sector addresses across active lanes. 32 lanes
        // touch at most 32 sectors; a fixed array avoids allocation.
        let mut sectors = [u64::MAX; LANES];
        let mut count = 0;
        for lane in mask.iter() {
            let a = ptr.byte_addr(idx.get(lane) as usize) / sector * sector;
            if !sectors[..count].contains(&a) {
                sectors[count] = a;
                count += 1;
            }
        }
        let prof_l1 = self.gpu.profile.l1_hit_cycles;
        let prof_l2 = self.gpu.profile.l2_hit_cycles;
        let prof_dram = self.gpu.profile.dram_cycles;
        for &addr in &sectors[..count] {
            let l1 = &mut self.gpu.l1[self.sm];
            match l1.access(addr, is_write) {
                Lookup::Hit => {
                    self.gpu.cur.l1_hits += 1;
                    let cost = prof_l1 + self.injected_delay();
                    self.gpu.charge(self.sm, cost);
                }
                Lookup::Miss { evicted_dirty } => {
                    // Fill from L2 (write-allocate: stores also fill).
                    let l2r = self.gpu.l2.access(addr, false);
                    let mut cost = match l2r {
                        Lookup::Hit => prof_l2,
                        Lookup::Miss { .. } => {
                            self.gpu.cur.dram += 1;
                            prof_dram
                        }
                    };
                    cost += self.injected_delay();
                    self.gpu.charge(self.sm, cost);
                    // Dirty sectors evicted from L1 are L2 write accesses.
                    for _ in 0..evicted_dirty {
                        let _ = self.gpu.l2.access(addr, true);
                    }
                }
            }
        }
    }
}

/// Execution context of one thread block (for block-granularity kernels).
pub struct BlockCtx<'a> {
    gpu: &'a mut Gpu,
    sm: usize,
    block_idx: usize,
    num_blocks: usize,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(gpu: &'a mut Gpu, sm: usize, block_idx: usize, num_blocks: usize) -> Self {
        BlockCtx {
            gpu,
            sm,
            block_idx,
            num_blocks,
        }
    }

    /// Index of this block in the launch.
    pub fn block_idx(&self) -> usize {
        self.block_idx
    }

    /// Number of blocks in the launch.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// Threads per block on this device.
    pub fn threads_per_block(&self) -> usize {
        self.gpu.profile().threads_per_block
    }

    /// Runs `body` once per warp of this block, in warp order. Warps run
    /// to completion sequentially, which is equivalent to hardware for
    /// kernels without intra-block synchronization (ECL-CC's kernels have
    /// none).
    pub fn for_each_warp<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut WarpCtx),
    {
        let warps = self.gpu.profile().warps_per_block();
        let tpb = self.gpu.profile().threads_per_block as u32;
        for w in 0..warps {
            let base = self.block_idx as u32 * tpb + (w * LANES) as u32;
            let mut ctx = WarpCtx::new(self.gpu, self.sm, base, tpb, Mask::ALL);
            body(&mut ctx);
            self.gpu.cur.warps += 1;
        }
    }

    /// Warp-uniform load performed once at block scope (e.g. reading this
    /// block's worklist entry).
    pub fn load_uniform(&mut self, ptr: DevicePtr, idx: u32) -> u32 {
        // Base thread ID is irrelevant for a single-lane uniform load.
        let mut ctx = WarpCtx::new(self.gpu, self.sm, 0, 1, Mask(1));
        ctx.load_uniform(ptr, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    #[test]
    fn load_inactive_lanes_untouched() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let buf = gpu.alloc_from(&[7; 32]);
        gpu.launch_warps("t", 32, |w| {
            let v = w.load(buf, &w.thread_ids(), Mask::first(4));
            assert_eq!(v.get(0), 7);
            assert_eq!(v.get(4), 0, "inactive lane must read nothing");
        });
    }

    #[test]
    fn store_conflict_resolved_deterministically() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let buf = gpu.alloc(1);
        gpu.launch_warps("t", 32, |w| {
            let vals = w.thread_ids();
            w.store(buf, &Lanes::splat(0), &vals, Mask::ALL);
        });
        assert_eq!(gpu.download(buf)[0], 31, "highest lane wins");
    }

    #[test]
    fn atomic_min_takes_minimum() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let buf = gpu.alloc_from(&[100]);
        gpu.launch_warps("t", 32, |w| {
            let vals = w.thread_ids().add_scalar(3);
            let _ = w.atomic_min(buf, &Lanes::splat(0), &vals, Mask::ALL);
        });
        assert_eq!(gpu.download(buf)[0], 3);
    }

    #[test]
    fn coalescer_counts_sectors_not_lanes() {
        let mut gpu = Gpu::new(DeviceProfile::titan_x());
        let buf = gpu.alloc(64);
        let k = gpu.launch_warps("t", 32, |w| {
            // All 32 lanes read consecutive words: 32 * 4 B = 128 B = 4
            // sectors → 4 transactions, all L2 reads (cold L1).
            let _ = w.load(buf, &w.thread_ids(), Mask::ALL);
        });
        assert_eq!(k.l2_read_accesses, 4);
    }

    #[test]
    fn uniform_load_single_transaction() {
        let mut gpu = Gpu::new(DeviceProfile::titan_x());
        let buf = gpu.alloc_from(&[5, 6, 7]);
        gpu.launch_warps("t", 32, |w| {
            assert_eq!(w.load_uniform(buf, 2), 7);
        });
        assert_eq!(gpu.kernel_stats()[0].l2_read_accesses, 1);
    }

    #[test]
    fn shfl_broadcast_and_rotate() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.launch_warps("t", 32, |w| {
            let vals = w.thread_ids();
            // Broadcast lane 5 to everyone.
            let b = w.shfl(&vals, &Lanes::splat(5), Mask::ALL);
            assert_eq!(b, Lanes::splat(5));
            // Rotate by one.
            let idx = Lanes::iota(1, 1); // lane 31 reads 32 % 32 = 0
            let r = w.shfl(&vals, &idx, Mask::ALL);
            assert_eq!(r.get(0), 1);
            assert_eq!(r.get(31), 0);
        });
    }

    #[test]
    fn warp_reductions() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.launch_warps("t", 32, |w| {
            let vals = w.thread_ids().add_scalar(10);
            assert_eq!(w.reduce_min(&vals, Mask::ALL), 10);
            assert_eq!(w.reduce_min(&vals, Mask(0b1000)), 13);
            assert_eq!(w.reduce_min(&vals, Mask::NONE), u32::MAX);
            assert_eq!(w.reduce_add(&Lanes::splat(2), Mask::ALL), 64);
            assert_eq!(w.reduce_add(&Lanes::splat(2), Mask::first(5)), 10);
        });
    }

    #[test]
    fn warp_scan_compaction_pattern() {
        // The canonical use: exclusive scan of 0/1 flags gives each
        // surviving lane its output slot.
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        gpu.launch_warps("t", 32, |w| {
            let keep = Mask(0b1011_0110);
            let ones = Lanes::splat(1);
            let slots = w.exclusive_scan_add(&ones, keep);
            let expected: Vec<u32> = (0..keep.count() as u32).collect();
            let got: Vec<u32> = keep.iter().map(|l| slots.get(l)).collect();
            assert_eq!(got, expected);
        });
    }

    #[test]
    fn block_ctx_warp_ids() {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny()); // 64 threads/block
        let mut seen = Vec::new();
        gpu.launch_blocks("t", 3, |b| {
            let bi = b.block_idx() as u32;
            b.for_each_warp(|w| {
                let first = w.thread_ids().get(0);
                assert_eq!(w.total_threads(), 64);
                assert!(first / 64 == bi);
            });
            seen.push(b.block_idx());
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
