//! A deterministic SIMT GPU simulator.
//!
//! The paper evaluates ECL-CC as CUDA kernels on a GeForce GTX Titan X and
//! a Tesla K40c. This environment has neither a GPU nor a CUDA toolchain,
//! so the workspace substitutes this simulator (see DESIGN.md): kernels are
//! written in an explicit *warp-vector* style — every operation is applied
//! across the 32 lanes of a warp under an active-lane [`Mask`] — which
//! mechanistically reproduces the phenomena the paper's GPU experiments
//! measure:
//!
//! * **Lockstep execution & divergence** — divergent loops are written as
//!   `while mask.any()` loops, so a warp pays for its slowest lane exactly
//!   as SIMT hardware does.
//! * **Memory coalescing** — per-lane addresses are grouped into 32-byte
//!   sectors; each distinct sector is one cache transaction.
//! * **Cache behaviour** — per-SM L1 caches (write-back, write-allocate)
//!   in front of a shared L2, both sectored LRU; the simulator counts L1/L2
//!   read and write accesses, which regenerates the paper's Table 3.
//! * **Atomics** — `atomicCAS`/`atomicAdd` are resolved at the L2 (as on
//!   real GPUs), serialized per lane.
//! * **Multi-level parallelism** — thread blocks are assigned round-robin
//!   to SMs; per-SM cycle accounting makes kernel time the maximum over
//!   SMs, so load imbalance shows up as it does on hardware.
//!
//! Timing is a throughput model: each warp instruction costs issue cycles
//! and each memory transaction costs occupancy cycles by hit level.
//! Absolute "runtimes" are simulated cycles — meaningful relatively (the
//! paper's figures are all normalized ratios), not as wall-clock
//! milliseconds.
//!
//! Two execution modes ([`ExecMode`]) share this model:
//!
//! * **Serial** (default): warps execute to completion in a deterministic
//!   order (blocks round-robin over SMs, warps in block order), so
//!   simulations are exactly reproducible — cycles, cache stats, fault
//!   injection, and watchdog behaviour are bit-for-bit. This serializes
//!   the benign data races the paper discusses in §3.
//! * **Host-parallel**: each simulated SM's warps run on a real host
//!   thread, with device memory backed by real atomics and the modelled
//!   L2 capacity statically sliced into one private cache per SM — no
//!   locks anywhere on the memory path. Final labels of order-independent
//!   algorithms (ECL-CC's min-wins hooking) are byte-identical to serial
//!   mode — certified per run by `ecl-verify` — while wall-clock time
//!   scales with cores. Cycle counts differ from the serial shared-L2
//!   record (and become interleaving-dependent when kernels race across
//!   SMs), so all timing experiments stay serial.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fault;
pub mod lanes;
pub mod mem;
pub mod profile;
pub mod warp;

mod device;
mod error;

pub use cache::{Cache, CacheStats};
pub use device::{ExecMode, Gpu, KernelStats};
pub use error::SimError;
pub use fault::{FaultPlan, FaultRng};
pub use lanes::{Lanes, Mask, LANES};
pub use mem::DevicePtr;
pub use profile::DeviceProfile;
pub use warp::{BlockCtx, WarpCtx};
