//! Device profiles mirroring the two GPUs of the paper's §4.

/// Static hardware parameters of a simulated device.
///
/// The cache capacities and SM counts are the paper's published numbers;
/// the latency/throughput constants are representative occupancy costs for
/// the respective architecture generation (only their *ratios* matter for
/// the normalized results the paper reports).
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per thread block used by ECL-CC (the paper uses 256).
    pub threads_per_block: usize,
    /// L1 data cache capacity per SM, in bytes.
    pub l1_bytes: usize,
    /// L1 associativity (ways).
    pub l1_ways: usize,
    /// Shared L2 cache capacity, in bytes.
    pub l2_bytes: usize,
    /// L2 associativity (ways).
    pub l2_ways: usize,
    /// Cache line size in bytes (both levels).
    pub line_bytes: usize,
    /// Sector (minimum transaction) size in bytes.
    pub sector_bytes: usize,
    /// Issue cost of one warp ALU instruction, in cycles.
    pub alu_cycles: u64,
    /// Occupancy cost of a transaction that hits in L1.
    pub l1_hit_cycles: u64,
    /// Occupancy cost of a transaction that hits in L2.
    pub l2_hit_cycles: u64,
    /// Occupancy cost of a transaction served by DRAM.
    pub dram_cycles: u64,
    /// Serialized cost of one atomic operation (resolved at L2).
    pub atomic_cycles: u64,
    /// Fixed kernel-launch overhead in cycles.
    pub launch_overhead_cycles: u64,
    /// Core clock in MHz, used only to convert cycles to pseudo-ms.
    pub clock_mhz: u64,
}

impl DeviceProfile {
    /// GeForce GTX Titan X (Maxwell): 24 SMs, 48 kB L1 per SM, 2 MB L2,
    /// 1.1 GHz (§4).
    pub fn titan_x() -> Self {
        DeviceProfile {
            name: "Titan X",
            num_sms: 24,
            threads_per_block: 256,
            l1_bytes: 48 * 1024,
            l1_ways: 8,
            l2_bytes: 2 * 1024 * 1024,
            l2_ways: 16,
            line_bytes: 128,
            sector_bytes: 32,
            alu_cycles: 1,
            l1_hit_cycles: 4,
            l2_hit_cycles: 22,
            dram_cycles: 68,
            atomic_cycles: 30,
            launch_overhead_cycles: 4000,
            clock_mhz: 1100,
        }
    }

    /// Tesla K40c (Kepler): 15 SMs, 48 kB L1 per SM, 1.5 MB L2, 745 MHz
    /// (§4). Kepler has slower atomics and higher memory costs relative to
    /// clock, which is why the paper's K40 numbers are uniformly worse.
    pub fn k40() -> Self {
        DeviceProfile {
            name: "K40",
            num_sms: 15,
            threads_per_block: 256,
            l1_bytes: 48 * 1024,
            l1_ways: 8,
            l2_bytes: 1536 * 1024,
            l2_ways: 16,
            line_bytes: 128,
            sector_bytes: 32,
            alu_cycles: 1,
            l1_hit_cycles: 5,
            l2_hit_cycles: 30,
            dram_cycles: 80,
            atomic_cycles: 60,
            launch_overhead_cycles: 4000,
            clock_mhz: 745,
        }
    }

    /// A tiny device for unit tests: 2 SMs and caches small enough that
    /// capacity misses are easy to provoke.
    pub fn test_tiny() -> Self {
        DeviceProfile {
            name: "TestTiny",
            num_sms: 2,
            threads_per_block: 64,
            l1_bytes: 1024,
            l1_ways: 2,
            l2_bytes: 8 * 1024,
            l2_ways: 4,
            line_bytes: 128,
            sector_bytes: 32,
            alu_cycles: 1,
            l1_hit_cycles: 4,
            l2_hit_cycles: 22,
            dram_cycles: 68,
            atomic_cycles: 30,
            launch_overhead_cycles: 100,
            clock_mhz: 1000,
        }
    }

    /// Warps per thread block (`threads_per_block / 32`).
    pub fn warps_per_block(&self) -> usize {
        self.threads_per_block / crate::LANES
    }

    /// Converts simulated cycles to pseudo-milliseconds at the device
    /// clock. Only used for absolute-runtime tables; all figures are
    /// ratios.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz as f64 * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_matches_paper_specs() {
        let p = DeviceProfile::titan_x();
        assert_eq!(p.num_sms, 24);
        assert_eq!(p.l1_bytes, 48 * 1024);
        assert_eq!(p.l2_bytes, 2 * 1024 * 1024);
        assert_eq!(p.warps_per_block(), 8);
    }

    #[test]
    fn k40_matches_paper_specs() {
        let p = DeviceProfile::k40();
        assert_eq!(p.num_sms, 15);
        assert_eq!(p.l2_bytes, 1536 * 1024);
        assert!(p.atomic_cycles > DeviceProfile::titan_x().atomic_cycles);
    }

    #[test]
    fn cycle_conversion() {
        let p = DeviceProfile::titan_x();
        let ms = p.cycles_to_ms(1_100_000);
        assert!((ms - 1.0).abs() < 1e-9);
    }
}
