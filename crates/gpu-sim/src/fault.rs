//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] makes the simulator *adversarial*: it perturbs the
//! execution in ways real GPUs are allowed to (and occasionally do)
//! without ever leaving the envelope of behaviours the CUDA memory and
//! execution model permits. Algorithms that are correct on hardware must
//! therefore stay correct under any plan — which is exactly what the
//! robustness property tests assert for ECL-CC's lock-free union-find.
//!
//! Three fault classes are modelled:
//!
//! * **Spurious `atomicCAS` contention** — a CAS that would have
//!   succeeded instead observes that an identical-intent competitor won
//!   the race an instant earlier: the new value is in memory, but the
//!   returned "old" value differs from `cmp`. This is a reachable state
//!   of the real machine (two threads racing the same hook, §3 of the
//!   paper) and forces every CAS retry loop to actually retry.
//! * **Delayed memory responses** — individual transactions cost extra
//!   cycles, skewing per-SM timing (and poking the watchdog) without
//!   changing values.
//! * **Warp-scheduler perturbation** — warps (and blocks) execute in a
//!   seeded pseudo-random order instead of index order, reordering the
//!   serialized atomics exactly as a different hardware scheduler would.
//!
//! All decisions come from a [`FaultRng`] seeded from the plan's seed and
//! the launch index, so a given (plan, program) pair replays bit-for-bit.

/// A seeded description of which faults to inject, threaded through the
/// device ([`crate::Gpu::set_fault_plan`]) into every kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for all injection decisions (per-launch streams are derived
    /// from it, so plans replay deterministically).
    pub seed: u64,
    /// Per-mille probability (0..=1000) that a would-succeed `atomicCAS`
    /// lane is reported as lost-to-a-competitor (the write still lands).
    pub cas_spurious_permille: u32,
    /// Per-mille probability (0..=1000) that a memory transaction is
    /// delayed by [`FaultPlan::mem_delay_cycles`].
    pub mem_delay_permille: u32,
    /// Extra cycles charged to a delayed transaction.
    pub mem_delay_cycles: u64,
    /// Execute warps (and blocks) in a seeded shuffled order instead of
    /// index order.
    pub shuffle_warps: bool,
    /// Per-mille probability (0..=1000) that a chaos client truncates a
    /// protocol frame mid-write. Network-flavored knob: ignored by the
    /// simulator, consumed by the `ecl-serve` load harness so its chaos
    /// mix is seeded and replayable like the simulator presets.
    pub frame_truncate_permille: u32,
    /// Per-mille probability (0..=1000) that a chaos client stalls its
    /// socket (half-written frame held open). Network-flavored; ignored
    /// by the simulator.
    pub stall_permille: u32,
    /// Per-mille probability (0..=1000) that a chaos client disconnects
    /// mid-stream without a clean `QUIT`. Network-flavored; ignored by
    /// the simulator.
    pub disconnect_permille: u32,
    /// Per-mille probability (0..=1000) that an interconnect frame is
    /// dropped in flight (the receiver times out and the sender must
    /// retransmit). Interconnect-flavored: ignored by the simulator,
    /// consumed by the `ecl-shard` exchange layer.
    pub frame_drop_permille: u32,
    /// Per-mille probability (0..=1000) that an interconnect frame is
    /// delivered with flipped payload bytes (the FNV digest catches it
    /// and the receiver NAKs). Interconnect-flavored; ignored by the
    /// simulator.
    pub frame_corrupt_permille: u32,
    /// Exchange round (1-based) at the start of which one device is
    /// killed; `0` means never. Which device dies is drawn from the
    /// plan's seed so crash schedules replay deterministically.
    /// Interconnect-flavored; ignored by the simulator.
    pub device_crash_at_round: u64,
}

impl FaultPlan {
    /// The do-nothing plan (the default device state).
    pub const fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            cas_spurious_permille: 0,
            mem_delay_permille: 0,
            mem_delay_cycles: 0,
            shuffle_warps: false,
            frame_truncate_permille: 0,
            stall_permille: 0,
            disconnect_permille: 0,
            frame_drop_permille: 0,
            frame_corrupt_permille: 0,
            device_crash_at_round: 0,
        }
    }

    /// Heavy spurious-CAS contention: ~30% of winning CAS lanes are told
    /// they lost.
    pub const fn cas_storm(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            cas_spurious_permille: 300,
            ..FaultPlan::none()
        }
    }

    /// Sluggish memory: ~25% of transactions stall an extra 200 cycles.
    pub const fn slow_memory(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            mem_delay_permille: 250,
            mem_delay_cycles: 200,
            ..FaultPlan::none()
        }
    }

    /// Adversarial scheduler: warps and blocks run in shuffled order.
    pub const fn scheduler_chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            shuffle_warps: true,
            ..FaultPlan::none()
        }
    }

    /// Every fault class at once.
    pub const fn everything(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            cas_spurious_permille: 200,
            mem_delay_permille: 150,
            mem_delay_cycles: 120,
            shuffle_warps: true,
            ..FaultPlan::none()
        }
    }

    /// The network chaos mix the `ecl-serve` load harness drives its
    /// adversarial clients with: truncated frames, stalled sockets, and
    /// mid-stream disconnects, all seeded for reproducibility. Injects
    /// nothing into the simulator.
    pub const fn serve_chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            frame_truncate_permille: 250,
            stall_permille: 150,
            disconnect_permille: 200,
            ..FaultPlan::none()
        }
    }

    /// The interconnect chaos mix the sharded coordinator drives its
    /// exchange rounds with: dropped and corrupted frames, all seeded
    /// for reproducibility. Injects nothing into the simulator itself;
    /// add `crash=ROUND` on top (or via a custom spec) to also kill a
    /// device mid-run.
    pub const fn shard_chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            frame_drop_permille: 150,
            frame_corrupt_permille: 150,
            ..FaultPlan::none()
        }
    }

    /// True when the plan injects nothing (the fast path skips all RNG
    /// work entirely).
    pub fn is_none(&self) -> bool {
        self.cas_spurious_permille == 0
            && self.mem_delay_permille == 0
            && !self.shuffle_warps
            && !self.has_network_faults()
            && !self.has_interconnect_faults()
    }

    /// True when any network-flavored knob is set (the serve harness's
    /// chaos classes; the simulator ignores them).
    pub fn has_network_faults(&self) -> bool {
        self.frame_truncate_permille > 0 || self.stall_permille > 0 || self.disconnect_permille > 0
    }

    /// True when any interconnect-flavored knob is set (the `ecl-shard`
    /// exchange layer's chaos classes; the simulator ignores them).
    pub fn has_interconnect_faults(&self) -> bool {
        self.frame_drop_permille > 0
            || self.frame_corrupt_permille > 0
            || self.device_crash_at_round > 0
    }

    /// Parses a command-line fault-plan spec so chaos runs are
    /// reproducible outside the test suite.
    ///
    /// Named presets, optionally seeded: `none`, `cas-storm[:SEED]`,
    /// `slow-memory[:SEED]`, `scheduler-chaos[:SEED]`,
    /// `everything[:SEED]`, `serve-chaos[:SEED]` (network-flavored, for
    /// the serve load harness), `shard-chaos[:SEED]`
    /// (interconnect-flavored, for the sharded exchange layer). Custom
    /// plans are comma-separated fields: `seed=N`, `cas=PERMILLE`,
    /// `mem=PERMILLE/CYCLES`, `shuffle`, `truncate=PERMILLE`,
    /// `stall=PERMILLE`, `disc=PERMILLE`, `drop=PERMILLE`,
    /// `corrupt=PERMILLE`, `crash=ROUND` —
    /// e.g. `seed=42,cas=300,mem=250/200,shuffle`.
    ///
    /// [`FaultPlan::to_spec`] is the exact inverse: for every plan `p`,
    /// `parse(&p.to_spec()) == p`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Err("empty fault-plan spec".into());
        }
        let (head, seed_str) = match spec.split_once(':') {
            Some((h, s)) => (h, Some(s)),
            None => (spec, None),
        };
        let preset: Option<fn(u64) -> FaultPlan> = match head {
            "none" => {
                if let Some(s) = seed_str {
                    return Err(format!("'none' takes no seed, got ':{s}'"));
                }
                return Ok(FaultPlan::none());
            }
            "cas-storm" => Some(FaultPlan::cas_storm),
            "slow-memory" => Some(FaultPlan::slow_memory),
            "scheduler-chaos" => Some(FaultPlan::scheduler_chaos),
            "everything" => Some(FaultPlan::everything),
            "serve-chaos" => Some(FaultPlan::serve_chaos),
            "shard-chaos" => Some(FaultPlan::shard_chaos),
            _ => None,
        };
        if let Some(make) = preset {
            let seed = match seed_str {
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|e| format!("bad fault-plan seed '{s}': {e}"))?,
                None => 1,
            };
            return Ok(make(seed));
        }

        let mut plan = FaultPlan::none();
        for field in spec.split(',') {
            let field = field.trim();
            match field.split_once('=') {
                None if field == "shuffle" => plan.shuffle_warps = true,
                None => {
                    return Err(format!(
                        "unknown fault-plan field '{field}' (expected a preset, \
                         seed=N, cas=PERMILLE, mem=PERMILLE/CYCLES, or shuffle)"
                    ))
                }
                Some(("seed", v)) => {
                    plan.seed = v.parse().map_err(|e| format!("bad seed '{v}': {e}"))?;
                }
                Some(("cas", v)) => {
                    plan.cas_spurious_permille = v
                        .parse()
                        .map_err(|e| format!("bad cas permille '{v}': {e}"))?;
                    if plan.cas_spurious_permille > 1000 {
                        return Err(format!("cas permille {v} out of range (0..=1000)"));
                    }
                }
                Some(("mem", v)) => {
                    let (p, c) = v
                        .split_once('/')
                        .ok_or_else(|| format!("mem needs PERMILLE/CYCLES, got '{v}'"))?;
                    plan.mem_delay_permille = p
                        .parse()
                        .map_err(|e| format!("bad mem permille '{p}': {e}"))?;
                    plan.mem_delay_cycles = c
                        .parse()
                        .map_err(|e| format!("bad mem cycles '{c}': {e}"))?;
                    if plan.mem_delay_permille > 1000 {
                        return Err(format!("mem permille {p} out of range (0..=1000)"));
                    }
                }
                Some(("truncate", v)) => {
                    plan.frame_truncate_permille = parse_permille("truncate", v)?;
                }
                Some(("stall", v)) => {
                    plan.stall_permille = parse_permille("stall", v)?;
                }
                Some(("disc", v)) => {
                    plan.disconnect_permille = parse_permille("disc", v)?;
                }
                Some(("drop", v)) => {
                    plan.frame_drop_permille = parse_permille("drop", v)?;
                }
                Some(("corrupt", v)) => {
                    plan.frame_corrupt_permille = parse_permille("corrupt", v)?;
                }
                Some(("crash", v)) => {
                    plan.device_crash_at_round = v
                        .parse()
                        .map_err(|e| format!("bad crash round '{v}': {e}"))?;
                }
                Some((k, _)) => return Err(format!("unknown fault-plan field '{k}'")),
            }
        }
        Ok(plan)
    }

    /// Formats the plan as a custom spec that [`FaultPlan::parse`]
    /// accepts and maps back to exactly this plan (the round-trip the
    /// property tests pin). The do-nothing plan formats as `none`;
    /// everything else is the explicit `seed=N,...` field form so the
    /// output is canonical regardless of which preset produced the plan.
    pub fn to_spec(&self) -> String {
        if *self == FaultPlan::none() {
            return "none".to_string();
        }
        let mut spec = format!("seed={}", self.seed);
        if self.cas_spurious_permille > 0 {
            spec.push_str(&format!(",cas={}", self.cas_spurious_permille));
        }
        if self.mem_delay_permille > 0 || self.mem_delay_cycles > 0 {
            spec.push_str(&format!(
                ",mem={}/{}",
                self.mem_delay_permille, self.mem_delay_cycles
            ));
        }
        if self.shuffle_warps {
            spec.push_str(",shuffle");
        }
        if self.frame_truncate_permille > 0 {
            spec.push_str(&format!(",truncate={}", self.frame_truncate_permille));
        }
        if self.stall_permille > 0 {
            spec.push_str(&format!(",stall={}", self.stall_permille));
        }
        if self.disconnect_permille > 0 {
            spec.push_str(&format!(",disc={}", self.disconnect_permille));
        }
        if self.frame_drop_permille > 0 {
            spec.push_str(&format!(",drop={}", self.frame_drop_permille));
        }
        if self.frame_corrupt_permille > 0 {
            spec.push_str(&format!(",corrupt={}", self.frame_corrupt_permille));
        }
        if self.device_crash_at_round > 0 {
            spec.push_str(&format!(",crash={}", self.device_crash_at_round));
        }
        spec
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Shared permille-field parser for the custom-spec path.
fn parse_permille(field: &str, v: &str) -> Result<u32, String> {
    let p: u32 = v
        .parse()
        .map_err(|e| format!("bad {field} permille '{v}': {e}"))?;
    if p > 1000 {
        return Err(format!("{field} permille {v} out of range (0..=1000)"));
    }
    Ok(p)
}

/// SplitMix64 — a tiny full-period generator for injection decisions.
///
/// Deliberately independent of `ecl-graph`'s PCG32 stream: fault decisions
/// must not perturb (or be perturbed by) graph generation.
#[derive(Clone, Debug)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Stream seeded from (seed, stream) — each kernel launch gets its own.
    pub fn new(seed: u64, stream: u64) -> FaultRng {
        FaultRng {
            state: seed ^ stream.wrapping_mul(0x9e3779b97f4a7c15),
        }
    }

    /// Per-SM stream for the host-parallel execution mode: each simulated
    /// SM draws from its own generator so injection decisions stay seeded
    /// and replayable per SM regardless of how the OS schedules workers.
    /// (The serial mode keeps one launch-wide stream in warp order; the
    /// two modes intentionally draw different sequences — fault *timing*
    /// is interleaving-dependent either way, only the seed contract is
    /// preserved.)
    pub fn for_sm(seed: u64, launch: u64, sm: usize) -> FaultRng {
        let sm_seed = seed.wrapping_add((sm as u64 + 1).wrapping_mul(0xd1b54a32d192ed03));
        FaultRng::new(sm_seed, launch)
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// True with probability `permille`/1000.
    pub fn chance(&mut self, permille: u32) -> bool {
        permille > 0 && (self.next_u64() % 1000) < permille as u64
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_compose_and_report_noneness() {
        assert!(FaultPlan::none().is_none());
        assert!(!FaultPlan::cas_storm(1).is_none());
        assert!(!FaultPlan::slow_memory(1).is_none());
        assert!(!FaultPlan::scheduler_chaos(1).is_none());
        assert!(!FaultPlan::everything(1).is_none());
        // serve-chaos injects nothing into the simulator but is not the
        // do-nothing plan: the network knobs count toward noneness.
        let serve = FaultPlan::serve_chaos(1);
        assert!(!serve.is_none());
        assert!(serve.has_network_faults());
        assert_eq!(serve.cas_spurious_permille, 0);
        assert!(!FaultPlan::everything(1).has_network_faults());
        // Likewise for the interconnect knobs: simulator-inert, but not
        // the do-nothing plan.
        let shard = FaultPlan::shard_chaos(1);
        assert!(!shard.is_none());
        assert!(shard.has_interconnect_faults());
        assert!(!shard.has_network_faults());
        assert_eq!(shard.cas_spurious_permille, 0);
        assert!(!FaultPlan::everything(1).has_interconnect_faults());
    }

    #[test]
    fn parse_presets_and_custom_specs() {
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        assert_eq!(
            FaultPlan::parse("cas-storm:7").unwrap(),
            FaultPlan::cas_storm(7)
        );
        assert_eq!(
            FaultPlan::parse("everything:99").unwrap(),
            FaultPlan::everything(99)
        );
        // Unseeded presets default to seed 1.
        assert_eq!(
            FaultPlan::parse("slow-memory").unwrap(),
            FaultPlan::slow_memory(1)
        );
        assert_eq!(
            FaultPlan::parse("serve-chaos:7").unwrap(),
            FaultPlan::serve_chaos(7)
        );
        let custom = FaultPlan::parse("seed=42,cas=300,mem=250/200,shuffle").unwrap();
        assert_eq!(
            custom,
            FaultPlan {
                seed: 42,
                cas_spurious_permille: 300,
                mem_delay_permille: 250,
                mem_delay_cycles: 200,
                shuffle_warps: true,
                ..FaultPlan::none()
            }
        );
        let network = FaultPlan::parse("seed=3,truncate=100,stall=50,disc=75").unwrap();
        assert_eq!(
            network,
            FaultPlan {
                seed: 3,
                frame_truncate_permille: 100,
                stall_permille: 50,
                disconnect_permille: 75,
                ..FaultPlan::none()
            }
        );
        assert_eq!(
            FaultPlan::parse("shard-chaos:11").unwrap(),
            FaultPlan::shard_chaos(11)
        );
        let interconnect = FaultPlan::parse("seed=9,drop=120,corrupt=80,crash=3").unwrap();
        assert_eq!(
            interconnect,
            FaultPlan {
                seed: 9,
                frame_drop_permille: 120,
                frame_corrupt_permille: 80,
                device_crash_at_round: 3,
                ..FaultPlan::none()
            }
        );
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("drop=1001").is_err());
        assert!(FaultPlan::parse("crash=soon").is_err());
        assert!(FaultPlan::parse("cas-storm:abc").is_err());
        assert!(FaultPlan::parse("cas=1500").is_err());
        assert!(FaultPlan::parse("mem=250").is_err());
        assert!(FaultPlan::parse("truncate=1500").is_err());
        assert!(FaultPlan::parse("stall=oops").is_err());
        assert!(FaultPlan::parse("bogus").is_err());
    }

    /// Property: `parse(to_spec(p)) == p` for every preset at many seeds
    /// and for randomly assembled custom plans. Hand-rolled (the
    /// workspace is std-only); the generator itself is a `FaultRng`, so
    /// failures replay from the printed seed.
    #[test]
    fn to_spec_parse_round_trips() {
        let presets: [fn(u64) -> FaultPlan; 6] = [
            FaultPlan::cas_storm,
            FaultPlan::slow_memory,
            FaultPlan::scheduler_chaos,
            FaultPlan::everything,
            FaultPlan::serve_chaos,
            FaultPlan::shard_chaos,
        ];
        assert_eq!(FaultPlan::none().to_spec(), "none");
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        for make in presets {
            for seed in [0, 1, 7, u64::MAX] {
                let plan = make(seed);
                let spec = plan.to_spec();
                assert_eq!(
                    FaultPlan::parse(&spec).unwrap(),
                    plan,
                    "preset round-trip failed via spec '{spec}'"
                );
            }
        }
        let mut rng = FaultRng::new(0xec1cc, 0);
        for case in 0..500 {
            let plan = FaultPlan {
                seed: rng.next_u64(),
                cas_spurious_permille: (rng.next_u64() % 1001) as u32,
                mem_delay_permille: (rng.next_u64() % 1001) as u32,
                mem_delay_cycles: rng.next_u64() % 10_000,
                shuffle_warps: rng.chance(500),
                frame_truncate_permille: (rng.next_u64() % 1001) as u32,
                stall_permille: (rng.next_u64() % 1001) as u32,
                disconnect_permille: (rng.next_u64() % 1001) as u32,
                frame_drop_permille: (rng.next_u64() % 1001) as u32,
                frame_corrupt_permille: (rng.next_u64() % 1001) as u32,
                device_crash_at_round: rng.next_u64() % 64,
            };
            let spec = plan.to_spec();
            let reparsed = FaultPlan::parse(&spec)
                .unwrap_or_else(|e| panic!("case {case}: spec '{spec}' rejected: {e}"));
            // One representational quirk: a plan with delay cycles but a
            // zero permille keeps its cycles in the spec, so the
            // round-trip is exact — assert full equality.
            assert_eq!(reparsed, plan, "case {case}: spec '{spec}'");
        }
    }

    /// Property: malformed specs are rejected with a structured error —
    /// never a panic — for malformed fields, out-of-range permille, and
    /// trailing garbage.
    #[test]
    fn parse_rejects_are_structured_errors() {
        let bad = [
            "",
            "   ",
            ",",
            "seed=",
            "seed=abc",
            "seed=1,",
            "seed=1,,cas=2",
            "cas=",
            "cas=1001",
            "cas=-3",
            "cas=1e3",
            "mem=250",
            "mem=/",
            "mem=1001/5",
            "mem=5/abc",
            "truncate=1001",
            "stall=99999999999999999999",
            "disc=oops",
            "drop=1001",
            "drop=12.5",
            "corrupt=",
            "crash=never",
            "crash=-1",
            "shuffle=yes",
            "unknown=1",
            "bogus",
            "cas-storm:",
            "cas-storm:abc",
            "cas-storm:1:2",
            "shard-chaos:9 trailing",
            "none:1",
            "seed=1 cas=2",
        ];
        for spec in bad {
            let res = FaultPlan::parse(spec);
            assert!(
                res.is_err(),
                "spec '{spec}' should be rejected, got {res:?}"
            );
            let msg = res.unwrap_err();
            assert!(!msg.is_empty(), "spec '{spec}' produced an empty error");
        }
    }

    #[test]
    fn rng_is_deterministic_per_stream() {
        let mut a = FaultRng::new(42, 7);
        let mut b = FaultRng::new(42, 7);
        let mut c = FaultRng::new(42, 8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chance_extremes() {
        let mut r = FaultRng::new(1, 1);
        assert!(!(0..100).any(|_| r.chance(0)));
        assert!((0..100).all(|_| r.chance(1000)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = FaultRng::new(9, 0);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "seed 9 should actually permute");
    }
}
