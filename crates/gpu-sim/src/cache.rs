//! Sectored set-associative LRU cache model.
//!
//! Models the GPU cache hierarchy at transaction granularity: lines of
//! `line_bytes` are divided into 32-byte sectors, tags are tracked per
//! line, validity per sector (as on Maxwell/Kepler), replacement is LRU
//! within a set, and writes allocate (write-back). The model tracks the
//! access counters the paper profiles in Table 3: read/write accesses at
//! each level and dirty write-backs.

/// Outcome of a cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Sector present.
    Hit,
    /// Line present but sector invalid, or line absent; `evicted_dirty`
    /// sectors must be written back to the next level.
    Miss {
        /// Number of dirty sectors evicted by the fill this miss triggered.
        evicted_dirty: u32,
    },
}

#[derive(Clone, Debug)]
struct Line {
    tag: u64,
    valid_sectors: u32,
    dirty_sectors: u32,
    last_use: u64,
}

/// Access statistics for one cache instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read transactions presented to this cache.
    pub read_accesses: u64,
    /// Write transactions presented to this cache.
    pub write_accesses: u64,
    /// Read transactions that hit.
    pub read_hits: u64,
    /// Write transactions that hit.
    pub write_hits: u64,
    /// Dirty sectors written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Read misses (`read_accesses - read_hits`).
    pub fn read_misses(&self) -> u64 {
        self.read_accesses - self.read_hits
    }

    /// Write misses.
    pub fn write_misses(&self) -> u64 {
        self.write_accesses - self.write_hits
    }
}

/// A sectored, set-associative, write-back/write-allocate LRU cache.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    line_bytes: u64,
    sector_bytes: u64,
    sectors_per_line: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with the given geometry.
    /// `capacity_bytes / (line_bytes * ways)` must be a power-of-two-free
    /// positive set count (any positive integer works).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize, sector_bytes: usize) -> Self {
        assert!(ways >= 1 && line_bytes >= sector_bytes && sector_bytes >= 4);
        assert_eq!(line_bytes % sector_bytes, 0);
        let num_lines = (capacity_bytes / line_bytes).max(ways);
        let num_sets = (num_lines / ways).max(1);
        Cache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            line_bytes: line_bytes as u64,
            sector_bytes: sector_bytes as u64,
            sectors_per_line: (line_bytes / sector_bytes) as u32,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Presents one sector transaction at byte address `addr` to the cache.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Lookup {
        self.tick += 1;
        let line_addr = addr / self.line_bytes;
        let sector_in_line = ((addr % self.line_bytes) / self.sector_bytes) as u32;
        let sector_bit = 1u32 << sector_in_line;
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let tick = self.tick;

        if is_write {
            self.stats.write_accesses += 1;
        } else {
            self.stats.read_accesses += 1;
        }

        let ways = self.ways;
        let sectors_per_line = self.sectors_per_line;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == line_addr) {
            line.last_use = tick;
            if line.valid_sectors & sector_bit != 0 {
                if is_write {
                    line.dirty_sectors |= sector_bit;
                    self.stats.write_hits += 1;
                } else {
                    self.stats.read_hits += 1;
                }
                return Lookup::Hit;
            }
            // Line present, sector not yet filled: sector miss, no eviction.
            line.valid_sectors |= sector_bit;
            if is_write {
                line.dirty_sectors |= sector_bit;
            }
            return Lookup::Miss { evicted_dirty: 0 };
        }

        // Line absent: allocate, possibly evicting the LRU way.
        let mut evicted_dirty = 0;
        if set.len() >= ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = set.swap_remove(lru);
            evicted_dirty = victim.dirty_sectors.count_ones().min(sectors_per_line);
            self.stats.writebacks += evicted_dirty as u64;
        }
        set.push(Line {
            tag: line_addr,
            valid_sectors: sector_bit,
            dirty_sectors: if is_write { sector_bit } else { 0 },
            last_use: tick,
        });
        Lookup::Miss { evicted_dirty }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all contents and zeroes counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }

    /// Sector size in bytes.
    pub fn sector_bytes(&self) -> u64 {
        self.sector_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets * 2 ways * 128B lines = 512 B.
        Cache::new(512, 2, 128, 32)
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = tiny();
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        assert_eq!(c.access(0, false), Lookup::Hit);
        assert_eq!(c.access(4, false), Lookup::Hit, "same sector");
        let s = c.stats();
        assert_eq!(s.read_accesses, 3);
        assert_eq!(s.read_hits, 2);
    }

    #[test]
    fn sector_miss_within_present_line() {
        let mut c = tiny();
        c.access(0, false);
        // Different sector of the same line: miss but no eviction.
        assert_eq!(c.access(32, false), Lookup::Miss { evicted_dirty: 0 });
        assert_eq!(c.access(32, false), Lookup::Hit);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Set count = 512/128/2 = 2 sets. Lines mapping to set 0:
        // line addresses 0, 2, 4 (addr 0, 256, 512).
        c.access(0, false);
        c.access(256, false);
        c.access(512, false); // evicts line 0 (LRU)
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        // 256 should still be resident (was MRU before 512's fill)...
        // after accessing 0 again, LRU order is [512, 0]; 256 was evicted
        // by 0's refill. Just verify the counter bookkeeping is coherent.
        let s = c.stats();
        assert_eq!(s.read_hits + s.read_misses(), s.read_accesses);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty sector in line 0
        c.access(256, false);
        let l = c.access(512, false); // evicts one of them
                                      // Either line 0 (dirty) or 256 (clean) got evicted; run one more
                                      // fill so both victims have cycled and the writeback must appear.
        c.access(768, false);
        let _ = l;
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty_once() {
        let mut c = tiny();
        c.access(0, true);
        assert_eq!(c.access(0, true), Lookup::Hit);
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.stats().write_accesses, 2);
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = tiny();
        c.access(0, false);
        c.flush();
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        assert_eq!(c.stats().read_accesses, 1);
    }

    #[test]
    fn conservation_invariant() {
        let mut c = Cache::new(4096, 4, 128, 32);
        for i in 0..10_000u64 {
            let addr = (i * 97) % 16_384;
            c.access(addr, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.read_accesses + s.write_accesses, 10_000);
        assert!(s.read_hits <= s.read_accesses);
        assert!(s.write_hits <= s.write_accesses);
    }
}
