//! Sectored set-associative LRU cache model.
//!
//! Models the GPU cache hierarchy at transaction granularity: lines of
//! `line_bytes` are divided into 32-byte sectors, tags are tracked per
//! line, validity per sector (as on Maxwell/Kepler), replacement is LRU
//! within a set, and writes allocate (write-back). The model tracks the
//! access counters the paper profiles in Table 3: read/write accesses at
//! each level and dirty write-backs.
//!
//! The storage is a flat structure-of-arrays layout — tags, sector-valid
//! bits, sector-dirty bits, and LRU timestamps each live in their own
//! contiguous array indexed by `set * ways + way` — so a lookup is a short
//! linear scan over adjacent tags instead of a pointer chase through
//! per-set `Vec`s. The observable behaviour (hit/miss outcomes, eviction
//! choices, every counter) is bit-identical to the original nested-`Vec`
//! model: LRU timestamps are globally unique, so the victim choice never
//! depends on slot order, and the golden tests in `exec_equivalence.rs`
//! pin the combined record.

/// Outcome of a cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Sector present.
    Hit,
    /// Line present but sector invalid, or line absent; `evicted_dirty`
    /// sectors must be written back to the next level.
    Miss {
        /// Number of dirty sectors evicted by the fill this miss triggered.
        evicted_dirty: u32,
    },
}

/// Access statistics for one cache instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read transactions presented to this cache.
    pub read_accesses: u64,
    /// Write transactions presented to this cache.
    pub write_accesses: u64,
    /// Read transactions that hit.
    pub read_hits: u64,
    /// Write transactions that hit.
    pub write_hits: u64,
    /// Dirty sectors written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Read misses (`read_accesses - read_hits`).
    pub fn read_misses(&self) -> u64 {
        self.read_accesses - self.read_hits
    }

    /// Write misses.
    pub fn write_misses(&self) -> u64 {
        self.write_accesses - self.write_hits
    }

    /// Adds `other`'s counters into `self` (for summing per-SM caches).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.read_accesses += other.read_accesses;
        self.write_accesses += other.write_accesses;
        self.read_hits += other.read_hits;
        self.write_hits += other.write_hits;
        self.writebacks += other.writebacks;
    }

    /// Counters accrued since the `earlier` snapshot (per-launch deltas).
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            read_accesses: self.read_accesses - earlier.read_accesses,
            write_accesses: self.write_accesses - earlier.write_accesses,
            read_hits: self.read_hits - earlier.read_hits,
            write_hits: self.write_hits - earlier.write_hits,
            writebacks: self.writebacks - earlier.writebacks,
        }
    }

    /// Read hit ratio in [0, 1] (1.0 when nothing was read — the paper's
    /// Table 3 convention of reporting hit *ratios*, not miss counts).
    pub fn read_hit_ratio(&self) -> f64 {
        if self.read_accesses == 0 {
            1.0
        } else {
            self.read_hits as f64 / self.read_accesses as f64
        }
    }

    /// Write hit ratio in [0, 1] (1.0 when nothing was written).
    pub fn write_hit_ratio(&self) -> f64 {
        if self.write_accesses == 0 {
            1.0
        } else {
            self.write_hits as f64 / self.write_accesses as f64
        }
    }

    /// Serializes through the workspace's shared JSON writer — the one
    /// serialization path for cache statistics everywhere (bench records,
    /// metrics export, the profile report's machine-readable form).
    pub fn to_json(&self) -> String {
        ecl_obs::json::Obj::new()
            .u64("read_accesses", self.read_accesses)
            .u64("write_accesses", self.write_accesses)
            .u64("read_hits", self.read_hits)
            .u64("write_hits", self.write_hits)
            .u64("writebacks", self.writebacks)
            .build()
    }
}

/// Tag value marking an unoccupied slot. Line addresses are byte addresses
/// divided by the line size, so a real line can never reach this value.
const EMPTY_TAG: u64 = u64::MAX;

/// A sectored, set-associative, write-back/write-allocate LRU cache with
/// flat structure-of-arrays storage (see the module docs).
#[derive(Clone, Debug)]
pub struct Cache {
    /// Full line address per slot (`EMPTY_TAG` = unoccupied), indexed by
    /// `set * ways + way`. Storing the full line address (not the
    /// set-stripped tag) makes the one-compare fast path below exact:
    /// equality implies both the right set and the right line.
    tags: Box<[u64]>,
    valid_sectors: Box<[u32]>,
    dirty_sectors: Box<[u32]>,
    last_use: Box<[u64]>,
    num_sets: u64,
    ways: usize,
    line_bytes: u64,
    sector_bytes: u64,
    sectors_per_line: u32,
    /// Shift for `addr -> line_addr` when `line_bytes` is a power of two.
    line_shift: u32,
    /// Shift/mask for `addr -> sector_in_line` when the geometry is
    /// power-of-two.
    sector_shift: u32,
    sector_mask: u32,
    /// `num_sets - 1` when the set count is a power of two.
    set_mask: u64,
    /// Whole-geometry fast-path flags (all profiles in the workspace are
    /// power-of-two in line/sector size; the L1's 48 sets are not).
    pow2_line: bool,
    pow2_sets: bool,
    tick: u64,
    stats: CacheStats,
    /// Most recently touched slot: the one-compare fast path for the
    /// dominant same-line-repeat-hit pattern.
    last_slot: u32,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with the given geometry.
    /// `capacity_bytes / (line_bytes * ways)` must be a power-of-two-free
    /// positive set count (any positive integer works).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize, sector_bytes: usize) -> Self {
        assert!(ways >= 1 && line_bytes >= sector_bytes && sector_bytes >= 4);
        assert_eq!(line_bytes % sector_bytes, 0);
        let num_lines = (capacity_bytes / line_bytes).max(ways);
        let num_sets = (num_lines / ways).max(1);
        let slots = num_sets * ways;
        let pow2_line = line_bytes.is_power_of_two() && sector_bytes.is_power_of_two();
        Cache {
            tags: vec![EMPTY_TAG; slots].into_boxed_slice(),
            valid_sectors: vec![0; slots].into_boxed_slice(),
            dirty_sectors: vec![0; slots].into_boxed_slice(),
            last_use: vec![0; slots].into_boxed_slice(),
            num_sets: num_sets as u64,
            ways,
            line_bytes: line_bytes as u64,
            sector_bytes: sector_bytes as u64,
            sectors_per_line: (line_bytes / sector_bytes) as u32,
            line_shift: line_bytes.trailing_zeros(),
            sector_shift: sector_bytes.trailing_zeros(),
            sector_mask: (line_bytes / sector_bytes) as u32 - 1,
            set_mask: num_sets as u64 - 1,
            pow2_line,
            pow2_sets: num_sets.is_power_of_two(),
            tick: 0,
            stats: CacheStats::default(),
            last_slot: 0,
        }
    }

    /// Presents one sector transaction at byte address `addr` to the cache.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> Lookup {
        self.tick += 1;
        if is_write {
            self.stats.write_accesses += 1;
        } else {
            self.stats.read_accesses += 1;
        }
        let (line_addr, sector_bit) = if self.pow2_line {
            (
                addr >> self.line_shift,
                1u32 << ((addr >> self.sector_shift) as u32 & self.sector_mask),
            )
        } else {
            (
                addr / self.line_bytes,
                1u32 << ((addr % self.line_bytes) / self.sector_bytes),
            )
        };
        // Fast path: the warp's previous transaction touched this line.
        let slot = self.last_slot as usize;
        if self.tags[slot] == line_addr {
            return self.touch_line(slot, sector_bit, is_write);
        }
        self.access_slow(line_addr, sector_bit, is_write)
    }

    fn access_slow(&mut self, line_addr: u64, sector_bit: u32, is_write: bool) -> Lookup {
        let set_idx = if self.pow2_sets {
            (line_addr & self.set_mask) as usize
        } else {
            (line_addr % self.num_sets) as usize
        };
        let base = set_idx * self.ways;
        let mut empty = usize::MAX;
        for way in 0..self.ways {
            let tag = self.tags[base + way];
            if tag == line_addr {
                self.last_slot = (base + way) as u32;
                return self.touch_line(base + way, sector_bit, is_write);
            }
            if tag == EMPTY_TAG && empty == usize::MAX {
                empty = way;
            }
        }

        // Line absent: allocate an empty way, or evict the LRU way. LRU
        // timestamps are unique (one global tick per access), so scanning
        // for the minimum reproduces the original model's victim exactly.
        let slot;
        let mut evicted_dirty = 0;
        if empty != usize::MAX {
            slot = base + empty;
        } else {
            let mut lru = base;
            let mut lru_tick = self.last_use[base];
            for way in 1..self.ways {
                let t = self.last_use[base + way];
                if t < lru_tick {
                    lru_tick = t;
                    lru = base + way;
                }
            }
            slot = lru;
            evicted_dirty = self.dirty_sectors[slot]
                .count_ones()
                .min(self.sectors_per_line);
            self.stats.writebacks += evicted_dirty as u64;
        }
        self.tags[slot] = line_addr;
        self.valid_sectors[slot] = sector_bit;
        self.dirty_sectors[slot] = if is_write { sector_bit } else { 0 };
        self.last_use[slot] = self.tick;
        self.last_slot = slot as u32;
        Lookup::Miss { evicted_dirty }
    }

    /// Hit-line epilogue: refresh LRU, then resolve the sector.
    #[inline]
    fn touch_line(&mut self, slot: usize, sector_bit: u32, is_write: bool) -> Lookup {
        self.last_use[slot] = self.tick;
        if self.valid_sectors[slot] & sector_bit != 0 {
            if is_write {
                self.dirty_sectors[slot] |= sector_bit;
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return Lookup::Hit;
        }
        // Line present, sector not yet filled: sector miss, no eviction.
        self.valid_sectors[slot] |= sector_bit;
        if is_write {
            self.dirty_sectors[slot] |= sector_bit;
        }
        Lookup::Miss { evicted_dirty: 0 }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all contents and zeroes counters.
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY_TAG);
        self.valid_sectors.fill(0);
        self.dirty_sectors.fill(0);
        self.last_use.fill(0);
        self.stats = CacheStats::default();
        self.tick = 0;
        self.last_slot = 0;
    }

    /// Sector size in bytes.
    pub fn sector_bytes(&self) -> u64 {
        self.sector_bytes
    }

    /// Number of sets (capacity sanity checks in tests).
    pub fn num_sets(&self) -> usize {
        self.num_sets as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets * 2 ways * 128B lines = 512 B.
        Cache::new(512, 2, 128, 32)
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = tiny();
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        assert_eq!(c.access(0, false), Lookup::Hit);
        assert_eq!(c.access(4, false), Lookup::Hit, "same sector");
        let s = c.stats();
        assert_eq!(s.read_accesses, 3);
        assert_eq!(s.read_hits, 2);
    }

    #[test]
    fn sector_miss_within_present_line() {
        let mut c = tiny();
        c.access(0, false);
        // Different sector of the same line: miss but no eviction.
        assert_eq!(c.access(32, false), Lookup::Miss { evicted_dirty: 0 });
        assert_eq!(c.access(32, false), Lookup::Hit);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Set count = 512/128/2 = 2 sets. Lines mapping to set 0:
        // line addresses 0, 2, 4 (addr 0, 256, 512).
        c.access(0, false);
        c.access(256, false);
        c.access(512, false); // evicts line 0 (LRU)
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        // 256 should still be resident (was MRU before 512's fill)...
        // after accessing 0 again, LRU order is [512, 0]; 256 was evicted
        // by 0's refill. Just verify the counter bookkeeping is coherent.
        let s = c.stats();
        assert_eq!(s.read_hits + s.read_misses(), s.read_accesses);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty sector in line 0
        c.access(256, false);
        let l = c.access(512, false); // evicts one of them
                                      // Either line 0 (dirty) or 256 (clean) got evicted; run one more
                                      // fill so both victims have cycled and the writeback must appear.
        c.access(768, false);
        let _ = l;
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty_once() {
        let mut c = tiny();
        c.access(0, true);
        assert_eq!(c.access(0, true), Lookup::Hit);
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.stats().write_accesses, 2);
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = tiny();
        c.access(0, false);
        c.flush();
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        assert_eq!(c.stats().read_accesses, 1);
    }

    #[test]
    fn non_pow2_set_count_exercises_modulo_path() {
        // 48 sets (the titan L1 geometry): 48 * 8 ways * 128 B = 48 KiB.
        let mut c = Cache::new(48 * 1024, 8, 128, 32);
        assert_eq!(c.num_sets(), 48);
        // Two lines 48 line-addresses apart share a set; fill the set and
        // revisit — behaviour must match the modulo mapping.
        for i in 0..9u64 {
            assert!(matches!(c.access(i * 48 * 128, false), Lookup::Miss { .. }));
        }
        // Line 0 was LRU and evicted by the 9th fill.
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        // Line 8*48 was MRU before the re-fill of 0 and must still hit.
        assert_eq!(c.access(8 * 48 * 128, false), Lookup::Hit);
    }

    #[test]
    fn fast_path_same_line_repeat() {
        let mut c = Cache::new(4096, 4, 128, 32);
        c.access(128, false);
        // Repeat hits on the same line (different sectors) take the
        // one-compare path and must keep counters exact.
        assert_eq!(c.access(160, false), Lookup::Miss { evicted_dirty: 0 });
        assert_eq!(c.access(160, false), Lookup::Hit);
        assert_eq!(c.access(128, true), Lookup::Hit);
        let s = c.stats();
        assert_eq!(s.read_accesses, 3);
        assert_eq!(s.write_accesses, 1);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.write_hits, 1);
    }

    #[test]
    fn stats_accumulate_sums_fields() {
        let mut a = CacheStats {
            read_accesses: 1,
            write_accesses: 2,
            read_hits: 3,
            write_hits: 4,
            writebacks: 5,
        };
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.read_accesses, 2);
        assert_eq!(a.writebacks, 10);
    }

    #[test]
    fn conservation_invariant() {
        let mut c = Cache::new(4096, 4, 128, 32);
        for i in 0..10_000u64 {
            let addr = (i * 97) % 16_384;
            c.access(addr, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.read_accesses + s.write_accesses, 10_000);
        assert!(s.read_hits <= s.read_accesses);
        assert!(s.write_hits <= s.write_accesses);
    }
}
