//! Sectored set-associative LRU cache model.
//!
//! Models the GPU cache hierarchy at transaction granularity: lines of
//! `line_bytes` are divided into 32-byte sectors, tags are tracked per
//! line, validity per sector (as on Maxwell/Kepler), replacement is LRU
//! within a set, and writes allocate (write-back). The model tracks the
//! access counters the paper profiles in Table 3: read/write accesses at
//! each level and dirty write-backs.

/// Outcome of a cache lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Sector present.
    Hit,
    /// Line present but sector invalid, or line absent; `evicted_dirty`
    /// sectors must be written back to the next level.
    Miss {
        /// Number of dirty sectors evicted by the fill this miss triggered.
        evicted_dirty: u32,
    },
}

#[derive(Clone, Debug)]
struct Line {
    tag: u64,
    valid_sectors: u32,
    dirty_sectors: u32,
    last_use: u64,
}

/// Access statistics for one cache instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read transactions presented to this cache.
    pub read_accesses: u64,
    /// Write transactions presented to this cache.
    pub write_accesses: u64,
    /// Read transactions that hit.
    pub read_hits: u64,
    /// Write transactions that hit.
    pub write_hits: u64,
    /// Dirty sectors written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Read misses (`read_accesses - read_hits`).
    pub fn read_misses(&self) -> u64 {
        self.read_accesses - self.read_hits
    }

    /// Write misses.
    pub fn write_misses(&self) -> u64 {
        self.write_accesses - self.write_hits
    }
}

/// A sectored, set-associative, write-back/write-allocate LRU cache.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    ways: usize,
    line_bytes: u64,
    sector_bytes: u64,
    sectors_per_line: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with the given geometry.
    /// `capacity_bytes / (line_bytes * ways)` must be a power-of-two-free
    /// positive set count (any positive integer works).
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize, sector_bytes: usize) -> Self {
        assert!(ways >= 1 && line_bytes >= sector_bytes && sector_bytes >= 4);
        assert_eq!(line_bytes % sector_bytes, 0);
        let num_lines = (capacity_bytes / line_bytes).max(ways);
        let num_sets = (num_lines / ways).max(1);
        Cache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            line_bytes: line_bytes as u64,
            sector_bytes: sector_bytes as u64,
            sectors_per_line: (line_bytes / sector_bytes) as u32,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Presents one sector transaction at byte address `addr` to the cache.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Lookup {
        self.tick += 1;
        let line_addr = addr / self.line_bytes;
        let sector_in_line = ((addr % self.line_bytes) / self.sector_bytes) as u32;
        let sector_bit = 1u32 << sector_in_line;
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let tick = self.tick;

        if is_write {
            self.stats.write_accesses += 1;
        } else {
            self.stats.read_accesses += 1;
        }

        let ways = self.ways;
        let sectors_per_line = self.sectors_per_line;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == line_addr) {
            line.last_use = tick;
            if line.valid_sectors & sector_bit != 0 {
                if is_write {
                    line.dirty_sectors |= sector_bit;
                    self.stats.write_hits += 1;
                } else {
                    self.stats.read_hits += 1;
                }
                return Lookup::Hit;
            }
            // Line present, sector not yet filled: sector miss, no eviction.
            line.valid_sectors |= sector_bit;
            if is_write {
                line.dirty_sectors |= sector_bit;
            }
            return Lookup::Miss { evicted_dirty: 0 };
        }

        // Line absent: allocate, possibly evicting the LRU way.
        let mut evicted_dirty = 0;
        if set.len() >= ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = set.swap_remove(lru);
            evicted_dirty = victim.dirty_sectors.count_ones().min(sectors_per_line);
            self.stats.writebacks += evicted_dirty as u64;
        }
        set.push(Line {
            tag: line_addr,
            valid_sectors: sector_bit,
            dirty_sectors: if is_write { sector_bit } else { 0 },
            last_use: tick,
        });
        Lookup::Miss { evicted_dirty }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the counters (cache contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates all contents and zeroes counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }

    /// Sector size in bytes.
    pub fn sector_bytes(&self) -> u64 {
        self.sector_bytes
    }

    /// Number of sets (used by [`ShardedL2`] to split capacity).
    fn num_sets(&self) -> usize {
        self.sets.len()
    }
}

/// A lock-sharded wrapper around [`Cache`] for the host-parallel execution
/// mode: the single L2 is split into `shards` independently locked slices,
/// interleaved by line address, so concurrent SM workers rarely contend on
/// the same mutex.
///
/// Each shard holds `1/shards` of the sets. A line maps to shard
/// `line_addr % shards` and is presented to that shard at the remapped
/// address `(line_addr / shards) * line_bytes + offset` — without the
/// remap every shard would only ever see line addresses congruent to its
/// own index, using `1/shards` of its sets and wasting the rest of the
/// modelled capacity.
///
/// Aggregate stats are the sum over shards. Parallel-mode cache stats are
/// approximate by design (interleaving-dependent); the serial mode keeps
/// the monolithic [`Cache`] and its bit-exact counters.
#[derive(Debug)]
pub struct ShardedL2 {
    shards: Vec<std::sync::Mutex<Cache>>,
    line_bytes: u64,
}

impl ShardedL2 {
    /// Splits an L2 of `capacity_bytes` into `shards` interleaved slices.
    pub fn new(
        capacity_bytes: usize,
        ways: usize,
        line_bytes: usize,
        sector_bytes: usize,
        shards: usize,
    ) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity_bytes / shards).max(ways * line_bytes);
        ShardedL2 {
            shards: (0..shards)
                .map(|_| {
                    std::sync::Mutex::new(Cache::new(per_shard, ways, line_bytes, sector_bytes))
                })
                .collect(),
            line_bytes: line_bytes as u64,
        }
    }

    /// Presents one sector transaction; locks only the owning shard.
    pub fn access(&self, addr: u64, is_write: bool) -> Lookup {
        let line_addr = addr / self.line_bytes;
        let nshards = self.shards.len() as u64;
        let shard = (line_addr % nshards) as usize;
        let remapped = (line_addr / nshards) * self.line_bytes + addr % self.line_bytes;
        self.shards[shard]
            .lock()
            .expect("L2 shard poisoned")
            .access(remapped, is_write)
    }

    /// Counters summed over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().expect("L2 shard poisoned").stats();
            total.read_accesses += s.read_accesses;
            total.write_accesses += s.write_accesses;
            total.read_hits += s.read_hits;
            total.write_hits += s.write_hits;
            total.writebacks += s.writebacks;
        }
        total
    }

    /// Invalidates every shard and zeroes all counters.
    pub fn flush(&self) {
        for shard in &self.shards {
            shard.lock().expect("L2 shard poisoned").flush();
        }
    }

    /// Total sets across shards (capacity sanity check for tests).
    pub fn total_sets(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("L2 shard poisoned").num_sets())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets * 2 ways * 128B lines = 512 B.
        Cache::new(512, 2, 128, 32)
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = tiny();
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        assert_eq!(c.access(0, false), Lookup::Hit);
        assert_eq!(c.access(4, false), Lookup::Hit, "same sector");
        let s = c.stats();
        assert_eq!(s.read_accesses, 3);
        assert_eq!(s.read_hits, 2);
    }

    #[test]
    fn sector_miss_within_present_line() {
        let mut c = tiny();
        c.access(0, false);
        // Different sector of the same line: miss but no eviction.
        assert_eq!(c.access(32, false), Lookup::Miss { evicted_dirty: 0 });
        assert_eq!(c.access(32, false), Lookup::Hit);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Set count = 512/128/2 = 2 sets. Lines mapping to set 0:
        // line addresses 0, 2, 4 (addr 0, 256, 512).
        c.access(0, false);
        c.access(256, false);
        c.access(512, false); // evicts line 0 (LRU)
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        // 256 should still be resident (was MRU before 512's fill)...
        // after accessing 0 again, LRU order is [512, 0]; 256 was evicted
        // by 0's refill. Just verify the counter bookkeeping is coherent.
        let s = c.stats();
        assert_eq!(s.read_hits + s.read_misses(), s.read_accesses);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty sector in line 0
        c.access(256, false);
        let l = c.access(512, false); // evicts one of them
                                      // Either line 0 (dirty) or 256 (clean) got evicted; run one more
                                      // fill so both victims have cycled and the writeback must appear.
        c.access(768, false);
        let _ = l;
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_hit_marks_dirty_once() {
        let mut c = tiny();
        c.access(0, true);
        assert_eq!(c.access(0, true), Lookup::Hit);
        assert_eq!(c.stats().write_hits, 1);
        assert_eq!(c.stats().write_accesses, 2);
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = tiny();
        c.access(0, false);
        c.flush();
        assert!(matches!(c.access(0, false), Lookup::Miss { .. }));
        assert_eq!(c.stats().read_accesses, 1);
    }

    #[test]
    fn sharded_l2_uses_full_capacity_and_sums_stats() {
        // 16 KiB, 4-way, 128 B lines → 32 sets monolithic; 4 shards of
        // 8 sets each must preserve the total.
        let sharded = ShardedL2::new(16 * 1024, 4, 128, 32, 4);
        assert_eq!(sharded.total_sets(), 32);
        // A dense streaming pattern must spread across shards: with the
        // address remap, 256 distinct lines fit exactly in 32 sets * 4
        // ways * 2... they don't all fit, but every shard must see traffic.
        for i in 0..256u64 {
            sharded.access(i * 128, false);
        }
        let s = sharded.stats();
        assert_eq!(s.read_accesses, 256);
        assert_eq!(s.read_hits, 0, "distinct lines all miss");
        // Re-touch the last 32 lines: all resident (they fit comfortably).
        for i in 224..256u64 {
            assert_eq!(sharded.access(i * 128, false), Lookup::Hit);
        }
        assert_eq!(sharded.stats().read_hits, 32);
    }

    #[test]
    fn sharded_l2_flush_resets() {
        let sharded = ShardedL2::new(4096, 4, 128, 32, 4);
        sharded.access(0, true);
        sharded.flush();
        assert_eq!(sharded.stats(), CacheStats::default());
        assert!(matches!(sharded.access(0, false), Lookup::Miss { .. }));
    }

    #[test]
    fn conservation_invariant() {
        let mut c = Cache::new(4096, 4, 128, 32);
        for i in 0..10_000u64 {
            let addr = (i * 97) % 16_384;
            c.access(addr, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.read_accesses + s.write_accesses, 10_000);
        assert!(s.read_hits <= s.read_accesses);
        assert!(s.write_hits <= s.write_accesses);
    }
}
