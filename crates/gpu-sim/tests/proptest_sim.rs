//! Property tests for the SIMT simulator: functional correctness of the
//! memory system under random access patterns, conservation laws of the
//! cache counters, and Lanes/Mask algebra.
//!
//! Randomized inputs come from the workspace's own deterministic PCG32
//! stream (fixed seeds), so the suite is hermetic and exactly
//! reproducible — no external property-testing framework required.

use ecl_gpu_sim::{cache::Cache, DeviceProfile, Gpu, Lanes, Mask, LANES};
use ecl_graph::generate::Pcg32;

#[test]
fn gather_scatter_functional() {
    // A gather of arbitrary in-range indices must return exactly the
    // backing data regardless of cache state.
    for case in 0..64u64 {
        let mut rng = Pcg32::new(0x6a77 + case);
        let n = 32 + rng.below(224) as usize;
        let data: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let buf = gpu.alloc_from(&data);
        let idx_lanes = {
            let mut l = Lanes::default();
            for i in 0..LANES {
                l.set(i, rng.below(n as u32));
            }
            l
        };
        let data_ref = &data;
        gpu.launch_warps("gather", 32, |w| {
            let got = w.load(buf, &idx_lanes, Mask::ALL);
            for lane in 0..LANES {
                assert_eq!(got.get(lane), data_ref[idx_lanes.get(lane) as usize]);
            }
        });
    }
}

#[test]
fn cache_counters_conserve() {
    for case in 0..64u64 {
        let mut rng = Pcg32::new(0xcace + case);
        let len = 1 + rng.below(499) as usize;
        let accesses: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.below(4096) as u64, rng.below(2) == 1))
            .collect();
        let mut c = Cache::new(1024, 2, 128, 32);
        for &(addr, wr) in &accesses {
            c.access(addr * 4, wr);
        }
        let s = c.stats();
        let reads = accesses.iter().filter(|&&(_, wr)| !wr).count() as u64;
        let writes = accesses.len() as u64 - reads;
        assert_eq!(s.read_accesses, reads);
        assert_eq!(s.write_accesses, writes);
        assert!(s.read_hits <= s.read_accesses);
        assert!(s.write_hits <= s.write_accesses);
        // Write-backs can never exceed total write accesses (each dirty
        // sector was dirtied by at least one write).
        assert!(s.writebacks <= s.write_accesses);
    }
}

#[test]
fn repeat_access_always_hits() {
    let mut rng = Pcg32::new(0x217);
    for _ in 0..64 {
        let addr = rng.below(100_000) as u64;
        let mut c = Cache::new(4096, 4, 128, 32);
        c.access(addr, false);
        assert_eq!(c.access(addr, false), ecl_gpu_sim::cache::Lookup::Hit);
        assert_eq!(c.access(addr, true), ecl_gpu_sim::cache::Lookup::Hit);
    }
}

#[test]
fn atomics_linearize_adds() {
    // Sum via atomicAdd from many warps equals the serial sum.
    for case in 0..64u64 {
        let mut rng = Pcg32::new(0xadd + case);
        let n = 1 + rng.below(63) as usize;
        let vals: Vec<u32> = (0..n).map(|_| 1 + rng.below(99)).collect();
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let ctr = gpu.alloc(1);
        let dev_vals = gpu.alloc_from(&vals);
        gpu.launch_warps("sum", n.div_ceil(LANES) * LANES, |w| {
            let tid = w.thread_ids();
            let m = w.launch_mask() & tid.lt_scalar(n as u32);
            if m.none() {
                return;
            }
            let v = w.load(dev_vals, &tid, m);
            let _ = w.atomic_add(ctr, &Lanes::splat(0), &v, m);
        });
        assert_eq!(gpu.download(ctr)[0], vals.iter().sum::<u32>());
    }
}

#[test]
fn mask_algebra() {
    let mut rng = Pcg32::new(0x3a5c);
    for _ in 0..256 {
        let (ma, mb) = (Mask(rng.next_u32()), Mask(rng.next_u32()));
        assert_eq!(
            (ma & mb).count() + (ma | mb).count(),
            ma.count() + mb.count()
        );
        assert_eq!(!(!ma), ma);
        assert_eq!(ma & !ma, Mask::NONE);
        assert_eq!(ma.iter().count(), ma.count());
    }
}

#[test]
fn lanes_select_partitions() {
    let mut rng = Pcg32::new(0x5e1);
    for _ in 0..256 {
        let vals = rng.next_u32();
        let m = Mask(rng.next_u32());
        let a = Lanes::splat(vals);
        let b = Lanes::iota(0, 1);
        let s = a.select(&b, m);
        for lane in 0..LANES {
            if m.lane(lane) {
                assert_eq!(s.get(lane), vals);
            } else {
                assert_eq!(s.get(lane), lane as u32);
            }
        }
    }
}

#[test]
fn simulated_cycles_deterministic() {
    // Any fixed access pattern must cost identical cycles on two runs.
    let run = |seed: u64| -> u64 {
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let buf = gpu.alloc(4096);
        gpu.launch_warps("k", 256, |w| {
            let tid = w.thread_ids();
            let idx = tid.map(|t| (t.wrapping_mul(seed as u32 | 1)) % 4096);
            let v = w.load(buf, &idx, w.launch_mask());
            w.store(buf, &idx, &v, w.launch_mask());
        });
        gpu.total_cycles()
    };
    let mut rng = Pcg32::new(0xde7);
    for _ in 0..32 {
        let seed = rng.next_u64();
        assert_eq!(run(seed), run(seed));
    }
}
