//! Property tests for the SIMT simulator: functional correctness of the
//! memory system under random access patterns, conservation laws of the
//! cache counters, and Lanes/Mask algebra.

use ecl_gpu_sim::{cache::Cache, DeviceProfile, Gpu, Lanes, Mask, LANES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gather_scatter_functional(
        data in proptest::collection::vec(any::<u32>(), 32..256),
        idx in proptest::collection::vec(0usize..32, 32),
    ) {
        // A gather of arbitrary in-range indices must return exactly the
        // backing data regardless of cache state.
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let buf = gpu.alloc_from(&data);
        let n = data.len();
        let idx_lanes = {
            let mut l = Lanes::default();
            for (i, &v) in idx.iter().enumerate() {
                l.set(i, (v % n) as u32);
            }
            l
        };
        let data_ref = &data;
        gpu.launch_warps("gather", 32, |w| {
            let got = w.load(buf, &idx_lanes, Mask::ALL);
            for lane in 0..LANES {
                assert_eq!(got.get(lane), data_ref[idx_lanes.get(lane) as usize]);
            }
        });
    }

    #[test]
    fn cache_counters_conserve(
        accesses in proptest::collection::vec((0u64..4096, any::<bool>()), 1..500),
    ) {
        let mut c = Cache::new(1024, 2, 128, 32);
        for &(addr, wr) in &accesses {
            c.access(addr * 4, wr);
        }
        let s = c.stats();
        let reads = accesses.iter().filter(|&&(_, wr)| !wr).count() as u64;
        let writes = accesses.len() as u64 - reads;
        prop_assert_eq!(s.read_accesses, reads);
        prop_assert_eq!(s.write_accesses, writes);
        prop_assert!(s.read_hits <= s.read_accesses);
        prop_assert!(s.write_hits <= s.write_accesses);
        // Write-backs can never exceed total write accesses (each dirty
        // sector was dirtied by at least one write).
        prop_assert!(s.writebacks <= s.write_accesses);
    }

    #[test]
    fn repeat_access_always_hits(addr in 0u64..100_000) {
        let mut c = Cache::new(4096, 4, 128, 32);
        c.access(addr, false);
        prop_assert_eq!(c.access(addr, false), ecl_gpu_sim::cache::Lookup::Hit);
        prop_assert_eq!(c.access(addr, true), ecl_gpu_sim::cache::Lookup::Hit);
    }

    #[test]
    fn atomics_linearize_adds(vals in proptest::collection::vec(1u32..100, 1..64)) {
        // Sum via atomicAdd from many warps equals the serial sum.
        let mut gpu = Gpu::new(DeviceProfile::test_tiny());
        let ctr = gpu.alloc(1);
        let n = vals.len();
        let dev_vals = gpu.alloc_from(&vals);
        gpu.launch_warps("sum", n.div_ceil(LANES) * LANES, |w| {
            let tid = w.thread_ids();
            let m = w.launch_mask() & tid.lt_scalar(n as u32);
            if m.none() {
                return;
            }
            let v = w.load(dev_vals, &tid, m);
            let _ = w.atomic_add(ctr, &Lanes::splat(0), &v, m);
        });
        prop_assert_eq!(gpu.download(ctr)[0], vals.iter().sum::<u32>());
    }

    #[test]
    fn mask_algebra(a in any::<u32>(), b in any::<u32>()) {
        let (ma, mb) = (Mask(a), Mask(b));
        prop_assert_eq!((ma & mb).count() + (ma | mb).count(), ma.count() + mb.count());
        prop_assert_eq!(!(!ma) , ma);
        prop_assert_eq!((ma & !ma), Mask::NONE);
        prop_assert_eq!(ma.iter().count(), ma.count());
    }

    #[test]
    fn lanes_select_partitions(vals in any::<u32>(), mask_bits in any::<u32>()) {
        let a = Lanes::splat(vals);
        let b = Lanes::iota(0, 1);
        let m = Mask(mask_bits);
        let s = a.select(&b, m);
        for lane in 0..LANES {
            if m.lane(lane) {
                prop_assert_eq!(s.get(lane), vals);
            } else {
                prop_assert_eq!(s.get(lane), lane as u32);
            }
        }
    }

    #[test]
    fn simulated_cycles_deterministic(seed in any::<u64>()) {
        // Any fixed access pattern must cost identical cycles on two runs.
        let run = |seed: u64| -> u64 {
            let mut gpu = Gpu::new(DeviceProfile::test_tiny());
            let buf = gpu.alloc(4096);
            gpu.launch_warps("k", 256, |w| {
                let tid = w.thread_ids();
                let idx = tid.map(|t| (t.wrapping_mul(seed as u32 | 1)) % 4096);
                let v = w.load(buf, &idx, w.launch_mask());
                w.store(buf, &idx, &v, w.launch_mask());
            });
            gpu.total_cycles()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
