//! Implementation of the `ecl-cc` command-line tool (thin `main` in
//! `main.rs`; everything testable lives here).
//!
//! Subcommands:
//!
//! * `components <file>` — label the components of a graph file,
//! * `stats <file>` — print the Table 2 row for a graph file,
//! * `generate <catalog-name> -o <file>` — write a catalog stand-in,
//! * `convert <in> <out>` — transcode between graph formats,
//! * `compare <file>` — run every algorithm on the input and report
//!   agreement and timings.
//!
//! Formats are inferred from extensions: `.el`/`.txt` edge list, `.gr`
//! DIMACS, `.mtx` Matrix Market, `.ecl` binary CSR.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ecl_cc::{CcResult, EclConfig};
use ecl_gpu_sim::{DeviceProfile, ExecMode, FaultPlan, Gpu};
use ecl_graph::{io, CsrGraph};
use std::path::Path;

pub mod profile;

/// Graph file formats the CLI reads and writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Whitespace edge list (`u v` per line).
    EdgeList,
    /// DIMACS `.gr`.
    Dimacs,
    /// Matrix Market coordinate.
    MatrixMarket,
    /// ECLCSR01 binary.
    Binary,
    /// Galois binary `.gr` (version 1).
    GaloisGr,
}

impl Format {
    /// Infers the format from a file extension; `None` if unknown.
    pub fn from_path(path: &Path) -> Option<Format> {
        match path.extension()?.to_str()? {
            "el" | "txt" | "edges" => Some(Format::EdgeList),
            "gr" | "dimacs" => Some(Format::Dimacs),
            "mtx" | "mm" => Some(Format::MatrixMarket),
            "ecl" | "bin" => Some(Format::Binary),
            "sgr" | "vgr" => Some(Format::GaloisGr),
            _ => None,
        }
    }

    /// Parses an explicit `--format` value.
    pub fn from_name(name: &str) -> Option<Format> {
        match name {
            "edgelist" | "el" => Some(Format::EdgeList),
            "dimacs" | "gr" => Some(Format::Dimacs),
            "matrixmarket" | "mtx" => Some(Format::MatrixMarket),
            "binary" | "ecl" => Some(Format::Binary),
            "galois" | "sgr" => Some(Format::GaloisGr),
            _ => None,
        }
    }
}

/// Reads a graph file in the given (or inferred) format.
pub fn read_graph(path: &Path, format: Option<Format>) -> Result<CsrGraph, String> {
    let format = format
        .or_else(|| Format::from_path(path))
        .ok_or_else(|| format!("cannot infer format of {}; pass --format", path.display()))?;
    let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let reader = std::io::BufReader::new(file);
    let res = match format {
        Format::EdgeList => io::read_edge_list(reader),
        Format::Dimacs => io::read_dimacs(reader),
        Format::MatrixMarket => io::read_matrix_market(reader),
        Format::Binary => io::read_binary(reader),
        Format::GaloisGr => io::read_galois_gr(reader),
    };
    res.map_err(|e| format!("{}: {e}", path.display()))
}

/// Writes a graph file in the given (or inferred) format.
pub fn write_graph(g: &CsrGraph, path: &Path, format: Option<Format>) -> Result<(), String> {
    let format = format
        .or_else(|| Format::from_path(path))
        .ok_or_else(|| format!("cannot infer format of {}; pass --format", path.display()))?;
    let file = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut writer = std::io::BufWriter::new(file);
    let res = match format {
        Format::EdgeList => io::write_edge_list(g, &mut writer),
        Format::Binary => io::write_binary(g, &mut writer),
        Format::GaloisGr => io::write_galois_gr(g, &mut writer),
        Format::Dimacs => {
            use std::io::Write;
            (|| {
                writeln!(writer, "c written by ecl-cc")?;
                writeln!(
                    writer,
                    "p sp {} {}",
                    g.num_vertices(),
                    g.num_directed_edges()
                )?;
                for (u, v) in g.directed_edges() {
                    writeln!(writer, "a {} {} 1", u + 1, v + 1)?;
                }
                Ok(())
            })()
        }
        Format::MatrixMarket => {
            use std::io::Write;
            (|| {
                writeln!(writer, "%%MatrixMarket matrix coordinate pattern symmetric")?;
                writeln!(
                    writer,
                    "{} {} {}",
                    g.num_vertices(),
                    g.num_vertices(),
                    g.num_edges()
                )?;
                for (u, v) in g.edges() {
                    writeln!(writer, "{} {}", v + 1, u + 1)?;
                }
                Ok(())
            })()
        }
    };
    res.map_err(|e: std::io::Error| format!("{}: {e}", path.display()))
}

/// Algorithms selectable via `--algo`.
pub const ALGORITHMS: &[&str] = &[
    "serial",
    "parallel",
    "gpu",
    "soman",
    "groute",
    "gunrock",
    "irgl",
    "bfscc",
    "label-prop",
    "bfscc-hybrid",
    "afforest",
    "multistep",
    "crono",
    "galois",
    "ndhybrid",
    "dfs",
    "bfs",
    "igraph",
    "unionfind",
];

/// Runs the named algorithm; `Err` on unknown names or refusals.
pub fn run_algorithm(name: &str, g: &CsrGraph, threads: usize) -> Result<CcResult, String> {
    run_algorithm_ex(name, g, threads, ExecMode::Serial)
}

/// [`run_algorithm`] with an explicit GPU-simulator execution mode.
/// Non-GPU algorithms ignore `exec`; GPU baselines stay serial (their
/// per-kernel timing is the point of running them).
pub fn run_algorithm_ex(
    name: &str,
    g: &CsrGraph,
    threads: usize,
    exec: ExecMode,
) -> Result<CcResult, String> {
    let gpu_run = |f: fn(&mut Gpu, &CsrGraph) -> ecl_baselines::gpu::GpuBaselineRun| {
        let mut gpu = Gpu::new(DeviceProfile::titan_x());
        f(&mut gpu, g).result
    };
    Ok(match name {
        "serial" => ecl_cc::serial::run(g, &EclConfig::default()),
        "parallel" => ecl_cc::parallel::run(g, threads, &EclConfig::default()),
        "gpu" => {
            let mut gpu = Gpu::new(DeviceProfile::titan_x());
            gpu.set_exec_mode(exec);
            ecl_cc::gpu::run(&mut gpu, g, &EclConfig::default()).0
        }
        "soman" => gpu_run(ecl_baselines::gpu::soman::run),
        "groute" => gpu_run(ecl_baselines::gpu::groute::run),
        "gunrock" => gpu_run(ecl_baselines::gpu::gunrock::run),
        "irgl" => gpu_run(ecl_baselines::gpu::irgl::run),
        "bfscc" => ecl_baselines::cpu::bfscc::run(g, threads),
        "bfscc-hybrid" => ecl_baselines::cpu::bfscc::run_direction_optimizing(g, threads),
        "afforest" => ecl_baselines::cpu::afforest::run(g, threads),
        "label-prop" => ecl_baselines::cpu::label_prop::run(g, threads),
        "multistep" => ecl_baselines::cpu::multistep::run(g, threads),
        "crono" => ecl_baselines::cpu::crono::run(g, threads)
            .ok_or("crono: input exceeds the n x dmax memory model")?,
        "galois" => ecl_baselines::cpu::galois_async::run(g, threads),
        "ndhybrid" => ecl_baselines::cpu::ndhybrid::run(g, threads),
        "dfs" => ecl_baselines::serial::dfs_cc(g),
        "bfs" => ecl_baselines::serial::bfs_cc(g),
        "igraph" => ecl_baselines::serial::igraph_cc(g),
        "unionfind" => ecl_baselines::serial::unionfind_cc(g),
        other => {
            return Err(format!(
                "unknown algorithm '{other}' (try: {})",
                ALGORITHMS.join(", ")
            ))
        }
    })
}

/// Runs the graceful-degradation fallback ladder (simulated GPU →
/// multicore CPU → serial), certifying each stage's output before
/// acceptance. `watchdog` is the optional per-kernel cycle budget for the
/// GPU stage; `fault` is installed on the simulated device (use
/// [`FaultPlan::none`] for a healthy run).
pub fn run_ladder(
    g: &CsrGraph,
    threads: usize,
    watchdog: Option<u64>,
    fault: FaultPlan,
) -> Result<ecl_cc::LadderOutcome, String> {
    run_ladder_ex(g, threads, watchdog, fault, ExecMode::Serial)
}

/// [`run_ladder`] with an explicit GPU-stage execution mode.
pub fn run_ladder_ex(
    g: &CsrGraph,
    threads: usize,
    watchdog: Option<u64>,
    fault: FaultPlan,
    exec: ExecMode,
) -> Result<ecl_cc::LadderOutcome, String> {
    run_ladder_obs(g, threads, watchdog, fault, exec, None)
}

/// [`run_ladder_ex`] with an optional observability recorder: the
/// ladder emits one wall-clock span per attempt and forwards the
/// recorder to the simulated GPU for kernel spans.
pub fn run_ladder_obs(
    g: &CsrGraph,
    threads: usize,
    watchdog: Option<u64>,
    fault: FaultPlan,
    exec: ExecMode,
    recorder: Option<ecl_obs::Recorder>,
) -> Result<ecl_cc::LadderOutcome, String> {
    let cfg = ecl_cc::LadderConfig {
        threads,
        watchdog,
        fault,
        exec,
        profile: DeviceProfile::titan_x(),
        recorder,
        ..ecl_cc::LadderConfig::default()
    };
    ecl_cc::ladder::run_with_fallback(g, &cfg).map_err(|e| e.to_string())
}

/// Runs sharded multi-device ECL-CC: the graph is edge-cut across
/// `shards` simulated devices, each solves locally, and min-label
/// exchange rounds over the fault-injected interconnect reconcile the
/// shared vertices to a certified, byte-identical-to-serial labeling.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_obs(
    g: &CsrGraph,
    shards: usize,
    threads: usize,
    watchdog: Option<u64>,
    fault: FaultPlan,
    exec: ExecMode,
    checkpoint_dir: Option<std::path::PathBuf>,
    crash_budget: u32,
    recorder: Option<ecl_obs::Recorder>,
) -> Result<ecl_shard::ShardOutcome, String> {
    let cfg = ecl_shard::ShardConfig {
        shards,
        threads,
        watchdog,
        fault,
        exec,
        profile: DeviceProfile::titan_x(),
        checkpoint_dir,
        crash_budget,
        recorder,
        ..ecl_shard::ShardConfig::default()
    };
    ecl_shard::run_sharded(g, &cfg).map_err(|e| e.to_string())
}

/// Runs ECL-CC on the simulated GPU alone — no fallback — with the given
/// fault plan and optional watchdog installed. Structured errors (kernel
/// name, cycle counts) are flattened to a message here because the CLI is
/// about to print them; `batch` keeps the structure.
pub fn run_gpu_with_fault(
    g: &CsrGraph,
    fault: FaultPlan,
    watchdog: Option<u64>,
    exec: ExecMode,
) -> Result<CcResult, String> {
    run_gpu_observed(g, fault, watchdog, exec, false, None).map(|(r, _)| r)
}

/// Runs ECL-CC on the simulated GPU and returns the run statistics
/// alongside the labeling. `record_paths` enables the Table 4
/// parent-path-length probes; `recorder` (when enabled) receives
/// per-kernel spans and simulator metrics.
pub fn run_gpu_observed(
    g: &CsrGraph,
    fault: FaultPlan,
    watchdog: Option<u64>,
    exec: ExecMode,
    record_paths: bool,
    recorder: Option<ecl_obs::Recorder>,
) -> Result<(CcResult, ecl_cc::gpu::GpuRunStats), String> {
    let mut gpu = Gpu::new(DeviceProfile::titan_x());
    gpu.set_fault_plan(fault);
    gpu.set_watchdog(watchdog);
    gpu.set_exec_mode(exec);
    gpu.set_recorder(recorder);
    let cfg = EclConfig {
        record_path_lengths: record_paths,
        ..EclConfig::default()
    };
    ecl_cc::gpu::try_run(&mut gpu, g, &cfg).map_err(|e| e.to_string())
}

/// Parses a label file of `vertex label` lines (the format written by
/// `components --labels`) into a dense label array for an `n`-vertex
/// graph. Vertices may appear in any order; each must appear exactly once.
pub fn parse_label_file(text: &str, n: usize) -> Result<Vec<u32>, String> {
    let mut labels = vec![u32::MAX; n];
    let mut seen = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (v, l) = match (it.next(), it.next(), it.next()) {
            (Some(v), Some(l), None) => (v, l),
            _ => return Err(format!("line {}: expected `vertex label`", lineno + 1)),
        };
        let v: usize = v
            .parse()
            .map_err(|e| format!("line {}: bad vertex: {e}", lineno + 1))?;
        let l: u32 = l
            .parse()
            .map_err(|e| format!("line {}: bad label: {e}", lineno + 1))?;
        if v >= n {
            return Err(format!(
                "line {}: vertex {v} out of range (n = {n})",
                lineno + 1
            ));
        }
        if labels[v] != u32::MAX {
            return Err(format!("line {}: vertex {v} listed twice", lineno + 1));
        }
        labels[v] = l;
        seen += 1;
    }
    if seen != n {
        return Err(format!("label file covers {seen} of {n} vertices"));
    }
    Ok(labels)
}

/// Resolves a catalog graph name (Table 2 name) and scale string.
pub fn generate_catalog(name: &str, scale: &str) -> Result<CsrGraph, String> {
    use ecl_graph::catalog::{PaperGraph, Scale};
    let scale = match scale {
        "tiny" => Scale::Tiny,
        "bench" => Scale::Bench,
        "large" => Scale::Large,
        other => return Err(format!("unknown scale '{other}' (tiny|bench|large)")),
    };
    let pg = PaperGraph::ALL
        .iter()
        .find(|p| p.info().name == name)
        .ok_or_else(|| {
            let names: Vec<_> = PaperGraph::ALL.iter().map(|p| p.info().name).collect();
            format!("unknown graph '{name}' (available: {})", names.join(", "))
        })?;
    Ok(pg.generate(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_inference() {
        assert_eq!(Format::from_path(Path::new("a.el")), Some(Format::EdgeList));
        assert_eq!(Format::from_path(Path::new("a.gr")), Some(Format::Dimacs));
        assert_eq!(
            Format::from_path(Path::new("a.mtx")),
            Some(Format::MatrixMarket)
        );
        assert_eq!(Format::from_path(Path::new("a.ecl")), Some(Format::Binary));
        assert_eq!(Format::from_path(Path::new("a.xyz")), None);
        assert_eq!(Format::from_path(Path::new("noext")), None);
        assert_eq!(Format::from_name("edgelist"), Some(Format::EdgeList));
        assert_eq!(Format::from_name("nope"), None);
    }

    #[test]
    fn file_roundtrip_all_formats() {
        let g = ecl_graph::generate::gnm_random(60, 150, 1);
        let dir = std::env::temp_dir().join("ecl_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        for ext in ["el", "gr", "mtx", "ecl", "sgr"] {
            let path = dir.join(format!("g.{ext}"));
            write_graph(&g, &path, None).unwrap();
            let g2 = read_graph(&path, None).unwrap();
            // Edge sets must match (edge list may drop trailing isolated
            // vertices; this graph has none with high probability).
            assert_eq!(
                g.edges().collect::<Vec<_>>(),
                g2.edges().collect::<Vec<_>>(),
                "{ext}"
            );
        }
    }

    #[test]
    fn every_algorithm_runs() {
        let g = ecl_graph::generate::gnm_random(120, 300, 2);
        let reference =
            ecl_graph::stats::canonicalize_labels(&ecl_graph::stats::reference_labels(&g));
        for &name in ALGORITHMS {
            let r = run_algorithm(name, &g, 2).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                ecl_graph::stats::canonicalize_labels(&r.labels),
                reference,
                "{name}"
            );
        }
    }

    #[test]
    fn label_file_roundtrip() {
        let labels = parse_label_file("0 0\n1 0\n2 2\n", 3).unwrap();
        assert_eq!(labels, vec![0, 0, 2]);
        // Order-insensitive, comments and blanks skipped.
        let labels = parse_label_file("# hdr\n2 2\n\n0 0\n1 0\n", 3).unwrap();
        assert_eq!(labels, vec![0, 0, 2]);
        assert!(parse_label_file("0 0\n", 2).is_err(), "missing vertex");
        assert!(parse_label_file("0 0\n0 1\n", 1).is_err(), "duplicate");
        assert!(parse_label_file("5 0\n", 1).is_err(), "out of range");
        assert!(parse_label_file("a b\n", 1).is_err(), "garbage");
        assert!(parse_label_file("0 1 2\n", 1).is_err(), "extra column");
    }

    #[test]
    fn ladder_from_cli_certifies() {
        let g = ecl_graph::generate::disjoint_cliques(3, 5);
        let out = run_ladder(&g, 2, None, FaultPlan::none()).unwrap();
        assert_eq!(out.certificate.num_components, 3);
    }

    #[test]
    fn unknown_algorithm_rejected() {
        let g = ecl_graph::generate::path(4);
        assert!(run_algorithm("quantum", &g, 1).is_err());
    }

    #[test]
    fn catalog_generation() {
        let g = generate_catalog("rmat16.sym", "tiny").unwrap();
        assert!(g.num_vertices() > 0);
        assert!(generate_catalog("nope", "tiny").is_err());
        assert!(generate_catalog("rmat16.sym", "huge").is_err());
    }
}
