//! The `profile` subcommand: runs ECL-CC on the simulated GPU with the
//! observability recorder attached and regenerates the paper's
//! cache-locality table (Table 3), the per-phase cycle breakdown
//! (§4.5), and the parent-path-length table (Table 4) as a text report,
//! plus Chrome-trace and flat-metrics JSON exports.
//!
//! ```text
//! profile [FILE] [--graph NAME]... [--device titan-x|k40]
//!         [--scale tiny|bench|large] [--sim-workers N]
//!         [--trace FILE] [--metrics FILE] [--report] [--validate]
//! ```
//!
//! With no input, a bundled quick set of paper graphs is profiled.
//! `--validate` re-parses every JSON artifact just written and fails the
//! command if either does not conform to its schema — the CI hook.

use ecl_cc::EclConfig;
use ecl_gpu_sim::{DeviceProfile, ExecMode, Gpu};
use ecl_graph::CsrGraph;
use ecl_obs::report::{CacheRow, PathRow, PhaseRow};
use ecl_obs::{Recorder, TraceEvent, PID_ENGINE};

/// Everything the profile run produced for one graph.
struct GraphProfile {
    cache: CacheRow,
    phases: PhaseRow,
    paths: Option<PathRow>,
}

/// Profiles one graph on a fresh device and returns its report rows.
/// The device's trace timeline starts at `origin`; the end position is
/// written back so the next graph's spans do not overlap.
fn profile_graph(
    name: &str,
    g: &CsrGraph,
    profile: &DeviceProfile,
    exec: ExecMode,
    recorder: &Recorder,
    origin: &mut u64,
) -> Result<GraphProfile, String> {
    let mut device = Gpu::new(profile.clone());
    device.set_exec_mode(exec);
    device.set_recorder(Some(recorder.clone()));
    device.set_timeline_origin(*origin);
    let cfg = EclConfig {
        record_path_lengths: true,
        ..EclConfig::default()
    };
    let wall_start = recorder.now_us();
    let (result, stats) = ecl_cc::gpu::run(&mut device, g, &cfg);
    ecl_verify::certify(g, &result.labels).map_err(|e| format!("{name}: {e}"))?;
    recorder.record(
        TraceEvent::span(
            &format!("profile:{name}"),
            "profile",
            PID_ENGINE,
            0,
            wall_start,
            recorder.now_us().saturating_sub(wall_start),
        )
        .arg_u64("vertices", g.num_vertices() as u64)
        .arg_u64("edges", g.num_edges() as u64)
        .arg_u64("total_cycles", stats.total_cycles()),
    );
    *origin = device.timeline_cycles();

    let l1 = device.l1_stats();
    let l2 = device.l2_stats();
    let dram: u64 = stats.kernels.iter().map(|k| k.dram_transactions).sum();
    Ok(GraphProfile {
        cache: CacheRow {
            graph: name.to_string(),
            l1_read_hit_pct: 100.0 * l1.read_hit_ratio(),
            l2_read_hit_pct: 100.0 * l2.read_hit_ratio(),
            l2_reads: l2.read_accesses,
            l2_writes: l2.write_accesses,
            dram,
        },
        phases: PhaseRow {
            graph: name.to_string(),
            phases: stats
                .kernels
                .iter()
                .map(|k| (k.name.clone(), k.cycles))
                .collect(),
            total_cycles: stats.total_cycles(),
        },
        paths: stats.path_lengths.map(|p| PathRow {
            graph: name.to_string(),
            samples: p.samples,
            avg: p.average(),
            max: p.max as u64,
        }),
    })
}

/// Runs the `profile` subcommand. `args` is the full argument list
/// including the `profile` token itself.
pub fn run_profile(args: &[String]) -> Result<(), String> {
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let profile = match flag("--device").as_deref() {
        None | Some("titan-x") => DeviceProfile::titan_x(),
        Some("k40") => DeviceProfile::k40(),
        Some(other) => return Err(format!("--device: unknown device '{other}' (titan-x|k40)")),
    };
    let exec = match flag("--sim-workers") {
        Some(v) => ExecMode::HostParallel(
            v.parse()
                .map_err(|e| format!("--sim-workers: {e} (use 0 for one per core)"))?,
        ),
        None => ExecMode::Serial,
    };
    let scale = flag("--scale").unwrap_or_else(|| "tiny".into());

    // Input selection: an explicit graph file, any number of --graph
    // catalog names, or (default) the bundled quick set.
    let mut graphs: Vec<(String, CsrGraph)> = Vec::new();
    let file_args: Vec<&String> = args
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(i, a)| !a.starts_with("--") && !args[i - 1].starts_with("--"))
        .map(|(_, a)| a)
        .collect();
    for f in &file_args {
        let path = std::path::PathBuf::from(f);
        let g = crate::read_graph(&path, None)?;
        graphs.push((f.to_string(), g));
    }
    for (i, a) in args.iter().enumerate() {
        if a == "--graph" {
            let name = args
                .get(i + 1)
                .ok_or("--graph needs a catalog graph name")?;
            graphs.push((name.clone(), crate::generate_catalog(name, &scale)?));
        }
    }
    if graphs.is_empty() {
        for name in [
            "2d-2e20.sym",
            "europe_osm",
            "rmat16.sym",
            "soc-LiveJournal1",
        ] {
            graphs.push((name.to_string(), crate::generate_catalog(name, &scale)?));
        }
    }

    let recorder = Recorder::new();
    let mut cache_rows = Vec::new();
    let mut phase_rows = Vec::new();
    let mut path_rows = Vec::new();
    let mut origin = 0u64;
    for (name, g) in &graphs {
        let gp = profile_graph(name, g, &profile, exec, &recorder, &mut origin)?;
        cache_rows.push(gp.cache);
        phase_rows.push(gp.phases);
        path_rows.extend(gp.paths);
    }

    let exec_desc = exec.describe();
    let report = ecl_obs::report::profile_report(
        profile.name,
        &exec_desc,
        &cache_rows,
        &phase_rows,
        &path_rows,
    );
    // The text report is the default output; --trace/--metrics add the
    // machine-readable artifacts next to it.
    if args.iter().any(|a| a == "--report")
        || (flag("--trace").is_none() && flag("--metrics").is_none())
    {
        print!("{report}");
    }

    let trace_out = flag("--trace");
    let metrics_out = flag("--metrics");
    if let Some(path) = &trace_out {
        let md = [
            ("tool".to_string(), "ecl-cc profile".to_string()),
            ("device".to_string(), profile.name.to_string()),
            ("exec".to_string(), exec_desc.clone()),
        ];
        std::fs::write(path, recorder.chrome_trace_json(&md))
            .map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace written to {path}");
    }
    if let Some(path) = &metrics_out {
        std::fs::write(path, recorder.metrics_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics written to {path}");
    }

    if args.iter().any(|a| a == "--validate") {
        let trace_json = match &trace_out {
            Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
            None => recorder.chrome_trace_json(&[]),
        };
        let summary = ecl_obs::validate_chrome_trace(&trace_json)
            .map_err(|e| format!("trace validation failed: {e}"))?;
        let metrics_json = match &metrics_out {
            Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
            None => recorder.metrics_json(),
        };
        let metric_count = ecl_obs::validate_metrics_json(&metrics_json)
            .map_err(|e| format!("metrics validation failed: {e}"))?;
        if summary.spans == 0 {
            return Err("trace validation failed: no kernel spans recorded".into());
        }
        eprintln!(
            "validated: {} events ({} spans, {} instants, {} counters), {} metrics",
            summary.events, summary.spans, summary.instants, summary.counters, metric_count
        );
    }
    Ok(())
}
