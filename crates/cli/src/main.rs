//! The `ecl-cc` command-line tool. See `lib.rs` for the implementation.

use ecl_cc_cli::{
    generate_catalog, parse_label_file, read_graph, run_algorithm, run_algorithm_ex,
    run_gpu_observed, run_ladder_obs, write_graph, Format, ALGORITHMS,
};
use ecl_gpu_sim::{ExecMode, FaultPlan};
use ecl_obs::{Recorder, TraceEvent, PID_ENGINE};
use std::path::PathBuf;
use std::time::Instant;

const USAGE: &str = "\
usage: ecl-cc <command> [args]

commands:
  components <file> [--algo NAME|auto] [--threads N] [--format F] [--labels OUT]
             [--watchdog CYCLES] [--fault-plan SPEC] [--sim-workers N]
             [--trace FILE] [--stats] [--shards N] [--shard-chaos SPEC]
             [--shard-ckpt DIR] [--crash-budget N]
      label connected components (default algo: parallel); `--algo auto`
      runs the fallback ladder (simulated GPU -> multicore CPU -> serial),
      certifying each stage's output and degrading on failure; --watchdog
      sets the GPU stage's per-kernel cycle budget; --fault-plan installs
      an injection plan on the simulated GPU (gpu/auto only): none,
      cas-storm[:SEED], slow-memory[:SEED], scheduler-chaos[:SEED],
      everything[:SEED], or custom `seed=N,cas=PERMILLE,mem=PERMILLE/CYC,shuffle`;
      --sim-workers N runs the simulated GPU host-parallel on N threads
      (0 = one per core) — labels stay certified-identical, cycle counts
      become indicative only; omit it for deterministic serial timing;
      --trace FILE writes a Chrome trace (kernel + ladder spans);
      --stats prints per-kernel cycles and parent-path-length stats
      (gpu algo only); --shards N edge-cuts the graph across N simulated
      devices (overriding --algo) with min-label exchange rounds over a
      fault-injected interconnect — --shard-chaos SPEC takes the same
      fault-plan grammar plus drop=/corrupt=/crash= and the
      shard-chaos[:SEED] preset, --shard-ckpt DIR persists crash-safe
      round checkpoints, --crash-budget N (default 1) bounds tolerated
      device crashes before degrading to the single-device ladder
  batch --jobs FILE [--workers N] [--queue N] [--deadline-ms MS] [--retries N]
        [--journal FILE] [--resume FILE] [--results DIR] [--report FILE]
        [--fault-plan SPEC] [--watchdog CYCLES] [--threads N] [--reject-full]
        [--breaker-threshold N] [--breaker-cooldown-ms MS] [--breaker-probes N]
        [--kill-after N] [--sim-workers N] [--shards N] [--trace FILE]
      run a batch of CC jobs (one `<name> <graph-spec>` per line in FILE)
      through the certified fallback ladder on a worker pool, with
      retry/backoff, per-backend circuit breakers, and a crash-safe
      journal; --resume continues a killed run from its journal;
      the machine-readable JSON report goes to --report or stdout;
      --kill-after N simulates SIGKILL after N completed jobs (testing);
      --sim-workers N makes GPU stages host-parallel (0 = auto: cores
      are split between batch workers and per-device SM threads;
      --shards N runs every job sharded across N simulated devices and
      widens the core budget to workers x shards);
      --trace FILE writes a Chrome trace (job, ladder, kernel spans,
      breaker transitions, queue depth)
  serve --dir DIR [--addr HOST:PORT] [--vertices N] [--resume]
        [--max-conns N] [--idle-timeout-ms MS] [--snapshot-every N]
        [--workers N] [--queue N] [--deadline-ms MS] [--metrics FILE]
      run the connectivity-as-a-service TCP server (ECL/1 line protocol:
      ADD/CONN/COMP/STATS/METRICS/SUBMIT/JOB/PING/QUIT/SHUTDOWN); every
      acknowledged ADD is fsync'd to a write-ahead log in --dir before
      the OK, with periodic digest-pinned snapshots, so a SIGKILL'd
      server restarts with --resume to the exact acknowledged edge set;
      prints `listening on ADDR` once bound (use port 0 for ephemeral);
      SUBMIT routes batch jobs onto the engine's bounded queue with
      circuit breakers and certified fallback
  profile [FILE] [--graph NAME]... [--device titan-x|k40] [--scale S]
          [--sim-workers N] [--trace FILE] [--metrics FILE] [--report]
          [--validate]
      run ECL-CC on the simulated GPU with full instrumentation and
      regenerate the paper's cache-locality table (Table 3), per-phase
      cycle breakdown (and Table 4 path lengths) as a text report;
      --trace/--metrics write Chrome-trace / flat-metrics JSON;
      --validate re-parses both against their schemas (CI gate);
      default input is a bundled quick set of paper graphs
  verify <file> [--labels FILE | --algo NAME] [--threads N] [--format F]
         [--sim-workers N]
      certify a labeling with the independent O(n+m) checker: edge
      consistency, representative fixpoints, component count vs BFS
  stats <file> [--format F]
      print the graph's Table-2 statistics
  generate <catalog-name> -o <file> [--scale tiny|bench|large]
      write a synthetic stand-in for one of the paper's inputs
  convert <in> <out> [--in-format F] [--out-format F]
      transcode between graph formats (.el .gr .mtx .ecl)
  compare <file> [--threads N] [--format F]
      run every algorithm, verify agreement, report times
  list
      list algorithms and catalog graphs
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print!("{USAGE}");
        return;
    }
    if let Err(e) = dispatch(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn fmt_flag(args: &[String], name: &str) -> Result<Option<Format>, String> {
    match flag(args, name) {
        None => Ok(None),
        Some(v) => Format::from_name(&v)
            .map(Some)
            .ok_or_else(|| format!("unknown format '{v}'")),
    }
}

fn positional(args: &[String], n: usize) -> Result<PathBuf, String> {
    args.iter()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // Drop values that follow a flag.
            let idx = args.iter().position(|x| x == *a).unwrap();
            idx == 0 || !args[idx - 1].starts_with("--")
        })
        .nth(n)
        .map(PathBuf::from)
        .ok_or_else(|| format!("missing argument {}", n + 1))
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let threads: usize = flag(args, "--threads")
        .map(|t| t.parse().map_err(|e| format!("--threads: {e}")))
        .transpose()?
        .unwrap_or_else(ecl_parallel::default_threads);
    // GPU-simulator execution mode: serial (deterministic cycles) unless
    // --sim-workers asks for host-parallel throughput.
    let sim_exec: ExecMode = match flag(args, "--sim-workers") {
        Some(v) => ExecMode::HostParallel(
            v.parse()
                .map_err(|e| format!("--sim-workers: {e} (use 0 for one per core)"))?,
        ),
        None => ExecMode::Serial,
    };
    match args[0].as_str() {
        "components" => {
            let path = positional(args, 0)?;
            let algo = flag(args, "--algo").unwrap_or_else(|| "parallel".into());
            let watchdog: Option<u64> = flag(args, "--watchdog")
                .map(|w| w.parse().map_err(|e| format!("--watchdog: {e}")))
                .transpose()?;
            let shards: Option<usize> = flag(args, "--shards")
                .map(|v| v.parse().map_err(|e| format!("--shards: {e}")))
                .transpose()?;
            let shard_chaos = match flag(args, "--shard-chaos") {
                Some(spec) => {
                    if shards.is_none() {
                        return Err("--shard-chaos needs --shards N".into());
                    }
                    Some(FaultPlan::parse(&spec).map_err(|e| format!("--shard-chaos: {e}"))?)
                }
                None => None,
            };
            let fault = match flag(args, "--fault-plan") {
                Some(spec) => {
                    if algo != "auto" && algo != "gpu" && shards.is_none() {
                        return Err(format!(
                            "--fault-plan targets the simulated GPU; it needs \
                             --algo gpu, --algo auto, or --shards N (got '{algo}')"
                        ));
                    }
                    FaultPlan::parse(&spec).map_err(|e| format!("--fault-plan: {e}"))?
                }
                None => FaultPlan::none(),
            };
            let g = read_graph(&path, fmt_flag(args, "--format")?)?;
            let trace_out = flag(args, "--trace");
            let want_stats = args.iter().any(|a| a == "--stats");
            if want_stats && algo != "gpu" {
                return Err(format!(
                    "--stats reads per-kernel and path-length statistics from \
                     the simulated GPU; it needs --algo gpu (got '{algo}')"
                ));
            }
            let recorder = trace_out.as_ref().map(|_| Recorder::new());
            let t = Instant::now();
            let (r, how, gpu_stats) = if let Some(n) = shards {
                let ckpt = flag(args, "--shard-ckpt").map(PathBuf::from);
                let budget: u32 = flag(args, "--crash-budget")
                    .map(|v| v.parse().map_err(|e| format!("--crash-budget: {e}")))
                    .transpose()?
                    .unwrap_or(1);
                let plan = shard_chaos.unwrap_or(fault);
                let out = ecl_cc_cli::run_sharded_obs(
                    &g,
                    n,
                    threads,
                    watchdog,
                    plan,
                    sim_exec,
                    ckpt,
                    budget,
                    recorder.clone(),
                )?;
                let rep = &out.report;
                eprintln!(
                    "sharded: {} devices, {} rounds to fixpoint, {} shared vertices, \
                     {} frames ({} retransmits), {} exchange bytes, {} crashes \
                     ({} shards recovered){}",
                    rep.shards,
                    rep.rounds,
                    rep.shared_vertices,
                    rep.exchange.frames_sent,
                    rep.exchange.retransmits,
                    rep.exchange.bytes_sent,
                    rep.device_crashes,
                    rep.shards_recovered,
                    if rep.degraded {
                        "; degraded to single-device ladder"
                    } else {
                        ""
                    }
                );
                let how = if rep.degraded {
                    format!("sharded:{n}(degraded)")
                } else {
                    format!("sharded:{n}")
                };
                (out.result, how, None)
            } else if algo == "auto" {
                let out = run_ladder_obs(&g, threads, watchdog, fault, sim_exec, recorder.clone())?;
                for a in &out.attempts {
                    if let Some(reason) = a.outcome.reason() {
                        eprintln!(
                            "  {}#{}: failed ({reason}); degrading",
                            a.backend.name(),
                            a.attempt
                        );
                    }
                }
                (out.result, format!("auto:{}", out.backend.name()), None)
            } else if algo == "gpu"
                && (watchdog.is_some()
                    || flag(args, "--fault-plan").is_some()
                    || want_stats
                    || recorder.is_some())
            {
                let (r, stats) =
                    run_gpu_observed(&g, fault, watchdog, sim_exec, want_stats, recorder.clone())?;
                let how = if flag(args, "--fault-plan").is_some() {
                    "gpu(fault-injected)".to_string()
                } else {
                    "gpu".to_string()
                };
                (r, how, Some(stats))
            } else {
                let span_start = recorder.as_ref().map(Recorder::now_us);
                let r = run_algorithm_ex(&algo, &g, threads, sim_exec)?;
                if let (Some(rec), Some(start)) = (&recorder, span_start) {
                    rec.record(TraceEvent::span(
                        &format!("components:{algo}"),
                        "components",
                        PID_ENGINE,
                        0,
                        start,
                        rec.now_us().saturating_sub(start),
                    ));
                }
                (r, algo.clone(), None)
            };
            let elapsed = t.elapsed();
            ecl_verify::certify(&g, &r.labels).map_err(|e| format!("verification failed: {e}"))?;
            println!(
                "{}: {} vertices, {} edges, {} components ({how}, {:.2} ms, certified)",
                path.display(),
                g.num_vertices(),
                g.num_edges(),
                r.num_components(),
                elapsed.as_secs_f64() * 1e3
            );
            let sizes = r.component_sizes();
            println!(
                "largest component: {} vertices ({:.1}%)",
                sizes.first().copied().unwrap_or(0),
                100.0 * sizes.first().copied().unwrap_or(0) as f64 / g.num_vertices().max(1) as f64
            );
            if want_stats {
                if let Some(stats) = &gpu_stats {
                    println!("kernel cycles:");
                    for k in &stats.kernels {
                        println!("  {:<14} {:>12}", k.name, k.cycles);
                    }
                    println!("  {:<14} {:>12}", "total", stats.total_cycles());
                    if let Some(p) = &stats.path_lengths {
                        println!(
                            "parent path lengths: {} samples, avg {:.2}, max {}",
                            p.samples,
                            p.average(),
                            p.max
                        );
                    }
                }
            }
            if let (Some(out), Some(rec)) = (&trace_out, &recorder) {
                let md = [
                    ("tool".to_string(), "ecl-cc components".to_string()),
                    ("exec".to_string(), sim_exec.describe()),
                ];
                std::fs::write(out, rec.chrome_trace_json(&md))
                    .map_err(|e| format!("{out}: {e}"))?;
                eprintln!("trace written to {out}");
            }
            if let Some(out) = flag(args, "--labels") {
                let text: String = r
                    .labels
                    .iter()
                    .enumerate()
                    .map(|(v, l)| format!("{v} {l}\n"))
                    .collect();
                std::fs::write(&out, text).map_err(|e| format!("{out}: {e}"))?;
                println!("labels written to {out}");
            }
            Ok(())
        }
        "batch" => {
            let jobs_file = flag(args, "--jobs").ok_or("batch needs --jobs <file>")?;
            let text =
                std::fs::read_to_string(&jobs_file).map_err(|e| format!("{jobs_file}: {e}"))?;
            let jobs = ecl_engine::parse_jobs(&text)?;

            let mut cfg = ecl_engine::EngineConfig {
                ladder: ecl_cc::LadderConfig {
                    threads,
                    exec: sim_exec,
                    ..ecl_cc::LadderConfig::default()
                },
                ..ecl_engine::EngineConfig::default()
            };
            let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
                flag(args, name)
                    .map(|v| v.parse().map_err(|e| format!("{name}: {e}")))
                    .transpose()
            };
            if let Some(w) = parse_u64("--workers")? {
                cfg.workers = w.max(1) as usize;
            }
            if let Some(q) = parse_u64("--queue")? {
                cfg.queue_capacity = q.max(1) as usize;
            }
            cfg.deadline_ms = parse_u64("--deadline-ms")?;
            if let Some(r) = parse_u64("--retries")? {
                cfg.retries = r as u32;
            }
            cfg.ladder.watchdog = parse_u64("--watchdog")?;
            if let Some(spec) = flag(args, "--fault-plan") {
                cfg.ladder.fault =
                    FaultPlan::parse(&spec).map_err(|e| format!("--fault-plan: {e}"))?;
            }
            if let Some(t) = parse_u64("--breaker-threshold")? {
                cfg.breaker.failure_threshold = t.max(1) as u32;
            }
            if let Some(c) = parse_u64("--breaker-cooldown-ms")? {
                cfg.breaker.cooldown_ms = c;
            }
            if let Some(p) = parse_u64("--breaker-probes")? {
                cfg.breaker.half_open_successes = p.max(1) as u32;
            }
            if let Some(k) = parse_u64("--kill-after")? {
                cfg.kill_after_jobs = Some(k as usize);
            }
            if let Some(s) = parse_u64("--shards")? {
                cfg.shards_per_job = s.max(1) as usize;
            }
            cfg.reject_when_full = args.iter().any(|a| a == "--reject-full");
            if let Some(j) = flag(args, "--journal") {
                cfg.journal_path = Some(PathBuf::from(j));
            }
            if let Some(j) = flag(args, "--resume") {
                cfg.journal_path = Some(PathBuf::from(j));
                cfg.resume = true;
            }
            if let Some(d) = flag(args, "--results") {
                cfg.results_dir = Some(PathBuf::from(d));
            }

            let trace_out = flag(args, "--trace");
            let recorder = trace_out.as_ref().map(|_| Recorder::new());
            if let Some(rec) = &recorder {
                cfg.ladder.recorder = Some(rec.clone());
            }

            let report = ecl_engine::run_batch(&jobs, &cfg)?;
            if let (Some(out), Some(rec)) = (&trace_out, &recorder) {
                let md = [
                    ("tool".to_string(), "ecl-cc batch".to_string()),
                    ("exec".to_string(), sim_exec.describe()),
                ];
                std::fs::write(out, rec.chrome_trace_json(&md))
                    .map_err(|e| format!("{out}: {e}"))?;
                eprintln!("trace written to {out}");
            }
            let json = report.to_json();
            match flag(args, "--report") {
                Some(out) => {
                    std::fs::write(&out, &json).map_err(|e| format!("{out}: {e}"))?;
                    eprintln!("report written to {out}");
                }
                None => println!("{json}"),
            }
            eprintln!(
                "batch: {}/{} jobs done ({} resumed, {} failed), {} retries, \
                 {} breaker trips, {:.1} ms",
                report.done() + report.resumed(),
                report.expected_jobs,
                report.resumed(),
                report.failed(),
                report.total_retries(),
                report.total_trips(),
                report.total_ms
            );
            if report.aborted {
                return Err("batch aborted before completion (resume from the journal)".into());
            }
            if !report.is_complete() {
                return Err(format!("{} job(s) failed; see report", report.failed()));
            }
            Ok(())
        }
        "serve" => {
            let dir = flag(args, "--dir").ok_or("serve needs --dir <state-dir>")?;
            let parse_u64 = |name: &str| -> Result<Option<u64>, String> {
                flag(args, name)
                    .map(|v| v.parse().map_err(|e| format!("{name}: {e}")))
                    .transpose()
            };
            let mut cfg = ecl_serve::ServeConfig {
                dir: PathBuf::from(dir),
                resume: args.iter().any(|a| a == "--resume"),
                ..ecl_serve::ServeConfig::default()
            };
            if let Some(a) = flag(args, "--addr") {
                cfg.addr = a;
            }
            if let Some(n) = parse_u64("--vertices")? {
                cfg.vertices = n as usize;
            }
            if let Some(n) = parse_u64("--max-conns")? {
                cfg.max_conns = n.max(1) as usize;
            }
            if let Some(ms) = parse_u64("--idle-timeout-ms")? {
                cfg.idle_timeout_ms = ms.max(1);
            }
            if let Some(n) = parse_u64("--snapshot-every")? {
                cfg.snapshot_every = n;
            }
            if let Some(w) = parse_u64("--workers")? {
                cfg.jobs.workers = w.max(1) as usize;
            }
            if let Some(q) = parse_u64("--queue")? {
                cfg.jobs.queue_capacity = q.max(1) as usize;
            }
            cfg.jobs.deadline_ms = parse_u64("--deadline-ms")?;
            cfg.jobs.ladder.threads = threads;
            cfg.jobs.ladder.exec = sim_exec;
            if let Some(m) = flag(args, "--metrics") {
                cfg.metrics_path = Some(PathBuf::from(m));
                cfg.recorder = Recorder::new();
            }
            let server = ecl_serve::Server::start(cfg)?;
            // The harness (and ci.sh) parse this line for the ephemeral
            // port, so it goes to stdout and is flushed immediately.
            println!("listening on {}", server.local_addr());
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            server.join()?;
            eprintln!("serve: drained cleanly");
            Ok(())
        }
        "profile" => ecl_cc_cli::profile::run_profile(args),
        "verify" => {
            let path = positional(args, 0)?;
            let g = read_graph(&path, fmt_flag(args, "--format")?)?;
            let (labels, source) = match flag(args, "--labels") {
                Some(file) => {
                    let text =
                        std::fs::read_to_string(&file).map_err(|e| format!("{file}: {e}"))?;
                    (parse_label_file(&text, g.num_vertices())?, file)
                }
                None => {
                    let algo = flag(args, "--algo").unwrap_or_else(|| "parallel".into());
                    let r = run_algorithm_ex(&algo, &g, threads, sim_exec)?;
                    (r.labels, format!("algorithm `{algo}`"))
                }
            };
            match ecl_verify::certify(&g, &labels) {
                Ok(cert) => {
                    println!(
                        "OK: {source} certifies on {} ({} vertices, {} edges checked, \
                         {} components)",
                        path.display(),
                        cert.num_vertices,
                        cert.edges_checked,
                        cert.num_components
                    );
                    Ok(())
                }
                Err(e) => Err(format!("certification FAILED for {source}: {e}")),
            }
        }
        "stats" => {
            let path = positional(args, 0)?;
            let g = read_graph(&path, fmt_flag(args, "--format")?)?;
            let s = ecl_graph::stats::graph_stats(&g);
            println!("vertices:       {}", s.vertices);
            println!("directed edges: {}", s.directed_edges);
            println!(
                "degree min/avg/max: {} / {:.1} / {}",
                s.dmin, s.davg, s.dmax
            );
            println!("components:     {}", s.components);
            Ok(())
        }
        "generate" => {
            let name = positional(args, 0)?;
            let out = flag(args, "-o").ok_or("generate needs -o <file>")?;
            let scale = flag(args, "--scale").unwrap_or_else(|| "bench".into());
            let g = generate_catalog(name.to_str().unwrap_or_default(), &scale)?;
            write_graph(&g, &PathBuf::from(&out), fmt_flag(args, "--format")?)?;
            println!(
                "wrote {} ({} vertices, {} edges)",
                out,
                g.num_vertices(),
                g.num_edges()
            );
            Ok(())
        }
        "convert" => {
            let input = positional(args, 0)?;
            let output = positional(args, 1)?;
            let g = read_graph(&input, fmt_flag(args, "--in-format")?)?;
            write_graph(&g, &output, fmt_flag(args, "--out-format")?)?;
            println!("converted {} -> {}", input.display(), output.display());
            Ok(())
        }
        "compare" => {
            let path = positional(args, 0)?;
            let g = read_graph(&path, fmt_flag(args, "--format")?)?;
            println!(
                "{}: {} vertices, {} edges — running {} algorithms",
                path.display(),
                g.num_vertices(),
                g.num_edges(),
                ALGORITHMS.len()
            );
            let reference = run_algorithm("serial", &g, threads)?;
            for &name in ALGORITHMS {
                let t = Instant::now();
                match run_algorithm(name, &g, threads) {
                    Ok(r) => {
                        let ms = t.elapsed().as_secs_f64() * 1e3;
                        let agree = ecl_graph::stats::canonicalize_labels(&r.labels)
                            == ecl_graph::stats::canonicalize_labels(&reference.labels);
                        println!(
                            "  {name:<11} {ms:>9.2} ms  {} components  {}",
                            r.num_components(),
                            if agree { "agrees" } else { "DISAGREES" }
                        );
                    }
                    Err(e) => println!("  {name:<11} n/a ({e})"),
                }
            }
            Ok(())
        }
        "list" => {
            println!("algorithms: {}", ALGORITHMS.join(", "));
            println!("catalog graphs:");
            for pg in ecl_graph::catalog::PaperGraph::ALL {
                let i = pg.info();
                println!("  {:<18} {} ({})", i.name, i.class, i.paper_vertices);
            }
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    }
}
