//! Minimal hand-rolled JSON: a writer every stats surface in the
//! workspace shares, and a parser for validating/round-tripping our own
//! artifacts.
//!
//! The workspace builds offline with no serde, so several crates grew
//! private copies of the same escaping code (`bench/report.rs`,
//! `engine/report.rs`). This module is now the single serialization
//! path: emitters build objects with [`Obj`], consumers (tests, the
//! `profile --validate` flag, ci.sh) parse with [`parse`].
//!
//! The parser accepts the JSON we emit plus ordinary standards-compliant
//! documents; it keeps numbers as `f64` (every value we write fits well
//! inside the 2^53 exact-integer range).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way JSON expects (no NaN/inf — mapped to null).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object writer: fields are emitted in call order.
#[derive(Default)]
pub struct Obj {
    parts: Vec<String>,
}

impl Obj {
    /// Creates an empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Obj {
        self.parts
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Obj {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a float field (NaN/inf become null).
    pub fn f64(mut self, key: &str, value: f64) -> Obj {
        self.parts
            .push(format!("\"{}\":{}", escape(key), fmt_f64(value)));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Obj {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Adds a field whose value is already-serialized JSON.
    pub fn raw(mut self, key: &str, json: &str) -> Obj {
        self.parts.push(format!("\"{}\":{}", escape(key), json));
        self
    }

    /// Adds an array field from already-serialized JSON elements.
    pub fn arr(self, key: &str, items: &[String]) -> Obj {
        let body = items.join(",");
        self.raw(key, &format!("[{body}]"))
    }

    /// Finishes the object.
    pub fn build(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array payload, when this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields as a map (later duplicates win), when an object.
    pub fn as_map(&self) -> Option<BTreeMap<&str, &Value>> {
        match self {
            Value::Obj(fields) => Some(fields.iter().map(|(k, v)| (k.as_str(), v)).collect()),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry a byte offset for debugging.
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Combine surrogate pairs; a lone surrogate is
                            // replaced rather than rejected (we never emit
                            // them, but stay robust to foreign files).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{fffd}')
                                } else {
                                    '\u{fffd}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{fffd}')
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(format!("bad escape {:?} at byte {}", other, self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(text, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' got {:?}", other)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}' got {:?}", other)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_matches_legacy_behaviour() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn obj_builder_emits_in_order() {
        let j = Obj::new()
            .str("name", "a\"b")
            .u64("n", 7)
            .f64("x", 1.5)
            .bool("ok", true)
            .raw("inner", "{\"k\":1}")
            .arr("items", &["1".into(), "2".into()])
            .build();
        assert_eq!(
            j,
            "{\"name\":\"a\\\"b\",\"n\":7,\"x\":1.5,\"ok\":true,\
             \"inner\":{\"k\":1},\"items\":[1,2]}"
        );
    }

    #[test]
    fn nan_is_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(2.0), "2");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Obj::new()
            .str("s", "x\ty\n\"z\"")
            .u64("u", 123456789)
            .f64("f", -0.25)
            .bool("b", false)
            .arr("a", &["null".into(), "\"s\"".into()])
            .build();
        let v = parse(&j).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ty\n\"z\""));
        assert_eq!(v.get("u").unwrap().as_u64(), Some(123456789));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(-0.25));
        assert_eq!(v.get("b"), Some(&Value::Bool(false)));
        assert_eq!(
            v.get("a").unwrap().as_arr(),
            Some(&[Value::Null, Value::Str("s".into())][..])
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_handles_nesting_and_unicode() {
        let v = parse("{\"a\": [1, {\"b\": \"\\u00e9\\ud83d\\ude00\"}], \"c\": null}").unwrap();
        let inner = &v.get("a").unwrap().as_arr().unwrap()[1];
        assert_eq!(inner.get("b").unwrap().as_str(), Some("é😀"));
        assert_eq!(v.get("c"), Some(&Value::Null));
    }
}
