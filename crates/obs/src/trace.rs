//! Trace-event model and the Chrome trace-event JSON exporter.
//!
//! Events follow the Chrome trace-event format so artifacts load
//! directly in `chrome://tracing` / Perfetto: complete spans (`ph:"X"`),
//! instant events (`ph:"i"`) and counter samples (`ph:"C"`). Two track
//! groups (pids) are used: [`PID_SIM`] carries simulator kernels on a
//! *simulated-cycle* timeline (1 cycle rendered as 1 µs), [`PID_ENGINE`]
//! carries engine/ladder/CLI spans on the host wall-clock timeline.
//! The two never share a pid, so mixing timebases is safe.

use crate::json::{self, Obj, Value};

/// Track group for simulator events; `ts`/`dur` are simulated cycles.
pub const PID_SIM: u32 = 1;
/// Track group for engine/ladder/host events; `ts`/`dur` are wall µs.
pub const PID_ENGINE: u32 = 2;

/// A typed argument attached to an event (`args` in the Chrome format).
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// Numeric argument (integers round-trip exactly below 2^53).
    Num(f64),
    /// String argument.
    Str(String),
}

/// What kind of event this is.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A complete span (`ph:"X"`) with a duration.
    Span {
        /// Duration in the track's timebase (cycles or µs).
        dur: u64,
    },
    /// A zero-duration instant event (`ph:"i"`).
    Instant,
    /// A counter sample (`ph:"C"`); the value is in `args.value`.
    Counter {
        /// Sampled value.
        value: f64,
    },
}

/// One trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event name (kernel name, job name, breaker transition, ...).
    pub name: String,
    /// Category, used by trace viewers for filtering.
    pub cat: String,
    /// Track group ([`PID_SIM`] or [`PID_ENGINE`]).
    pub pid: u32,
    /// Track within the group (SM index, worker index, ...).
    pub tid: u32,
    /// Start timestamp in the track's timebase.
    pub ts: u64,
    /// Span / instant / counter payload.
    pub kind: EventKind,
    /// Extra key-value arguments.
    pub args: Vec<(String, ArgValue)>,
}

impl TraceEvent {
    /// A complete span.
    pub fn span(name: &str, cat: &str, pid: u32, tid: u32, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid,
            ts,
            kind: EventKind::Span { dur },
            args: Vec::new(),
        }
    }

    /// An instant event.
    pub fn instant(name: &str, cat: &str, pid: u32, tid: u32, ts: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid,
            ts,
            kind: EventKind::Instant,
            args: Vec::new(),
        }
    }

    /// A counter sample.
    pub fn counter(name: &str, cat: &str, pid: u32, ts: u64, value: f64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid: 0,
            ts,
            kind: EventKind::Counter { value },
            args: Vec::new(),
        }
    }

    /// Attaches a numeric argument (builder style).
    pub fn arg_u64(mut self, key: &str, value: u64) -> TraceEvent {
        self.args
            .push((key.to_string(), ArgValue::Num(value as f64)));
        self
    }

    /// Attaches a float argument (builder style).
    pub fn arg_f64(mut self, key: &str, value: f64) -> TraceEvent {
        self.args.push((key.to_string(), ArgValue::Num(value)));
        self
    }

    /// Attaches a string argument (builder style).
    pub fn arg_str(mut self, key: &str, value: &str) -> TraceEvent {
        self.args
            .push((key.to_string(), ArgValue::Str(value.to_string())));
        self
    }

    /// Serializes one event as a Chrome trace-event object.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new()
            .str("name", &self.name)
            .str("cat", &self.cat)
            .u64("pid", self.pid as u64)
            .u64("tid", self.tid as u64)
            .u64("ts", self.ts);
        let mut args = self.args.clone();
        match &self.kind {
            EventKind::Span { dur } => {
                o = o.str("ph", "X").u64("dur", *dur);
            }
            EventKind::Instant => {
                o = o.str("ph", "i").str("s", "t");
            }
            EventKind::Counter { value } => {
                o = o.str("ph", "C");
                args.insert(0, ("value".to_string(), ArgValue::Num(*value)));
            }
        }
        let body: Vec<String> = args
            .iter()
            .map(|(k, v)| {
                let v = match v {
                    ArgValue::Num(n) => json::fmt_f64(*n),
                    ArgValue::Str(s) => format!("\"{}\"", json::escape(s)),
                };
                format!("\"{}\":{}", json::escape(k), v)
            })
            .collect();
        o.raw("args", &format!("{{{}}}", body.join(","))).build()
    }
}

/// Serializes events as a `chrome://tracing`-loadable document.
///
/// `metadata` lands under `otherData` next to the schema tag.
pub fn chrome_trace_json(events: &[TraceEvent], metadata: &[(String, String)]) -> String {
    let rows: Vec<String> = events
        .iter()
        .map(|e| format!("  {}", e.to_json()))
        .collect();
    let mut other = Obj::new().str("schema", TRACE_SCHEMA);
    for (k, v) in metadata {
        other = other.str(k, v);
    }
    format!(
        "{{\n\"traceEvents\": [\n{}\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {}\n}}\n",
        rows.join(",\n"),
        other.build()
    )
}

/// Schema tag stamped into every trace document's `otherData`.
pub const TRACE_SCHEMA: &str = "ecl-trace-v1";
/// Schema tag stamped into every metrics document.
pub const METRICS_SCHEMA: &str = "ecl-metrics-v1";

/// Summary of a validated trace document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events.
    pub events: usize,
    /// Complete spans (`ph:"X"`).
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Counter samples.
    pub counters: usize,
}

/// Parses a Chrome trace-event document back into [`TraceEvent`]s.
///
/// Only the phases we emit (`X`, `i`, `C`) are accepted; this is the
/// round-trip half of the exporter, used by tests and `--validate`.
pub fn parse_chrome_trace(doc: &str) -> Result<Vec<TraceEvent>, String> {
    let v = json::parse(doc)?;
    let schema = v
        .get("otherData")
        .and_then(|o| o.get("schema"))
        .and_then(Value::as_str);
    if schema != Some(TRACE_SCHEMA) {
        return Err(format!(
            "otherData.schema is {schema:?}, expected {TRACE_SCHEMA:?}"
        ));
    }
    let rows = v
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut events = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        events.push(parse_event(row).map_err(|e| format!("event {i}: {e}"))?);
    }
    Ok(events)
}

fn parse_event(row: &Value) -> Result<TraceEvent, String> {
    let field_str = |k: &str| -> Result<String, String> {
        row.get(k)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or(format!("missing string field {k:?}"))
    };
    let field_u64 = |k: &str| -> Result<u64, String> {
        row.get(k)
            .and_then(Value::as_u64)
            .ok_or(format!("missing integer field {k:?}"))
    };
    let mut args: Vec<(String, ArgValue)> = Vec::new();
    if let Some(Value::Obj(fields)) = row.get("args") {
        for (k, v) in fields {
            let arg = match v {
                Value::Num(n) => ArgValue::Num(*n),
                Value::Str(s) => ArgValue::Str(s.clone()),
                other => return Err(format!("unsupported arg type for {k:?}: {other:?}")),
            };
            args.push((k.clone(), arg));
        }
    }
    let kind = match field_str("ph")?.as_str() {
        "X" => EventKind::Span {
            dur: field_u64("dur")?,
        },
        "i" => EventKind::Instant,
        "C" => {
            let pos = args
                .iter()
                .position(|(k, _)| k == "value")
                .ok_or("counter event without args.value")?;
            let (_, v) = args.remove(pos);
            match v {
                ArgValue::Num(n) => EventKind::Counter { value: n },
                ArgValue::Str(_) => return Err("counter value must be numeric".into()),
            }
        }
        other => return Err(format!("unsupported phase {other:?}")),
    };
    Ok(TraceEvent {
        name: field_str("name")?,
        cat: field_str("cat")?,
        pid: field_u64("pid")? as u32,
        tid: field_u64("tid")? as u32,
        ts: field_u64("ts")?,
        kind,
        args,
    })
}

/// Validates a trace document against the documented schema and returns
/// counts per event kind.
pub fn validate_chrome_trace(doc: &str) -> Result<TraceSummary, String> {
    let events = parse_chrome_trace(doc)?;
    let mut s = TraceSummary {
        events: events.len(),
        ..TraceSummary::default()
    };
    for e in &events {
        if e.name.is_empty() {
            return Err("event with empty name".into());
        }
        match e.kind {
            EventKind::Span { .. } => s.spans += 1,
            EventKind::Instant => s.instants += 1,
            EventKind::Counter { .. } => s.counters += 1,
        }
    }
    Ok(s)
}

/// Validates a flat metrics document (`{"schema": ..., "metrics": {...}}`)
/// and returns the number of metrics.
pub fn validate_metrics_json(doc: &str) -> Result<usize, String> {
    let v = json::parse(doc)?;
    let schema = v.get("schema").and_then(Value::as_str);
    if schema != Some(METRICS_SCHEMA) {
        return Err(format!("schema is {schema:?}, expected {METRICS_SCHEMA:?}"));
    }
    match v.get("metrics") {
        Some(Value::Obj(fields)) => {
            for (k, v) in fields {
                if !matches!(v, Value::Num(_)) {
                    return Err(format!("metric {k:?} is not numeric"));
                }
            }
            Ok(fields.len())
        }
        _ => Err("missing metrics object".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_round_trips_exactly() {
        let ev = TraceEvent::span("compute1", "kernel", PID_SIM, 0, 24996, 17754)
            .arg_u64("instructions", 12345)
            .arg_f64("l1_hit_ratio", 0.882)
            .arg_str("device", "titan-x");
        let doc = chrome_trace_json(std::slice::from_ref(&ev), &[]);
        let back = parse_chrome_trace(&doc).unwrap();
        assert_eq!(back, vec![ev]);
    }

    #[test]
    fn counter_and_instant_round_trip() {
        let evs = vec![
            TraceEvent::counter("queue_depth", "engine", PID_ENGINE, 100, 3.0),
            TraceEvent::instant("breaker:gpu-sim closed->open", "breaker", PID_ENGINE, 7, 42)
                .arg_str("from", "closed"),
        ];
        let doc = chrome_trace_json(&evs, &[("graph".into(), "rmat16".into())]);
        assert_eq!(parse_chrome_trace(&doc).unwrap(), evs);
        let s = validate_chrome_trace(&doc).unwrap();
        assert_eq!(
            s,
            TraceSummary {
                events: 2,
                spans: 0,
                instants: 1,
                counters: 1
            }
        );
    }

    #[test]
    fn validation_rejects_wrong_schema() {
        let doc = "{\"traceEvents\": [], \"otherData\": {\"schema\": \"bogus\"}}";
        assert!(validate_chrome_trace(doc).is_err());
    }

    #[test]
    fn empty_trace_is_valid() {
        let doc = chrome_trace_json(&[], &[]);
        assert_eq!(validate_chrome_trace(&doc).unwrap().events, 0);
    }
}
