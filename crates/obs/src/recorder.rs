//! The recording core: a cheap-to-clone [`Recorder`] handle plus
//! per-thread [`LocalBuf`] ring buffers.
//!
//! ## Overhead contract
//!
//! * A **disabled** recorder is inert: every method checks one `bool`
//!   and returns. Instrumentation sites additionally guard with
//!   [`Recorder::is_enabled`], so the disabled path costs one branch.
//! * Recording is **observation only**: the recorder never feeds back
//!   into what it observes. In particular the GPU simulator's cycle
//!   counts, cache statistics, and fault-RNG draws are bit-identical
//!   with recording on or off (pinned by `tests/exec_equivalence.rs`).
//! * The hot path takes **no locks**: worker threads record into their
//!   own [`LocalBuf`] (a bounded ring buffer) and merge it into the
//!   shared event store at span close — one lock acquisition per merge,
//!   so HostParallel simulation records without contention.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Obj;
use crate::trace::{chrome_trace_json, TraceEvent, METRICS_SCHEMA};

/// Default per-thread ring-buffer capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

struct Inner {
    enabled: bool,
    t0: Instant,
    events: Mutex<Vec<TraceEvent>>,
    metrics: Mutex<BTreeMap<String, f64>>,
    dropped: AtomicU64,
}

/// A tracing + metrics recorder. Clones share the same store.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.inner.enabled)
            .finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// An enabled recorder.
    pub fn new() -> Recorder {
        Recorder::build(true)
    }

    /// An inert recorder: every call is a branch-and-return.
    pub fn disabled() -> Recorder {
        Recorder::build(false)
    }

    fn build(enabled: bool) -> Recorder {
        Recorder {
            inner: Arc::new(Inner {
                enabled,
                t0: Instant::now(),
                events: Mutex::new(Vec::new()),
                metrics: Mutex::new(BTreeMap::new()),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Whether this recorder stores anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Microseconds since the recorder was created (wall clock) — the
    /// timebase for [`crate::trace::PID_ENGINE`] tracks.
    pub fn now_us(&self) -> u64 {
        self.inner.t0.elapsed().as_micros() as u64
    }

    /// Records one event (one lock acquisition; use a [`LocalBuf`] on
    /// hot paths).
    pub fn record(&self, ev: TraceEvent) {
        if !self.inner.enabled {
            return;
        }
        self.inner.events.lock().unwrap().push(ev);
    }

    /// Opens a per-thread ring buffer bound to this recorder's enabled
    /// state.
    pub fn local(&self) -> LocalBuf {
        LocalBuf {
            enabled: self.inner.enabled,
            cap: DEFAULT_RING_CAPACITY,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Drains a local buffer into the shared store (one lock).
    pub fn merge(&self, buf: &mut LocalBuf) {
        if !self.inner.enabled || (buf.events.is_empty() && buf.dropped == 0) {
            return;
        }
        if buf.dropped > 0 {
            self.inner.dropped.fetch_add(buf.dropped, Ordering::Relaxed);
            buf.dropped = 0;
        }
        let mut store = self.inner.events.lock().unwrap();
        store.extend(buf.events.drain(..));
    }

    /// Adds `delta` to a named cumulative metric.
    pub fn add_metric(&self, name: &str, delta: f64) {
        if !self.inner.enabled {
            return;
        }
        *self
            .inner
            .metrics
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert(0.0) += delta;
    }

    /// Sets a named metric to an absolute value (gauges, ratios).
    pub fn set_metric(&self, name: &str, value: f64) {
        if !self.inner.enabled {
            return;
        }
        self.inner
            .metrics
            .lock()
            .unwrap()
            .insert(name.to_string(), value);
    }

    /// Snapshot of all recorded events, in merge order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.events.lock().unwrap().clone()
    }

    /// Snapshot of all metrics.
    pub fn metrics(&self) -> BTreeMap<String, f64> {
        self.inner.metrics.lock().unwrap().clone()
    }

    /// Events dropped by ring-buffer overflow across all merged buffers.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Exports every recorded event as Chrome trace-event JSON.
    pub fn chrome_trace_json(&self, metadata: &[(String, String)]) -> String {
        let events = self.events();
        let mut md = metadata.to_vec();
        let dropped = self.dropped();
        if dropped > 0 {
            md.push(("dropped_events".to_string(), dropped.to_string()));
        }
        chrome_trace_json(&events, &md)
    }

    /// Exports the flat metrics document
    /// (`{"schema": "ecl-metrics-v1", "metrics": {...}}`).
    pub fn metrics_json(&self) -> String {
        let metrics = self.metrics();
        let body: Vec<String> = metrics
            .iter()
            .map(|(k, v)| {
                format!(
                    "\"{}\":{}",
                    crate::json::escape(k),
                    crate::json::fmt_f64(*v)
                )
            })
            .collect();
        Obj::new()
            .str("schema", METRICS_SCHEMA)
            .raw("metrics", &format!("{{{}}}", body.join(",")))
            .build()
    }
}

/// A per-thread bounded ring buffer of events. Pushing never blocks and
/// never allocates past the capacity: when full, the oldest event is
/// dropped (and counted).
pub struct LocalBuf {
    enabled: bool,
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl LocalBuf {
    /// Whether the owning recorder stores anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Overrides the ring capacity (testing / tight-memory callers).
    pub fn with_capacity(mut self, cap: usize) -> LocalBuf {
        self.cap = cap.max(1);
        self
    }

    /// Appends an event, dropping the oldest when at capacity.
    pub fn push(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{validate_metrics_json, PID_ENGINE};

    #[test]
    fn disabled_recorder_stores_nothing() {
        let r = Recorder::disabled();
        r.record(TraceEvent::instant("x", "c", PID_ENGINE, 0, 0));
        r.add_metric("m", 1.0);
        let mut buf = r.local();
        buf.push(TraceEvent::instant("y", "c", PID_ENGINE, 0, 0));
        r.merge(&mut buf);
        assert!(r.events().is_empty());
        assert!(r.metrics().is_empty());
        assert!(!r.is_enabled());
    }

    #[test]
    fn local_buffers_merge_in_order() {
        let r = Recorder::new();
        let mut buf = r.local();
        for i in 0..4 {
            buf.push(TraceEvent::instant(&format!("e{i}"), "c", PID_ENGINE, 0, i));
        }
        r.merge(&mut buf);
        assert!(buf.is_empty());
        let names: Vec<String> = r.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e0", "e1", "e2", "e3"]);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let r = Recorder::new();
        let mut buf = r.local().with_capacity(2);
        for i in 0..5 {
            buf.push(TraceEvent::instant(&format!("e{i}"), "c", PID_ENGINE, 0, i));
        }
        r.merge(&mut buf);
        let names: Vec<String> = r.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e3", "e4"]);
        assert_eq!(r.dropped(), 3);
        let doc = r.chrome_trace_json(&[]);
        assert!(doc.contains("\"dropped_events\":\"3\""));
    }

    #[test]
    fn metrics_accumulate_and_export() {
        let r = Recorder::new();
        r.add_metric("sim.instructions", 10.0);
        r.add_metric("sim.instructions", 5.0);
        r.set_metric("sim.l1_read_hit_ratio", 0.875);
        let doc = r.metrics_json();
        assert_eq!(validate_metrics_json(&doc).unwrap(), 2);
        assert!(doc.contains("\"sim.instructions\":15"));
        assert!(doc.contains("\"sim.l1_read_hit_ratio\":0.875"));
    }

    #[test]
    fn concurrent_local_buffers_lose_nothing() {
        let r = Recorder::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let r = r.clone();
                s.spawn(move || {
                    let mut buf = r.local();
                    for i in 0..100u64 {
                        buf.push(TraceEvent::instant("e", "c", PID_ENGINE, t, i));
                    }
                    r.merge(&mut buf);
                    r.add_metric("n", 100.0);
                });
            }
        });
        assert_eq!(r.events().len(), 400);
        assert_eq!(r.metrics()["n"], 400.0);
    }
}
