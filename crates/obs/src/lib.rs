//! `ecl-obs` — the workspace's observability layer.
//!
//! Three pieces, all std-only and zero-overhead when disabled:
//!
//! * [`Recorder`] / [`LocalBuf`]: spans, events and counters with
//!   per-thread ring buffers (no locks on the hot path, merged at span
//!   close). A disabled recorder is inert; recording never perturbs the
//!   simulator's golden-pinned cycle counts or cache statistics.
//! * Exporters: Chrome trace-event JSON ([`chrome_trace_json`],
//!   loadable in `chrome://tracing`), a flat metrics document
//!   ([`Recorder::metrics_json`]), and the text profile report
//!   ([`report::profile_report`]) regenerating the paper's Table 3 and
//!   §4.5 per-phase ablation.
//! * [`json`]: the shared hand-rolled JSON writer + parser every stats
//!   surface in the workspace serializes through (the workspace builds
//!   offline with no serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod recorder;
pub mod report;
pub mod trace;

pub use recorder::{LocalBuf, Recorder, DEFAULT_RING_CAPACITY};
pub use trace::{
    chrome_trace_json, parse_chrome_trace, validate_chrome_trace, validate_metrics_json, ArgValue,
    EventKind, TraceEvent, TraceSummary, METRICS_SCHEMA, PID_ENGINE, PID_SIM, TRACE_SCHEMA,
};
