//! The text "profile report": the paper's cache-locality table
//! (Table 3) and per-phase cycle ablation (§4.5) as first-class,
//! regenerable artifacts.
//!
//! This module only formats; the rows are assembled by callers (the CLI
//! `profile` subcommand) from `CacheStats` / `KernelStats` snapshots, so
//! the crate stays free of simulator dependencies.

use std::fmt::Write as _;

/// One graph's cache-locality row (paper Table 3).
#[derive(Clone, Debug)]
pub struct CacheRow {
    /// Graph name.
    pub graph: String,
    /// L1 read hit ratio in percent.
    pub l1_read_hit_pct: f64,
    /// L2 read hit ratio in percent.
    pub l2_read_hit_pct: f64,
    /// L2 read accesses (L1 read misses).
    pub l2_reads: u64,
    /// L2 write accesses.
    pub l2_writes: u64,
    /// DRAM transactions.
    pub dram: u64,
}

/// One graph's per-phase cycle row (paper §4.5 ablation). `phases`
/// holds `(kernel name, cycles)` in launch order.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Graph name.
    pub graph: String,
    /// Per-kernel cycles in launch order.
    pub phases: Vec<(String, u64)>,
    /// Total cycles including launch overheads.
    pub total_cycles: u64,
}

/// One graph's parent-path-length row (paper Table 4).
#[derive(Clone, Debug)]
pub struct PathRow {
    /// Graph name.
    pub graph: String,
    /// Paths sampled (one per find).
    pub samples: u64,
    /// Average path length.
    pub avg: f64,
    /// Longest path observed.
    pub max: u64,
}

fn table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                let _ = write!(out, "{:<w$}", cell, w = widths[0]);
            } else {
                let _ = write!(out, "  {:>w$}", cell, w = widths[i]);
            }
        }
        out.push('\n');
    };
    fmt_row(header, &widths, &mut out);
    fmt_row(
        &widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Renders the full profile report.
///
/// `path_rows` may be empty (path probing is opt-in); the section is
/// omitted then.
pub fn profile_report(
    device: &str,
    exec: &str,
    cache_rows: &[CacheRow],
    phase_rows: &[PhaseRow],
    path_rows: &[PathRow],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# ECL-CC profile report — device {device}, exec {exec}"
    );
    out.push('\n');

    let _ = writeln!(out, "## Cache locality (paper Table 3)");
    let header: Vec<String> = [
        "graph",
        "L1 read hit%",
        "L2 read hit%",
        "L2 reads",
        "L2 writes",
        "DRAM",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = cache_rows
        .iter()
        .map(|r| {
            vec![
                r.graph.clone(),
                format!("{:.1}", r.l1_read_hit_pct),
                format!("{:.1}", r.l2_read_hit_pct),
                r.l2_reads.to_string(),
                r.l2_writes.to_string(),
                r.dram.to_string(),
            ]
        })
        .collect();
    out.push_str(&table(&header, &rows));
    out.push('\n');

    let _ = writeln!(out, "## Per-phase cycles (paper \u{a7}4.5 ablation)");
    if let Some(first) = phase_rows.first() {
        let mut header: Vec<String> = vec!["graph".to_string()];
        for (name, _) in &first.phases {
            header.push(format!("{name}%"));
        }
        header.push("total cycles".to_string());
        let rows: Vec<Vec<String>> = phase_rows
            .iter()
            .map(|r| {
                let mut cells = vec![r.graph.clone()];
                let total = r.total_cycles.max(1) as f64;
                for (_, cycles) in &r.phases {
                    cells.push(format!("{:.1}", 100.0 * *cycles as f64 / total));
                }
                cells.push(r.total_cycles.to_string());
                cells
            })
            .collect();
        out.push_str(&table(&header, &rows));
        out.push('\n');
    }

    if !path_rows.is_empty() {
        let _ = writeln!(out, "## Parent path lengths (paper Table 4)");
        let header: Vec<String> = ["graph", "samples", "avg", "max"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rows: Vec<Vec<String>> = path_rows
            .iter()
            .map(|r| {
                vec![
                    r.graph.clone(),
                    r.samples.to_string(),
                    format!("{:.3}", r.avg),
                    r.max.to_string(),
                ]
            })
            .collect();
        out.push_str(&table(&header, &rows));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_sections_and_aligns() {
        let cache = vec![CacheRow {
            graph: "rmat16.sym".into(),
            l1_read_hit_pct: 88.2,
            l2_read_hit_pct: 38.6,
            l2_reads: 3260,
            l2_writes: 343,
            dram: 1259,
        }];
        let phases = vec![PhaseRow {
            graph: "rmat16.sym".into(),
            phases: vec![
                ("init".into(), 20000),
                ("compute1".into(), 30000),
                ("finalize".into(), 8000),
            ],
            total_cycles: 58350,
        }];
        let paths = vec![PathRow {
            graph: "rmat16.sym".into(),
            samples: 12000,
            avg: 0.522,
            max: 4,
        }];
        let r = profile_report("titan-x", "serial", &cache, &phases, &paths);
        assert!(r.contains("Table 3"));
        assert!(r.contains("\u{a7}4.5"));
        assert!(r.contains("Table 4"));
        assert!(r.contains("88.2"));
        assert!(r.contains("compute1%"));
        assert!(r.contains("0.522"));
    }

    #[test]
    fn path_section_omitted_when_empty() {
        let r = profile_report("k40", "parallel:4", &[], &[], &[]);
        assert!(!r.contains("Table 4"));
        assert!(r.contains("k40"));
    }
}
