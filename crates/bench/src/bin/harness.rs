//! Regenerates the paper's tables and figures.
//!
//! ```text
//! harness [EXPERIMENT ...] [--scale tiny|bench|large] [--threads N]
//!         [--verify] [--json FILE] [--exec serial|parallel[:N]]
//!         [--trace FILE]
//!
//! Experiments:
//!   table2  fig7  fig8  table3  table4  fig9  fig10
//!   table5  table6  table7  table8  table9  table10  fig17
//!   simspeed    (simulator wall-clock: serial vs host-parallel matrix)
//!   micro       (simulator hot-path microbenchmarks)
//!   serve       (TCP server load + chaos + SIGKILL/resume; writes
//!                BENCH_serve.json or the --json path; --fault-plan
//!                picks the chaos mix, default serve-chaos:1)
//!   sharded     (multi-device shard matrix: clean / shard-chaos /
//!                device-crash recovery, byte-identity gated; writes
//!                BENCH_sharded.json or the --json path)
//!   internals   (= fig7 fig8 table3 table4 fig9 fig10)
//!   all         (everything)
//! ```
//!
//! `--exec parallel[:N]` runs GPU experiments with the simulator in
//! host-parallel mode (N worker threads, 0/omitted = one per core):
//! labels stay certified-identical but cycle-derived "ms" become
//! interleaving-dependent, so recorded timing tables should be produced
//! with the default `--exec serial`.
//!
//! Absolute GPU numbers are simulated cycles converted at the device
//! clock; CPU numbers are host wall-clock. The paper's figures are all
//! *normalized* ratios, which is what these tables reproduce.

use ecl_bench::experiments as exp;
use ecl_gpu_sim::{DeviceProfile, ExecMode};
use ecl_graph::catalog::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Bench;
    let mut threads: Option<usize> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut verify = false;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut exec = ExecMode::Serial;
    let mut fault_plan = ecl_gpu_sim::FaultPlan::serve_chaos(1);

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("bench") => Scale::Bench,
                    Some("large") => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?} (tiny|bench|large)");
                        std::process::exit(2);
                    }
                };
            }
            "--threads" => {
                threads = it.next().and_then(|s| s.parse().ok());
                if threads.is_none() {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                }
            }
            "--verify" => verify = true,
            "--exec" => {
                exec = match it.next() {
                    Some(spec) => match ExecMode::parse(spec) {
                        Ok(m) => m,
                        Err(e) => {
                            eprintln!("--exec: {e}");
                            std::process::exit(2);
                        }
                    },
                    None => {
                        eprintln!("--exec needs serial|parallel[:N]");
                        std::process::exit(2);
                    }
                };
            }
            "--json" => {
                json_path = it.next().cloned();
                if json_path.is_none() {
                    eprintln!("--json needs a file path");
                    std::process::exit(2);
                }
            }
            "--fault-plan" => {
                fault_plan = match it.next() {
                    Some(spec) => match ecl_gpu_sim::FaultPlan::parse(spec) {
                        Ok(p) => p,
                        Err(e) => {
                            eprintln!("--fault-plan: {e}");
                            std::process::exit(2);
                        }
                    },
                    None => {
                        eprintln!("--fault-plan needs a spec (e.g. serve-chaos:1)");
                        std::process::exit(2);
                    }
                };
            }
            "--trace" => {
                trace_path = it.next().cloned();
                if trace_path.is_none() {
                    eprintln!("--trace needs a file path");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: harness [EXPERIMENT ...] [--scale tiny|bench|large] [--threads N]"
                );
                println!(
                    "               [--verify] [--json FILE] [--exec serial|parallel[:N]] \
                     [--trace FILE]"
                );
                println!(
                    "experiments: table1 table2 fig7 fig8 table3 table4 fig9 fig10 table5 table6"
                );
                println!(
                    "             table7 table8 table9 table10 fig17 ordering simspeed micro \
                     serve sharded internals all"
                );
                println!("--fault-plan SPEC seeds the serve chaos mix (default serve-chaos:1)");
                println!("--exec parallel[:N] runs GPU experiments host-parallel (0 = per core);");
                println!("         timing tables should keep the default serial mode");
                println!("--verify certifies every code's labels with the independent checker");
                println!("         (outside the timed region) and emits JSON records; --json");
                println!("         chooses the output file (default bench-verify.json)");
                println!("--trace FILE writes a Chrome trace (chrome://tracing) with one");
                println!("         wall-clock span per experiment");
                return;
            }
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        selected.push("all".into());
    }

    let host_threads = ecl_parallel::default_threads();
    // The paper's two CPU hosts expose 40 (E5-2687W, HT) and 12 (X5690)
    // hardware threads; oversubscription on a smaller host still exercises
    // the same scheduling paths.
    let t_big = threads.unwrap_or_else(|| host_threads.max(8));
    let t_small = threads.unwrap_or_else(|| (host_threads.max(8) / 3).max(2));

    let titan = DeviceProfile::titan_x();
    let k40 = DeviceProfile::k40();

    let expand = |name: &str| -> Vec<&'static str> {
        match name {
            "internals" => vec!["fig7", "fig8", "table3", "table4", "fig9", "fig10"],
            "all" => vec![
                "table1", "table2", "fig7", "fig8", "table3", "table4", "fig9", "fig10", "table5",
                "table6", "table7", "table8", "table9", "table10", "fig17", "ordering",
            ],
            "table1" => vec!["table1"],
            "table2" => vec!["table2"],
            "fig7" => vec!["fig7"],
            "fig8" => vec!["fig8"],
            "table3" => vec!["table3"],
            "table4" => vec!["table4"],
            "fig9" => vec!["fig9"],
            "fig10" => vec!["fig10"],
            "table5" | "fig11" => vec!["table5"],
            "table6" | "fig12" => vec!["table6"],
            "table7" | "fig13" => vec!["table7"],
            "table8" | "fig14" => vec!["table8"],
            "table9" | "fig15" => vec!["table9"],
            "table10" | "fig16" => vec!["table10"],
            "fig17" => vec!["fig17"],
            "ordering" => vec!["ordering"],
            "batch" => vec!["batch"],
            "simspeed" => vec!["simspeed"],
            "serve" => vec!["serve"],
            "sharded" => vec!["sharded"],
            "micro" => vec!["micro"],
            other => {
                eprintln!("unknown experiment '{other}' (see --help)");
                std::process::exit(2);
            }
        }
    };

    let todo: Vec<&str> = selected.iter().flat_map(|s| expand(s)).collect();
    println!(
        "# ECL-CC reproduction harness — scale {scale:?}, host threads {host_threads}, \
         CPU configs: {t_big} / {t_small} threads"
    );
    let recorder = trace_path.as_ref().map(|_| ecl_obs::Recorder::new());
    let mut records: Vec<ecl_bench::report::BenchRecord> = Vec::new();
    let mut json_consumed = false;
    for item in todo {
        let span_start = recorder.as_ref().map(|r| r.now_us());
        match item {
            "table1" => exp::table1(),
            "table2" => exp::table2(scale),
            "fig7" => exp::fig7(scale, &titan),
            "fig8" => exp::fig8(scale, &titan),
            "table3" => exp::table3(scale, &titan),
            "table4" => exp::table4(scale, &titan),
            "fig9" => exp::fig9(scale, &titan),
            "fig10" => exp::fig10(scale, &titan),
            "table5" => exp::gpu_comparison(scale, &titan, exec),
            "table6" => exp::gpu_comparison(scale, &k40, exec),
            "table7" => exp::cpu_parallel_comparison(scale, t_big, "Table 7 / Fig. 13"),
            "table8" => exp::cpu_parallel_comparison(scale, t_small, "Table 8 / Fig. 14"),
            "table9" => exp::serial_comparison(scale, "Table 9 / Fig. 15"),
            "table10" => {
                exp::serial_comparison(scale, "Table 10 / Fig. 16 (same host; see EXPERIMENTS.md)")
            }
            "fig17" => exp::fig17(scale, t_big, exec),
            "ordering" => exp::ordering(scale, &titan),
            "batch" => records.extend(exp::batch_throughput(t_big)),
            "micro" => records.extend(ecl_bench::microbench::hot_paths()),
            "serve" => {
                // Writes its own summary JSON (greppable pass/fail
                // fields), so it consumes --json instead of feeding the
                // shared BenchRecord report.
                let path = json_path.as_deref().unwrap_or("BENCH_serve.json");
                ecl_bench::serve_load::serve_load(scale, fault_plan, path);
                json_consumed = true;
            }
            "sharded" => {
                // Same own-JSON pattern as `serve`: the experiment is its
                // own pass/fail gate and summary writer.
                let path = json_path.as_deref().unwrap_or("BENCH_sharded.json");
                ecl_bench::shard_bench::sharded(scale, fault_plan, path);
                json_consumed = true;
            }
            "simspeed" => records.extend(exp::simspeed(
                scale,
                match exec {
                    ExecMode::HostParallel(n) => n,
                    ExecMode::Serial => 0,
                },
            )),
            _ => unreachable!(),
        }
        if let (Some(r), Some(start)) = (&recorder, span_start) {
            r.record(
                ecl_obs::TraceEvent::span(
                    &format!("experiment:{item}"),
                    "experiment",
                    ecl_obs::PID_ENGINE,
                    0,
                    start,
                    r.now_us().saturating_sub(start),
                )
                .arg_str("scale", &format!("{scale:?}"))
                .arg_str("exec", &exec.describe()),
            );
        }
    }

    if let (Some(path), Some(r)) = (&trace_path, &recorder) {
        let md = [
            ("tool".to_string(), "harness".to_string()),
            ("exec".to_string(), exec.describe()),
        ];
        if let Err(e) = std::fs::write(path, r.chrome_trace_json(&md)) {
            eprintln!("error writing trace {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote Chrome trace to {path}");
    }

    // `--verify` (or a bare `--json` with nothing else producing records)
    // runs the certification sweep; `--json` writes whatever records the
    // selected experiments produced.
    if verify || (json_path.is_some() && records.is_empty() && !json_consumed) {
        records.extend(exp::verify_sweep(scale, t_big, &titan, exec));
    }
    if (verify || (json_path.is_some() && !json_consumed)) && !records.is_empty() {
        let path = json_path.unwrap_or_else(|| "bench-verify.json".to_string());
        let failed = records
            .iter()
            .filter(|r| r.verified.as_ref().is_some_and(|v| !v.pass))
            .count();
        match ecl_bench::report::write_report(&path, &records) {
            Ok(()) => println!(
                "\nwrote {} records to {path} ({failed} failed certification)",
                records.len()
            ),
            Err(e) => {
                eprintln!("error writing {path}: {e}");
                std::process::exit(1);
            }
        }
        if failed > 0 {
            std::process::exit(1);
        }
    }
}
