//! Uniform adapters around every CC implementation so the experiment
//! drivers can iterate over codes by name.

use ecl_cc::{CcResult, EclConfig};
use ecl_gpu_sim::{DeviceProfile, ExecMode, Gpu};
use ecl_graph::CsrGraph;

/// One GPU code: returns the labeling and total simulated cycles.
pub type GpuRunner = fn(&mut Gpu, &CsrGraph) -> (CcResult, u64);

fn gpu_ecl(gpu: &mut Gpu, g: &CsrGraph) -> (CcResult, u64) {
    let (r, s) = ecl_cc::gpu::run(gpu, g, &EclConfig::default());
    (r, s.total_cycles())
}

fn gpu_groute(gpu: &mut Gpu, g: &CsrGraph) -> (CcResult, u64) {
    let run = ecl_baselines::gpu::groute::run(gpu, g);
    let c = run.total_cycles();
    (run.result, c)
}

fn gpu_gunrock(gpu: &mut Gpu, g: &CsrGraph) -> (CcResult, u64) {
    let run = ecl_baselines::gpu::gunrock::run(gpu, g);
    let c = run.total_cycles();
    (run.result, c)
}

fn gpu_irgl(gpu: &mut Gpu, g: &CsrGraph) -> (CcResult, u64) {
    let run = ecl_baselines::gpu::irgl::run(gpu, g);
    let c = run.total_cycles();
    (run.result, c)
}

fn gpu_soman(gpu: &mut Gpu, g: &CsrGraph) -> (CcResult, u64) {
    let run = ecl_baselines::gpu::soman::run(gpu, g);
    let c = run.total_cycles();
    (run.result, c)
}

/// The five GPU codes of Tables 5/6, in the paper's column order.
pub const GPU_CODES: [(&str, GpuRunner); 5] = [
    ("ECL-CC", gpu_ecl as GpuRunner),
    ("Groute", gpu_groute as GpuRunner),
    ("Gunrock", gpu_gunrock as GpuRunner),
    ("IrGL", gpu_irgl as GpuRunner),
    ("Soman", gpu_soman as GpuRunner),
];

/// A timed and certified GPU run.
pub struct CertifiedGpuRun {
    /// Simulated pseudo-milliseconds. In [`ExecMode::HostParallel`] the
    /// cycle count depends on thread interleaving, so this is indicative
    /// only; serial-mode values are deterministic.
    pub ms: f64,
    /// Host wall-clock milliseconds spent simulating (what the
    /// `simspeed` experiment compares across exec modes).
    pub wall_ms: f64,
    /// The labeling itself, kept so equivalence experiments can compare
    /// exec modes byte for byte.
    pub labels: Vec<u32>,
    /// Certificate from the independent checker (issued *outside* the
    /// timed region — certification never contributes to `ms`).
    pub certificate: ecl_verify::Certificate,
}

/// Runs one GPU code on a fresh device of the given profile and certifies
/// the labeling with the independent checker. Timing is simulated cycles;
/// certification happens on the host afterwards and costs no simulated
/// time. Errors (rather than panics) on a wrong labeling.
pub fn try_run_gpu_code(
    runner: GpuRunner,
    profile: &DeviceProfile,
    g: &CsrGraph,
    exec: ExecMode,
) -> Result<CertifiedGpuRun, String> {
    let mut gpu = Gpu::new(profile.clone());
    gpu.set_exec_mode(exec);
    let wall = std::time::Instant::now();
    let (r, cycles) = runner(&mut gpu, g);
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let certificate = ecl_verify::certify(g, &r.labels)
        .map_err(|e| format!("GPU code produced a wrong labeling: {e}"))?;
    Ok(CertifiedGpuRun {
        ms: profile.cycles_to_ms(cycles),
        wall_ms,
        labels: r.labels,
        certificate,
    })
}

/// Infallible convenience wrapper around [`try_run_gpu_code`] for the
/// experiment drivers, which treat a wrong labeling as fatal.
pub fn run_gpu_code(
    runner: GpuRunner,
    profile: &DeviceProfile,
    g: &CsrGraph,
    exec: ExecMode,
) -> f64 {
    match try_run_gpu_code(runner, profile, g, exec) {
        Ok(run) => run.ms,
        Err(e) => panic!("{e}"),
    }
}

/// One parallel CPU code: `(graph, threads) -> labels`, `None` when the
/// code cannot handle the input (CRONO's memory blow-up).
pub type CpuParRunner = fn(&CsrGraph, usize) -> Option<CcResult>;

fn cpu_ecl(g: &CsrGraph, t: usize) -> Option<CcResult> {
    Some(ecl_cc::connected_components_par(g, t))
}

fn cpu_bfscc(g: &CsrGraph, t: usize) -> Option<CcResult> {
    Some(ecl_baselines::cpu::bfscc::run(g, t))
}

fn cpu_comp(g: &CsrGraph, t: usize) -> Option<CcResult> {
    Some(ecl_baselines::cpu::label_prop::run(g, t))
}

fn cpu_crono(g: &CsrGraph, t: usize) -> Option<CcResult> {
    ecl_baselines::cpu::crono::run(g, t)
}

fn cpu_ndhybrid(g: &CsrGraph, t: usize) -> Option<CcResult> {
    Some(ecl_baselines::cpu::ndhybrid::run(g, t))
}

fn cpu_multistep(g: &CsrGraph, t: usize) -> Option<CcResult> {
    Some(ecl_baselines::cpu::multistep::run(g, t))
}

fn cpu_galois(g: &CsrGraph, t: usize) -> Option<CcResult> {
    Some(ecl_baselines::cpu::galois_async::run(g, t))
}

/// The seven parallel CPU codes of Tables 7/8, in the paper's column order.
pub const CPU_PAR_CODES: [(&str, CpuParRunner); 7] = [
    ("ECL-CComp", cpu_ecl as CpuParRunner),
    ("Ligra+BFSCC", cpu_bfscc as CpuParRunner),
    ("Ligra+Comp", cpu_comp as CpuParRunner),
    ("CRONO", cpu_crono as CpuParRunner),
    ("ndHybrid", cpu_ndhybrid as CpuParRunner),
    ("Multistep", cpu_multistep as CpuParRunner),
    ("Galois", cpu_galois as CpuParRunner),
];

/// One serial CPU code.
pub type SerialRunner = fn(&CsrGraph) -> CcResult;

fn ser_ecl(g: &CsrGraph) -> CcResult {
    ecl_cc::connected_components(g)
}

/// The five serial codes of Tables 9/10, in the paper's column order.
pub const SERIAL_CODES: [(&str, SerialRunner); 5] = [
    ("ECL-CCser", ser_ecl as SerialRunner),
    (
        "Galois",
        ecl_baselines::serial::unionfind_cc as SerialRunner,
    ),
    ("Boost", ecl_baselines::serial::dfs_cc as SerialRunner),
    ("Lemon", ecl_baselines::serial::bfs_cc as SerialRunner),
    ("igraph", ecl_baselines::serial::igraph_cc as SerialRunner),
];

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generate;

    #[test]
    fn every_gpu_code_runs_and_verifies() {
        let g = generate::gnm_random(200, 500, 1);
        for (name, r) in GPU_CODES {
            let ms = run_gpu_code(r, &DeviceProfile::test_tiny(), &g, ExecMode::Serial);
            assert!(ms > 0.0, "{name}");
        }
    }

    #[test]
    fn ecl_labels_identical_across_exec_modes() {
        let g = generate::gnm_random(300, 900, 4);
        let profile = DeviceProfile::test_tiny();
        let serial = try_run_gpu_code(gpu_ecl, &profile, &g, ExecMode::Serial).unwrap();
        for workers in [1, 2, 4] {
            let par =
                try_run_gpu_code(gpu_ecl, &profile, &g, ExecMode::HostParallel(workers)).unwrap();
            assert_eq!(par.labels, serial.labels, "workers={workers}");
            assert_eq!(
                par.certificate.num_components,
                serial.certificate.num_components
            );
        }
    }

    #[test]
    fn every_cpu_par_code_runs_and_verifies() {
        let g = generate::gnm_random(200, 500, 2);
        for (name, r) in CPU_PAR_CODES {
            let res = r(&g, 2).unwrap_or_else(|| panic!("{name} refused input"));
            res.verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn every_serial_code_runs_and_verifies() {
        let g = generate::rmat(8, 6, generate::RmatParams::GALOIS, 3);
        for (name, r) in SERIAL_CODES {
            r(&g).verify(&g).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
