//! One driver per table/figure of the paper's evaluation (§5). Each
//! function prints the regenerated rows; EXPERIMENTS.md records a captured
//! run against the paper's numbers.

use crate::report::{BenchRecord, VerifyOutcome};
use crate::runners::{
    run_gpu_code, try_run_gpu_code, CertifiedGpuRun, CPU_PAR_CODES, GPU_CODES, SERIAL_CODES,
};
use crate::{geomean, median_time_ms, paper_graphs, print_table};
use ecl_cc::{EclConfig, FiniKind, InitKind, JumpKind};
use ecl_gpu_sim::{DeviceProfile, ExecMode, Gpu};
use ecl_graph::catalog::Scale;
use ecl_graph::CsrGraph;

fn gpu_cycles(profile: &DeviceProfile, g: &CsrGraph, cfg: &EclConfig) -> u64 {
    let mut gpu = Gpu::new(profile.clone());
    let (r, s) = ecl_cc::gpu::run(&mut gpu, g, cfg);
    r.verify(g).expect("ECL-CC GPU produced a wrong labeling");
    s.total_cycles()
}

/// Table 1: the connected-components codes under evaluation — the
/// workspace's counterpart of the paper's code inventory.
pub fn table1() {
    let rows = vec![
        vec!["GPU", "parallel", "ECL-CC", "ecl-cc::gpu (this work)"],
        vec!["GPU", "parallel", "Groute", "ecl-baselines::gpu::groute"],
        vec!["GPU", "parallel", "Gunrock", "ecl-baselines::gpu::gunrock"],
        vec!["GPU", "parallel", "IrGL", "ecl-baselines::gpu::irgl"],
        vec!["GPU", "parallel", "Soman", "ecl-baselines::gpu::soman"],
        vec!["CPU", "parallel", "CRONO", "ecl-baselines::cpu::crono"],
        vec![
            "CPU",
            "parallel",
            "ECL-CComp",
            "ecl-cc::parallel (this work)",
        ],
        vec![
            "CPU",
            "parallel",
            "Galois",
            "ecl-baselines::cpu::galois_async",
        ],
        vec![
            "CPU",
            "parallel",
            "Ligra+ BFSCC",
            "ecl-baselines::cpu::bfscc",
        ],
        vec![
            "CPU",
            "parallel",
            "Ligra+ Comp",
            "ecl-baselines::cpu::label_prop",
        ],
        vec![
            "CPU",
            "parallel",
            "Multistep",
            "ecl-baselines::cpu::multistep",
        ],
        vec![
            "CPU",
            "parallel",
            "ndHybrid",
            "ecl-baselines::cpu::ndhybrid",
        ],
        vec!["CPU", "serial", "Boost", "ecl-baselines::serial::dfs_cc"],
        vec!["CPU", "serial", "ECL-CCser", "ecl-cc::serial (this work)"],
        vec![
            "CPU",
            "serial",
            "Galois",
            "ecl-baselines::serial::unionfind_cc",
        ],
        vec![
            "CPU",
            "serial",
            "igraph",
            "ecl-baselines::serial::igraph_cc",
        ],
        vec!["CPU", "serial", "Lemon", "ecl-baselines::serial::bfs_cc"],
        vec![
            "CPU",
            "parallel",
            "Afforest*",
            "ecl-baselines::cpu::afforest (beyond paper)",
        ],
        vec![
            "CPU",
            "parallel",
            "BFSCC-hybrid*",
            "ecl-baselines::cpu::bfscc::run_direction_optimizing (beyond paper)",
        ],
    ];
    let rows: Vec<Vec<String>> = rows
        .into_iter()
        .map(|r| r.into_iter().map(String::from).collect())
        .collect();
    print_table(
        "Table 1 — the connected-components codes we evaluate",
        &["Device", "Ser/Par", "Name", "Module"],
        &rows,
    );
}

/// Table 2: the input graphs and their statistics (stand-in scale).
pub fn table2(scale: Scale) {
    let mut rows = Vec::new();
    for (name, g) in paper_graphs(scale) {
        let s = ecl_graph::stats::graph_stats(&g);
        rows.push(vec![
            name.to_string(),
            s.vertices.to_string(),
            s.directed_edges.to_string(),
            s.dmin.to_string(),
            format!("{:.1}", s.davg),
            s.dmax.to_string(),
            s.components.to_string(),
        ]);
    }
    print_table(
        &format!("Table 2 — input graphs ({scale:?} scale stand-ins)"),
        &["Graph", "Vertices", "Edges*", "dmin", "davg", "dmax", "CCs"],
        &rows,
    );
}

fn ablation<T: Copy>(
    title: &str,
    scale: Scale,
    profile: &DeviceProfile,
    variants: &[(&str, T)],
    baseline_idx: usize,
    mk: impl Fn(T) -> EclConfig,
) {
    let graphs = paper_graphs(scale);
    let mut rows = Vec::new();
    let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for (name, g) in &graphs {
        let cycles: Vec<u64> = variants
            .iter()
            .map(|&(_, v)| gpu_cycles(profile, g, &mk(v)))
            .collect();
        let base = cycles[baseline_idx] as f64;
        let mut row = vec![name.to_string()];
        for (i, &c) in cycles.iter().enumerate() {
            let rel = c as f64 / base;
            per_variant[i].push(rel);
            row.push(format!("{rel:.2}"));
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean".to_string()];
    for v in &per_variant {
        gm.push(format!("{:.2}", geomean(v)));
    }
    rows.push(gm);
    let mut header = vec!["Graph"];
    header.extend(variants.iter().map(|&(n, _)| n));
    print_table(title, &header, &rows);
}

/// Fig. 7: runtime of the three initialization variants relative to Init3.
pub fn fig7(scale: Scale, profile: &DeviceProfile) {
    ablation(
        &format!(
            "Fig. 7 — initialization variants, {} (runtime / Init3)",
            profile.name
        ),
        scale,
        profile,
        &[
            ("Init1", InitKind::VertexId),
            ("Init2", InitKind::MinNeighbor),
            ("Init3", InitKind::FirstSmaller),
        ],
        2,
        EclConfig::with_init,
    );
}

/// Fig. 8: runtime of the four pointer-jumping variants relative to Jump4.
pub fn fig8(scale: Scale, profile: &DeviceProfile) {
    ablation(
        &format!(
            "Fig. 8 — pointer-jumping variants, {} (runtime / Jump4)",
            profile.name
        ),
        scale,
        profile,
        &[
            ("Jump1", JumpKind::Multiple),
            ("Jump2", JumpKind::Single),
            ("Jump3", JumpKind::None),
            ("Jump4", JumpKind::Intermediate),
        ],
        3,
        EclConfig::with_jump,
    );
}

/// Fig. 9: runtime of the three finalization variants relative to Fini3.
///
/// Reports both total-runtime ratios (the paper's metric) and
/// finalize-kernel-only ratios: on the simulator the computation phase
/// leaves paths so short that finalization is a tiny share of the total,
/// so the kernel-local columns carry the visible signal.
pub fn fig9(scale: Scale, profile: &DeviceProfile) {
    let variants = [
        ("Fini1", FiniKind::Intermediate),
        ("Fini2", FiniKind::Multiple),
        ("Fini3", FiniKind::Single),
    ];
    let graphs = paper_graphs(scale);
    let mut rows = Vec::new();
    let mut rel_total: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut rel_kernel: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (name, g) in &graphs {
        let stats: Vec<(u64, u64)> = variants
            .iter()
            .map(|&(_, f)| {
                let mut gpu = Gpu::new(profile.clone());
                let (r, s) = ecl_cc::gpu::run(&mut gpu, g, &EclConfig::with_fini(f));
                r.verify(g).unwrap();
                let fin = s.kernel("finalize").map_or(1, |k| k.cycles).max(1);
                (s.total_cycles().max(1), fin)
            })
            .collect();
        let (bt, bk) = stats[2];
        let mut row = vec![name.to_string()];
        for (i, &(t, _)) in stats.iter().enumerate() {
            let r = t as f64 / bt as f64;
            rel_total[i].push(r);
            row.push(format!("{r:.2}"));
        }
        for (i, &(_, k)) in stats.iter().enumerate() {
            let r = k as f64 / bk as f64;
            rel_kernel[i].push(r);
            row.push(format!("{r:.2}"));
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean".to_string()];
    for v in rel_total.iter().chain(rel_kernel.iter()) {
        gm.push(format!("{:.2}", geomean(v)));
    }
    rows.push(gm);
    print_table(
        &format!(
            "Fig. 9 — finalization variants, {} (total & finalize-kernel runtime / Fini3)",
            profile.name
        ),
        &[
            "Graph", "tot F1", "tot F2", "tot F3", "krn F1", "krn F2", "krn F3",
        ],
        &rows,
    );
}

/// Table 3: whole-run L2 read/write accesses of Jump1/2/3 relative to
/// Jump4.
pub fn table3(scale: Scale, profile: &DeviceProfile) {
    let variants = [
        ("Jump1", JumpKind::Multiple),
        ("Jump2", JumpKind::Single),
        ("Jump3", JumpKind::None),
        ("Jump4", JumpKind::Intermediate),
    ];
    let graphs = paper_graphs(scale);
    let mut rows = Vec::new();
    let mut rel_reads: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut rel_writes: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for (name, g) in &graphs {
        let stats: Vec<(u64, u64)> = variants
            .iter()
            .map(|&(_, v)| {
                let mut gpu = Gpu::new(profile.clone());
                let (r, s) = ecl_cc::gpu::run(&mut gpu, g, &EclConfig::with_jump(v));
                r.verify(g).unwrap();
                (s.l2_reads().max(1), s.l2_writes().max(1))
            })
            .collect();
        let (br, bw) = stats[3];
        let mut row = vec![name.to_string()];
        for (i, &(rd, _)) in stats[..3].iter().enumerate() {
            let rr = rd as f64 / br as f64;
            rel_reads[i].push(rr);
            row.push(format!("{rr:.2}"));
        }
        for (i, &(_, wr)) in stats[..3].iter().enumerate() {
            let rw = wr as f64 / bw as f64;
            rel_writes[i].push(rw);
            row.push(format!("{rw:.2}"));
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean".to_string()];
    for v in &rel_reads {
        gm.push(format!("{:.2}", geomean(v)));
    }
    for v in &rel_writes {
        gm.push(format!("{:.2}", geomean(v)));
    }
    rows.push(gm);
    print_table(
        &format!("Table 3 — L2 accesses relative to Jump4, {}", profile.name),
        &[
            "Graph", "rd J1", "rd J2", "rd J3", "wr J1", "wr J2", "wr J3",
        ],
        &rows,
    );
}

/// Table 4: average and maximum parent-path lengths observed during the
/// computation phase.
pub fn table4(scale: Scale, profile: &DeviceProfile) {
    let graphs = paper_graphs(scale);
    let mut rows = Vec::new();
    for (name, g) in &graphs {
        let mut gpu = Gpu::new(profile.clone());
        let cfg = EclConfig {
            record_path_lengths: true,
            ..Default::default()
        };
        let (r, s) = ecl_cc::gpu::run(&mut gpu, g, &cfg);
        r.verify(g).unwrap();
        let p = s.path_lengths.expect("probe enabled");
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", p.average()),
            p.max.to_string(),
        ]);
    }
    print_table(
        "Table 4 — observed path lengths during computation",
        &["Graph", "Avg path", "Max path"],
        &rows,
    );
}

/// Fig. 10: per-kernel share of the total ECL-CC runtime.
pub fn fig10(scale: Scale, profile: &DeviceProfile) {
    let graphs = paper_graphs(scale);
    let mut rows = Vec::new();
    let mut shares: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for (name, g) in &graphs {
        let mut gpu = Gpu::new(profile.clone());
        let (r, s) = ecl_cc::gpu::run(&mut gpu, g, &EclConfig::default());
        r.verify(g).unwrap();
        let total = s.total_cycles().max(1) as f64;
        let mut row = vec![name.to_string()];
        for (i, k) in s.kernels.iter().enumerate() {
            let share = 100.0 * k.cycles as f64 / total;
            shares[i].push(share);
            row.push(format!("{share:.1}%"));
        }
        rows.push(row);
    }
    let mut avg = vec!["mean".to_string()];
    for v in &shares {
        avg.push(format!(
            "{:.1}%",
            v.iter().sum::<f64>() / v.len().max(1) as f64
        ));
    }
    rows.push(avg);
    print_table(
        &format!("Fig. 10 — kernel runtime breakdown, {}", profile.name),
        &[
            "Graph", "init", "compute1", "compute2", "compute3", "finalize",
        ],
        &rows,
    );
}

/// Tables 5/6 + Figs. 11/12: absolute simulated runtimes of the five GPU
/// codes, plus each baseline's slowdown relative to ECL-CC.
pub fn gpu_comparison(scale: Scale, profile: &DeviceProfile, exec: ExecMode) {
    let graphs = paper_graphs(scale);
    let mut rows = Vec::new();
    let mut rel: Vec<Vec<f64>> = vec![Vec::new(); GPU_CODES.len() - 1];
    for (name, g) in &graphs {
        let times: Vec<f64> = GPU_CODES
            .iter()
            .map(|&(_, r)| run_gpu_code(r, profile, g, exec))
            .collect();
        let mut row = vec![name.to_string()];
        for &t in &times {
            row.push(format!("{t:.2}"));
        }
        for (i, &t) in times[1..].iter().enumerate() {
            let ratio = t / times[0];
            rel[i].push(ratio);
            row.push(format!("{ratio:.2}x"));
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean".to_string(), String::new()];
    gm.extend(std::iter::repeat_n(String::new(), GPU_CODES.len() - 1));
    for v in &rel {
        gm.push(format!("{:.2}x", geomean(v)));
    }
    rows.push(gm);
    let table_no = if profile.name == "K40" {
        "Table 6 / Fig. 12"
    } else {
        "Table 5 / Fig. 11"
    };
    print_table(
        &format!(
            "{table_no} — GPU codes, {} (simulated ms; rel = code/ECL-CC)",
            profile.name
        ),
        &[
            "Graph",
            "ECL-CC",
            "Groute",
            "Gunrock",
            "IrGL",
            "Soman",
            "relGroute",
            "relGunrock",
            "relIrGL",
            "relSoman",
        ],
        &rows,
    );
}

/// Tables 7/8 + Figs. 13/14: parallel CPU codes at a given thread count
/// (the paper's two hosts ran 40 and 12 hardware threads).
pub fn cpu_parallel_comparison(scale: Scale, threads: usize, label: &str) {
    let graphs = paper_graphs(scale);
    let mut rows = Vec::new();
    let mut rel: Vec<Vec<f64>> = vec![Vec::new(); CPU_PAR_CODES.len() - 1];
    for (name, g) in &graphs {
        let mut times: Vec<Option<f64>> = Vec::new();
        for &(code_name, r) in &CPU_PAR_CODES {
            match r(g, threads) {
                Some(res) => {
                    res.verify(g).unwrap_or_else(|e| panic!("{code_name}: {e}"));
                    let t = median_time_ms(|| {
                        let _ = std::hint::black_box(r(g, threads));
                    });
                    times.push(Some(t));
                }
                None => times.push(None),
            }
        }
        let base = times[0].expect("ECL-CComp always runs");
        let mut row = vec![name.to_string()];
        for t in &times {
            row.push(t.map_or("n/a".into(), |t| format!("{t:.2}")));
        }
        for (i, t) in times[1..].iter().enumerate() {
            if let Some(t) = t {
                rel[i].push(t / base);
            }
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean rel".to_string(), String::new()];
    for v in &rel {
        gm.push(if v.is_empty() {
            "n/a".into()
        } else {
            format!("{:.2}x", geomean(v))
        });
    }
    rows.push(gm);
    print_table(
        &format!("{label} — parallel CPU codes, {threads} threads (ms; geomean rel to ECL-CComp)"),
        &[
            "Graph",
            "ECL-CComp",
            "BFSCC",
            "Comp",
            "CRONO",
            "ndHybrid",
            "Multistep",
            "Galois",
        ],
        &rows,
    );
}

/// Tables 9/10 + Figs. 15/16: serial CPU codes.
pub fn serial_comparison(scale: Scale, label: &str) {
    let graphs = paper_graphs(scale);
    let mut rows = Vec::new();
    let mut rel: Vec<Vec<f64>> = vec![Vec::new(); SERIAL_CODES.len() - 1];
    for (name, g) in &graphs {
        let times: Vec<f64> = SERIAL_CODES
            .iter()
            .map(|&(code_name, r)| {
                r(g).verify(g)
                    .unwrap_or_else(|e| panic!("{code_name}: {e}"));
                median_time_ms(|| {
                    let _ = std::hint::black_box(r(g));
                })
            })
            .collect();
        let mut row = vec![name.to_string()];
        for &t in &times {
            row.push(format!("{t:.2}"));
        }
        for (i, &t) in times[1..].iter().enumerate() {
            rel[i].push(t / times[0]);
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean rel".to_string(), String::new()];
    for v in &rel {
        gm.push(format!("{:.2}x", geomean(v)));
    }
    rows.push(gm);
    print_table(
        &format!("{label} — serial CPU codes (ms; geomean rel to ECL-CCser)"),
        &["Graph", "ECL-CCser", "Galois", "Boost", "Lemon", "igraph"],
        &rows,
    );
}

/// Beyond the paper: vertex-ordering sensitivity. §5.1 observes that
/// europe_osm "is particularly sensitive to the order in which the
/// vertices are processed"; this experiment runs GPU ECL-CC on the same
/// graphs under four renumberings and reports runtime and observed path
/// lengths per ordering.
pub fn ordering(scale: Scale, profile: &DeviceProfile) {
    use ecl_graph::transform;
    let targets = [
        ecl_graph::catalog::PaperGraph::EuropeOsm,
        ecl_graph::catalog::PaperGraph::UsaRoadUsa,
        ecl_graph::catalog::PaperGraph::Rmat16,
    ];
    let mut rows = Vec::new();
    for pg in targets {
        let base = pg.generate(scale);
        let n = base.num_vertices();
        let orderings: Vec<(&str, ecl_graph::CsrGraph)> = vec![
            ("natural", base.clone()),
            (
                "random",
                transform::permute(&base, &transform::random_permutation(n, 42)),
            ),
            (
                "reversed",
                transform::permute(&base, &transform::reverse_permutation(n)),
            ),
            (
                "bfs",
                transform::permute(&base, &transform::bfs_permutation(&base)),
            ),
        ];
        let cfg = EclConfig {
            record_path_lengths: true,
            ..Default::default()
        };
        let baseline = {
            let mut gpu = Gpu::new(profile.clone());
            let (r, s) = ecl_cc::gpu::run(&mut gpu, &base, &cfg);
            r.verify(&base).unwrap();
            s.total_cycles() as f64
        };
        for (oname, g) in &orderings {
            let mut gpu = Gpu::new(profile.clone());
            let (r, s) = ecl_cc::gpu::run(&mut gpu, g, &cfg);
            r.verify(g).unwrap();
            let p = s.path_lengths.unwrap();
            rows.push(vec![
                format!("{} / {}", pg.info().name, oname),
                format!("{:.2}", s.total_cycles() as f64 / baseline),
                format!("{:.2}", p.average()),
                p.max.to_string(),
            ]);
        }
    }
    print_table(
        &format!(
            "Ordering sensitivity (beyond paper), {} — runtime / natural order",
            profile.name
        ),
        &["Graph / ordering", "Rel time", "Avg path", "Max path"],
        &rows,
    );
}

/// Fig. 17: geometric-mean runtime of every code, normalized to GPU
/// ECL-CC on the Titan X profile.
///
/// Caveat (documented in EXPERIMENTS.md): GPU times are simulated cycles
/// converted at the device clock while CPU times are host wall-clock, so
/// the *cross-family* ratios mix a simulator with real silicon. Ratios
/// within each family are directly comparable.
pub fn fig17(scale: Scale, threads: usize, exec: ExecMode) {
    let graphs = paper_graphs(scale);
    let titan = DeviceProfile::titan_x();

    // Per-graph baseline: GPU ECL-CC simulated ms.
    let base: Vec<f64> = graphs
        .iter()
        .map(|(_, g)| run_gpu_code(GPU_CODES[0].1, &titan, g, exec))
        .collect();

    // Each entry holds per-graph ratios to the baseline, aligned by graph
    // index (None where a code cannot handle the input — the paper notes
    // the same averaging artifact for CRONO).
    let mut entries: Vec<(String, Vec<f64>)> = Vec::new();
    for &(name, r) in &GPU_CODES {
        let ratios: Vec<f64> = graphs
            .iter()
            .enumerate()
            .map(|(i, (_, g))| run_gpu_code(r, &titan, g, exec) / base[i])
            .collect();
        entries.push((format!("GPU {name}"), ratios));
    }
    for &(name, r) in &CPU_PAR_CODES {
        let ratios: Vec<f64> = graphs
            .iter()
            .enumerate()
            .filter_map(|(i, (_, g))| {
                r(g, threads)?;
                let t = median_time_ms(|| {
                    let _ = std::hint::black_box(r(g, threads));
                });
                Some(t / base[i])
            })
            .collect();
        entries.push((format!("parCPU {name}"), ratios));
    }
    for &(name, r) in &SERIAL_CODES {
        let ratios: Vec<f64> = graphs
            .iter()
            .enumerate()
            .map(|(i, (_, g))| {
                median_time_ms(|| {
                    let _ = std::hint::black_box(r(g));
                }) / base[i]
            })
            .collect();
        entries.push((format!("serCPU {name}"), ratios));
    }

    let mut rows = Vec::new();
    for (name, ratios) in &entries {
        rows.push(vec![name.clone(), format!("{:.2}x", geomean(ratios))]);
    }
    print_table(
        &format!("Fig. 17 — geomean runtime relative to GPU ECL-CC ({threads} CPU threads)"),
        &["Code", "Geomean rel"],
        &rows,
    );
}

/// `--verify` sweep: runs every code (GPU, parallel CPU, serial) on the
/// quick graph set, certifies each labeling with the independent checker
/// *outside* the timed region, and returns machine-readable records for
/// JSON emission. Prints a summary table as it goes.
pub fn verify_sweep(
    scale: Scale,
    threads: usize,
    profile: &DeviceProfile,
    exec: ExecMode,
) -> Vec<BenchRecord> {
    let graphs = crate::quick_graphs(scale);
    let mut records = Vec::new();
    let mut rows = Vec::new();

    let push = |records: &mut Vec<BenchRecord>,
                rows: &mut Vec<Vec<String>>,
                graph: &str,
                code: String,
                time_ms: f64,
                simulated: bool,
                outcome: VerifyOutcome| {
        rows.push(vec![
            graph.to_string(),
            code.clone(),
            format!("{time_ms:.2}"),
            if outcome.pass {
                format!("certified ({} components)", outcome.components)
            } else {
                format!("FAILED: {}", outcome.detail)
            },
        ]);
        records.push(BenchRecord {
            experiment: "verify-sweep".into(),
            graph: graph.to_string(),
            code,
            time_ms,
            simulated,
            verified: Some(outcome),
            device: if simulated {
                profile.name.to_string()
            } else {
                "host".into()
            },
            exec: if simulated {
                exec.describe()
            } else {
                "host".into()
            },
            ..Default::default()
        });
    };

    let certify = |g: &CsrGraph, labels: &[u32]| match ecl_verify::certify(g, labels) {
        Ok(c) => VerifyOutcome {
            pass: true,
            components: c.num_components,
            detail: String::new(),
        },
        Err(e) => VerifyOutcome {
            pass: false,
            components: 0,
            detail: e.to_string(),
        },
    };

    for (gname, g) in &graphs {
        for &(cname, r) in &GPU_CODES {
            match try_run_gpu_code(r, profile, g, exec) {
                Ok(run) => push(
                    &mut records,
                    &mut rows,
                    gname,
                    format!("GPU {cname}"),
                    run.ms,
                    true,
                    VerifyOutcome {
                        pass: true,
                        components: run.certificate.num_components,
                        detail: String::new(),
                    },
                ),
                Err(e) => push(
                    &mut records,
                    &mut rows,
                    gname,
                    format!("GPU {cname}"),
                    f64::NAN,
                    true,
                    VerifyOutcome {
                        pass: false,
                        components: 0,
                        detail: e,
                    },
                ),
            }
        }
        for &(cname, r) in &CPU_PAR_CODES {
            let Some(first) = r(g, threads) else { continue };
            let t = median_time_ms(|| {
                let _ = std::hint::black_box(r(g, threads));
            });
            push(
                &mut records,
                &mut rows,
                gname,
                format!("parCPU {cname}"),
                t,
                false,
                certify(g, &first.labels),
            );
        }
        for &(cname, r) in &SERIAL_CODES {
            let first = r(g);
            let t = median_time_ms(|| {
                let _ = std::hint::black_box(r(g));
            });
            push(
                &mut records,
                &mut rows,
                gname,
                format!("serCPU {cname}"),
                t,
                false,
                certify(g, &first.labels),
            );
        }
    }

    print_table(
        "Verification sweep — every code certified outside the timed region",
        &["Graph", "Code", "ms", "Certification"],
        &rows,
    );
    records
}

/// `simspeed` experiment: wall-clock self-timing of the *simulator* —
/// GPU ECL-CC executed serially and host-parallel at a matrix of worker
/// counts ({1, 2, 4, 8}, plus the explicitly requested count when it is
/// not already in the matrix; `workers = 0` just means "the matrix").
/// Every host-parallel labeling is compared byte-for-byte against the
/// serial labeling and certified by the independent checker, so the
/// reported speedups only cover runs proven equivalent. Times are host
/// milliseconds (this measures the simulator, not the modeled GPU), and
/// each record also carries simulated-edges-per-wall-second — the
/// throughput metric that makes runs comparable across graph sizes. On a
/// single-core host expect speedups ≈ 1 at best: the parallel engine
/// multiplexes workers onto the available cores, so the matrix measures
/// its overhead there, and its scaling on multi-core hosts.
pub fn simspeed(scale: Scale, workers: usize) -> Vec<BenchRecord> {
    let graphs = crate::quick_graphs(scale);
    let profile = DeviceProfile::titan_x();
    let mut matrix: Vec<usize> = vec![1, 2, 4, 8];
    if workers != 0 && !matrix.contains(&workers) {
        matrix.push(workers);
        matrix.sort_unstable();
    }
    let mut records = Vec::new();
    let mut rows = Vec::new();
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); matrix.len()];

    for (gname, g) in &graphs {
        // Best-of-3 per mode: simulator wall-clock is noisy on a shared
        // host, and the fastest run is the least-perturbed one.
        let best = |exec: ExecMode| -> CertifiedGpuRun {
            let mut runs: Vec<CertifiedGpuRun> = (0..3)
                .map(|_| {
                    try_run_gpu_code(GPU_CODES[0].1, &profile, g, exec)
                        .expect("ECL-CC must certify in every exec mode")
                })
                .collect();
            runs.sort_by(|a, b| a.wall_ms.total_cmp(&b.wall_ms));
            runs.remove(0)
        };
        let edges_per_sec = |wall_ms: f64| g.num_edges() as f64 / (wall_ms.max(1e-9) / 1e3);

        let serial = best(ExecMode::Serial);
        let mut row = vec![gname.to_string(), format!("{:.2}", serial.wall_ms)];
        records.push(BenchRecord {
            experiment: "simspeed".into(),
            graph: gname.to_string(),
            code: "sim-serial".into(),
            time_ms: serial.wall_ms,
            simulated: false,
            verified: Some(VerifyOutcome {
                pass: true,
                components: serial.certificate.num_components,
                detail: String::new(),
            }),
            speedup_vs_serial: None,
            sim_edges_per_sec: Some(edges_per_sec(serial.wall_ms)),
            device: profile.name.to_string(),
            exec: ExecMode::Serial.describe(),
        });

        for (wi, &w) in matrix.iter().enumerate() {
            let par = best(ExecMode::HostParallel(w));
            assert_eq!(
                par.labels, serial.labels,
                "{gname}: host-parallel:{w} labels diverged from serial"
            );
            let speedup = serial.wall_ms / par.wall_ms.max(1e-9);
            speedups[wi].push(speedup);
            row.push(format!("{:.2} ({speedup:.2}x)", par.wall_ms));
            records.push(BenchRecord {
                experiment: "simspeed".into(),
                graph: gname.to_string(),
                code: format!("sim-parallel:{w}"),
                time_ms: par.wall_ms,
                simulated: false,
                verified: Some(VerifyOutcome {
                    pass: true,
                    components: par.certificate.num_components,
                    detail: String::new(),
                }),
                speedup_vs_serial: Some(speedup),
                sim_edges_per_sec: Some(edges_per_sec(par.wall_ms)),
                device: profile.name.to_string(),
                exec: ExecMode::HostParallel(w).describe(),
            });
        }
        rows.push(row);
    }

    let mut tail = vec!["geomean".into(), String::new()];
    tail.extend(speedups.iter().map(|s| format!("{:.2}x", geomean(s))));
    rows.push(tail);
    let mut header: Vec<String> = vec!["Graph".into(), "serial ms".into()];
    header.extend(matrix.iter().map(|w| format!("par:{w} ms")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    print_table(
        "simspeed — simulator wall-clock, serial vs host-parallel worker \
         matrix, labels certified identical",
        &header_refs,
        &rows,
    );
    records
}

/// `batch` experiment: throughput of the fault-tolerant batch engine at
/// several worker counts, on a fixed deterministic job mix, plus one
/// degraded configuration where the simulated GPU is dead (1-cycle
/// watchdog) and every job must route through the tripped breaker down
/// the CPU rungs. Returns machine-readable records for `--json`.
pub fn batch_throughput(threads: usize) -> Vec<BenchRecord> {
    use ecl_engine::{run_batch, EngineConfig, GraphSpec, JobSpec};

    let specs = [
        "cycle:4000",
        "cliques:6:40",
        "gnm:6000:18000:3",
        "star:3000",
        "grid:60:60",
        "rmat:10:8:5",
        "gnm:4000:8000:9",
        "path:5000",
        "kronecker:9:6:2",
        "cliques:3:80",
        "cycle:2500",
        "gnm:5000:15000:4",
    ];
    let jobs: Vec<JobSpec> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| JobSpec {
            id: i as u64,
            name: format!("job{i}"),
            graph: GraphSpec::parse(s).expect("static spec"),
        })
        .collect();

    let mut records = Vec::new();
    let mut rows = Vec::new();
    let mut run = |code: String, cfg: &EngineConfig| {
        let report = run_batch(&jobs, cfg).expect("batch setup");
        assert!(report.is_complete(), "batch must complete: {code}");
        let jobs_per_s = report.jobs.len() as f64 / (report.total_ms / 1e3);
        rows.push(vec![
            code.clone(),
            format!("{:.1}", report.total_ms),
            format!("{jobs_per_s:.1}"),
            format!("{}", report.total_retries()),
            format!("{}", report.total_trips()),
        ]);
        records.push(BenchRecord {
            experiment: "batch-throughput".into(),
            graph: format!("{}-job-mix", jobs.len()),
            code,
            time_ms: report.total_ms,
            simulated: false,
            verified: None,
            device: cfg.ladder.profile.name.to_string(),
            exec: cfg.ladder.exec.describe(),
            ..Default::default()
        });
    };

    for workers in [1usize, 2, 4] {
        let mut cfg = EngineConfig {
            workers,
            ..EngineConfig::default()
        };
        cfg.ladder.threads = threads.clamp(1, 4);
        run(format!("workers={workers}"), &cfg);
    }
    // Degraded: GPU dead on arrival, breaker trips, CPU rungs carry the
    // batch. Throughput should stay the same order of magnitude.
    let mut cfg = EngineConfig {
        workers: 4,
        ..EngineConfig::default()
    };
    cfg.ladder.threads = threads.clamp(1, 4);
    cfg.ladder.watchdog = Some(1);
    cfg.breaker.cooldown_ms = 3_600_000;
    run("workers=4,gpu-dead".into(), &cfg);

    print_table(
        "Batch engine throughput — certified jobs through the fallback ladder",
        &["Config", "total ms", "jobs/s", "retries", "breaker trips"],
        &rows,
    );
    records
}
