//! Benchmark + acceptance harness for sharded multi-device execution.
//!
//! For each quick-set graph and shard count {2, 4, 8} it runs three
//! in-process configurations against the serial baseline:
//!
//! 1. **clean** — no injected faults: rounds to fixpoint, exchange
//!    frames/bytes, and modeled interconnect cycles.
//! 2. **chaos** — the seeded `shard-chaos` drop/corrupt mix: the frame
//!    retransmission tax for the same answer.
//! 3. **crash** — chaos plus a device crash at round 2 with
//!    checkpointing on: recovery overhead (extra rounds and re-solve
//!    cycles) for a run that still finishes in degraded N−1 mode.
//!
//! Every configuration's labels must be byte-identical to serial
//! ECL-CC and certified canonical — any divergence fails the process
//! (exit 1), which is the CI gate. The summary JSON (`BENCH_sharded.json`
//! by default) carries one record per (graph, shards, mode) plus
//! greppable top-level pass/fail fields.

use ecl_gpu_sim::FaultPlan;
use ecl_graph::catalog::Scale;
use ecl_obs::json::Obj;
use ecl_shard::{run_sharded, ShardConfig};
use std::time::Instant;

/// One measured configuration, flattened for the JSON report.
struct ShardRecord {
    graph: &'static str,
    shards: usize,
    mode: &'static str,
    rounds: u64,
    shared_vertices: u64,
    frames: u64,
    retransmits: u64,
    exchange_bytes: u64,
    exchange_cycles: u64,
    crashes: u64,
    recovered: u64,
    recovery_cycles: u64,
    wall_ms: f64,
    byte_identical: bool,
    certified: bool,
}

impl ShardRecord {
    fn to_json(&self) -> String {
        Obj::new()
            .str("graph", self.graph)
            .u64("shards", self.shards as u64)
            .str("mode", self.mode)
            .u64("rounds", self.rounds)
            .u64("shared_vertices", self.shared_vertices)
            .u64("frames", self.frames)
            .u64("retransmits", self.retransmits)
            .u64("exchange_bytes", self.exchange_bytes)
            .u64("exchange_cycles", self.exchange_cycles)
            .u64("crashes", self.crashes)
            .u64("recovered", self.recovered)
            .u64("recovery_cycles", self.recovery_cycles)
            .f64("wall_ms", self.wall_ms)
            .bool("byte_identical", self.byte_identical)
            .bool("certified", self.certified)
            .build()
    }
}

/// Runs the sharded experiment matrix and writes the summary JSON.
/// Exits nonzero when any configuration diverges from serial or fails
/// certification.
pub fn sharded(scale: Scale, plan: FaultPlan, json_path: &str) {
    let graphs = crate::quick_graphs(scale);
    let ckpt_root = std::env::temp_dir().join(format!("ecl-bench-sharded-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let mut records: Vec<ShardRecord> = Vec::new();
    println!(
        "# sharded multi-device execution — scale {scale:?}, seed {}",
        plan.seed
    );
    println!(
        "{:<18} {:>6} {:>6} {:>7} {:>8} {:>11} {:>12} {:>9} {:>8}",
        "graph", "shards", "mode", "rounds", "frames", "retransmit", "bytes", "wall ms", "exact"
    );

    for (name, g) in &graphs {
        let serial = ecl_cc::connected_components(g).labels;
        for shards in [2usize, 4, 8] {
            // clean / chaos / crash share one closure; only the fault
            // plan and checkpoint dir differ.
            let mut run = |mode: &'static str, fault: FaultPlan, ckpt: bool| {
                let cfg = ShardConfig {
                    shards,
                    fault,
                    checkpoint_dir: ckpt.then(|| ckpt_root.join(format!("{name}-{shards}-{mode}"))),
                    crash_budget: 1,
                    ..ShardConfig::default()
                };
                let t0 = Instant::now();
                let out = run_sharded(g, &cfg).expect("sharded run failed");
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                let rec = ShardRecord {
                    graph: name,
                    shards,
                    mode,
                    rounds: out.report.rounds,
                    shared_vertices: out.report.shared_vertices as u64,
                    frames: out.report.exchange.frames_sent,
                    retransmits: out.report.exchange.retransmits,
                    exchange_bytes: out.report.exchange.bytes_sent,
                    exchange_cycles: out.report.exchange.cycles,
                    crashes: out.report.device_crashes as u64,
                    recovered: out.report.shards_recovered as u64,
                    recovery_cycles: out.report.recovery_cycles,
                    wall_ms,
                    byte_identical: out.result.labels == serial,
                    certified: out.certificate.canonical,
                };
                println!(
                    "{:<18} {:>6} {:>6} {:>7} {:>8} {:>11} {:>12} {:>9.2} {:>8}",
                    rec.graph,
                    rec.shards,
                    rec.mode,
                    rec.rounds,
                    rec.frames,
                    rec.retransmits,
                    rec.exchange_bytes,
                    rec.wall_ms,
                    if rec.byte_identical && rec.certified {
                        "yes"
                    } else {
                        "NO"
                    }
                );
                records.push(rec);
            };

            run("clean", FaultPlan::none(), false);
            run("chaos", FaultPlan::shard_chaos(plan.seed), false);
            let mut crash = FaultPlan::shard_chaos(plan.seed.wrapping_add(1));
            crash.device_crash_at_round = 2;
            run("crash", crash, true);
        }
    }
    let _ = std::fs::remove_dir_all(&ckpt_root);

    let exact = records
        .iter()
        .filter(|r| r.byte_identical && r.certified)
        .count();
    let crash_recovered = records
        .iter()
        .filter(|r| r.mode == "crash" && r.crashes >= 1 && r.recovered >= 1)
        .count();
    let crash_total = records.iter().filter(|r| r.mode == "crash").count();
    // Recovery overhead: extra rounds a crashed run needs over its clean
    // twin, averaged across the matrix.
    let mut extra_rounds = 0i64;
    for r in records.iter().filter(|r| r.mode == "crash") {
        if let Some(clean) = records
            .iter()
            .find(|c| c.mode == "clean" && c.graph == r.graph && c.shards == r.shards)
        {
            extra_rounds += r.rounds as i64 - clean.rounds as i64;
        }
    }
    let avg_extra_rounds = if crash_total > 0 {
        extra_rounds as f64 / crash_total as f64
    } else {
        0.0
    };
    let pass = exact == records.len() && crash_recovered == crash_total;
    println!(
        "\nsharded: {exact}/{} exact, {crash_recovered}/{crash_total} crash runs recovered, \
         avg +{avg_extra_rounds:.1} rounds recovery overhead",
        records.len()
    );

    let items: Vec<String> = records.iter().map(ShardRecord::to_json).collect();
    let json = Obj::new()
        .str("experiment", "sharded")
        .str("scale", &format!("{scale:?}").to_lowercase())
        .u64("fault_seed", plan.seed)
        .u64("configurations", records.len() as u64)
        .u64("byte_identical", exact as u64)
        .u64("crash_runs", crash_total as u64)
        .u64("crash_recovered", crash_recovered as u64)
        .f64("avg_recovery_extra_rounds", avg_extra_rounds)
        .bool("pass", pass)
        .arr("records", &items)
        .build();
    std::fs::write(json_path, format!("{json}\n")).expect("write sharded summary");
    println!("wrote sharded summary to {json_path}");

    if !pass {
        eprintln!(
            "sharded: FAILED ({exact}/{} exact, {crash_recovered}/{crash_total} recovered)",
            records.len()
        );
        std::process::exit(1);
    }
}
