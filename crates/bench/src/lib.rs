//! Benchmark harness support: graph sets, timing, aggregation, and the
//! per-experiment drivers behind the `harness` binary and the
//! `[[bench]]` targets (which run on the in-crate [`microbench`]
//! runner). Each public `exp_*` function regenerates one table or
//! figure of the paper (see DESIGN.md's experiment index).

#![forbid(unsafe_code)]

pub mod experiments;
pub mod microbench;
pub mod report;
pub mod runners;
pub mod serve_load;
pub mod shard_bench;

use ecl_graph::catalog::{PaperGraph, Scale};
use ecl_graph::CsrGraph;

/// The paper's measurement protocol: run three times, report the median
/// (§4: "We repeated each experiment three times and report the median").
pub fn median_time_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..3)
        .map(|_| {
            let t = std::time::Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[1]
}

/// Geometric mean of positive values (the paper's aggregate: "all averages
/// refer to the geometric mean of the normalized runtimes").
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Generates all eighteen catalog graphs at `scale`, with names.
pub fn paper_graphs(scale: Scale) -> Vec<(&'static str, CsrGraph)> {
    PaperGraph::ALL
        .iter()
        .map(|&pg| (pg.info().name, pg.generate(scale)))
        .collect()
}

/// A quick subset (fast, varied classes) used by the `[[bench]]`
/// targets and the `--verify` sweep.
pub fn quick_graphs(scale: Scale) -> Vec<(&'static str, CsrGraph)> {
    [
        PaperGraph::Grid2d,
        PaperGraph::EuropeOsm,
        PaperGraph::Rmat16,
        PaperGraph::SocLivejournal,
    ]
    .iter()
    .map(|&pg| (pg.info().name, pg.generate(scale)))
    .collect()
}

/// Renders one row of a fixed-width table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a table: header + separator + rows, first column left-aligned.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let head: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    let fmt_row = |r: &[String]| {
        r.iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{c:<w$}", w = widths[0])
                } else {
                    format!("{c:>w$}", w = widths[i])
                }
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn median_returns_a_time() {
        let t = median_time_ms(|| {
            let _ = std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
    }

    #[test]
    fn quick_set_has_four_classes() {
        let g = quick_graphs(Scale::Tiny);
        assert_eq!(g.len(), 4);
    }
}
