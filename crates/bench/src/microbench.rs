//! Minimal self-contained micro-benchmark runner.
//!
//! The `[[bench]]` targets used to be Criterion suites; with the
//! workspace now hermetic (no registry access, no external crates) they
//! run on this ~60-line harness instead. The API mirrors the slice of
//! Criterion they used — named groups, per-case ids, `iter`-style
//! closures — and the output is one line per case:
//!
//! ```text
//! group/id  median  <ms>  (k samples)
//! ```
//!
//! Medians over a fixed sample count keep the relative numbers stable;
//! absolute times are not the point (the paper's figures are ratios).

use std::time::Instant;

/// Samples measured per case (median reported).
pub const DEFAULT_SAMPLES: usize = 7;

/// A named group of benchmark cases, printed with a header line.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Group {
        println!("\n## {name}");
        Group {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Overrides the per-case sample count.
    pub fn sample_size(mut self, samples: usize) -> Group {
        self.samples = samples.max(1);
        self
    }

    /// Measures `f` (one full workload per call) and prints the median.
    pub fn bench<F: FnMut()>(&self, id: &str, mut f: F) -> f64 {
        // One untimed warm-up run, then `samples` timed runs.
        f();
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        println!(
            "{}/{}  median {:10.4} ms  ({} samples)",
            self.name, id, median, self.samples
        );
        median
    }
}

/// Micro-benchmarks for the simulator's two hot paths — the cache lookup
/// and the per-warp coalescing pass — under the access shapes that
/// dominate real kernels: same-line repeats (the `last_slot` fast path),
/// sector-streaming misses (fill + LRU eviction), and scattered lookups
/// (set-scan without locality). The coalescing cases drive full warp
/// loads through a simulated device, so they cover address split,
/// sector dedup, and the batched cycle accounting together. Returns one
/// [`BenchRecord`] per case so the harness can emit them via `--json`.
pub fn hot_paths() -> Vec<crate::report::BenchRecord> {
    use crate::report::BenchRecord;
    use ecl_gpu_sim::{DeviceProfile, Gpu};

    let mut records = Vec::new();
    let mut push = |group: &str, id: &str, median_ms: f64| {
        records.push(BenchRecord {
            experiment: "microbench".into(),
            graph: "synthetic".into(),
            code: format!("{group}/{id}"),
            time_ms: median_ms,
            simulated: false,
            verified: None,
            device: "host".into(),
            exec: "host".into(),
            ..Default::default()
        });
    };

    // --- cache lookup, titan L1 geometry (48 kB, 8-way, 128 B lines) ---
    let cache_geom = || ecl_gpu_sim::Cache::new(48 * 1024, 8, 128, 32);
    const LOOKUPS: u64 = 200_000;
    let g = Group::new("cache-lookup");

    let mut c = cache_geom();
    push(
        "cache",
        "repeat-hit",
        g.bench("repeat-hit", || {
            for _ in 0..LOOKUPS {
                let _ = c.access(0x4000, false);
            }
        }),
    );

    let mut c = cache_geom();
    let mut addr: u64 = 0;
    push(
        "cache",
        "streaming-miss",
        g.bench("streaming-miss", || {
            for _ in 0..LOOKUPS {
                // One new sector per access: every line fills cold and is
                // eventually evicted — the slow path, wall to wall.
                addr = addr.wrapping_add(32);
                let _ = c.access(addr, false);
            }
        }),
    );

    let mut c = cache_geom();
    let mut state: u64 = 0x9e3779b97f4a7c15;
    push(
        "cache",
        "scatter",
        g.bench("scatter", || {
            for _ in 0..LOOKUPS {
                // SplitMix-style stream: no spatial locality, so the
                // same-line fast path never helps and every access pays
                // the set scan.
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let _ = c.access((state >> 16) & 0xff_ffff, false);
            }
        }),
    );

    // --- warp coalescing through a full simulated device ---------------
    let g = Group::new("coalesce");
    let mut gpu = Gpu::new(DeviceProfile::titan_x());
    const WORDS: u32 = 1 << 20;
    let buf = gpu.alloc(WORDS as usize);
    let threads = 24 * 8 * 32; // one warp per titan SM slot round
    const ROUNDS: u32 = 16;

    type IndexFn = fn(u32, u32) -> u32;
    let cases: [(&str, IndexFn); 3] = [
        // All 32 lanes in one sector: dedup collapses the warp to a
        // single transaction (the best case the paper's §3 relies on).
        ("broadcast", |_tid, r| r * 8),
        // Adjacent words: 4 sectors per warp, the common coalesced shape.
        ("unit-stride", |tid, r| tid.wrapping_add(r * 4096) % WORDS),
        // One sector per lane: the dedup loop's worst case, 32 distinct
        // sectors per warp instruction.
        ("sector-scatter", |tid, r| {
            tid.wrapping_mul(8).wrapping_add(r * 131) % WORDS
        }),
    ];
    for (id, index_of) in cases {
        push(
            "coalesce",
            id,
            g.bench(id, || {
                gpu.launch_warps("micro", threads, |w| {
                    let ids = w.thread_ids();
                    let m = w.launch_mask();
                    for r in 0..ROUNDS {
                        let idx = ids.map(|t| index_of(t, r));
                        let _ = w.load(buf, &idx, m);
                    }
                });
            }),
        );
        // Loads above are reads only; keep the device's kernel log from
        // growing across cases.
        gpu.reset_profiling();
    }

    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hint::black_box;

    #[test]
    fn bench_returns_nonnegative_median() {
        let g = Group::new("selftest").sample_size(3);
        let m = g.bench("sum", || {
            let _ = black_box((0..1000u64).sum::<u64>());
        });
        assert!(m >= 0.0);
    }
}
