//! Minimal self-contained micro-benchmark runner.
//!
//! The `[[bench]]` targets used to be Criterion suites; with the
//! workspace now hermetic (no registry access, no external crates) they
//! run on this ~60-line harness instead. The API mirrors the slice of
//! Criterion they used — named groups, per-case ids, `iter`-style
//! closures — and the output is one line per case:
//!
//! ```text
//! group/id  median  <ms>  (k samples)
//! ```
//!
//! Medians over a fixed sample count keep the relative numbers stable;
//! absolute times are not the point (the paper's figures are ratios).

use std::time::Instant;

/// Samples measured per case (median reported).
pub const DEFAULT_SAMPLES: usize = 7;

/// A named group of benchmark cases, printed with a header line.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// Starts a group and prints its header.
    pub fn new(name: &str) -> Group {
        println!("\n## {name}");
        Group {
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Overrides the per-case sample count.
    pub fn sample_size(mut self, samples: usize) -> Group {
        self.samples = samples.max(1);
        self
    }

    /// Measures `f` (one full workload per call) and prints the median.
    pub fn bench<F: FnMut()>(&self, id: &str, mut f: F) -> f64 {
        // One untimed warm-up run, then `samples` timed runs.
        f();
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = times[times.len() / 2];
        println!(
            "{}/{}  median {:10.4} ms  ({} samples)",
            self.name, id, median, self.samples
        );
        median
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hint::black_box;

    #[test]
    fn bench_returns_nonnegative_median() {
        let g = Group::new("selftest").sample_size(3);
        let m = g.bench("sum", || {
            let _ = black_box((0..1000u64).sum::<u64>());
        });
        assert!(m >= 0.0);
    }
}
