//! Hand-rolled JSON emission for benchmark results.
//!
//! The harness historically printed text tables only; downstream tooling
//! wants machine-readable output, and the workspace builds offline with
//! no serde. This module writes the small, flat JSON shape we need by
//! hand — escaping is the only subtle part.

use std::io::Write;

/// Verification outcome of one measured run, established *outside* the
/// timed region by the independent checker in `ecl-verify`.
#[derive(Clone, Debug)]
pub struct VerifyOutcome {
    /// Whether certification passed.
    pub pass: bool,
    /// Component count from the certificate (0 when `pass` is false).
    pub components: usize,
    /// The checker's witness message when certification failed.
    pub detail: String,
}

/// One measured (experiment, graph, code) data point.
#[derive(Clone, Debug, Default)]
pub struct BenchRecord {
    /// Experiment name (e.g. `"verify-sweep"`, `"table5"`).
    pub experiment: String,
    /// Input graph name.
    pub graph: String,
    /// Code under test.
    pub code: String,
    /// Measured time in milliseconds (simulated pseudo-ms for GPU codes,
    /// host wall-clock for CPU codes).
    pub time_ms: f64,
    /// True when `time_ms` is simulated cycles converted at device clock.
    pub simulated: bool,
    /// Certification outcome; `None` when the run was not verified.
    pub verified: Option<VerifyOutcome>,
    /// Wall-clock speedup of this run over the matching serial-mode run
    /// (simspeed experiment only; omitted from the JSON when `None`).
    pub speedup_vs_serial: Option<f64>,
    /// Simulated edges processed per host wall-clock second — the
    /// simulator-throughput metric (omitted from the JSON when `None`).
    pub sim_edges_per_sec: Option<f64>,
    /// Device profile name for simulated runs (`"host"` for CPU codes).
    pub device: String,
    /// Execution mode the simulator ran under (`"serial"`,
    /// `"parallel:N"`; `"host"` for CPU codes).
    pub exec: String,
}

/// Escapes a string for inclusion in a JSON string literal. Delegates to
/// the workspace's single JSON implementation in [`ecl_obs::json`].
pub fn json_escape(s: &str) -> String {
    ecl_obs::json::escape(s)
}

/// Formats an `f64` the way JSON expects (no NaN/inf — mapped to null).
/// Delegates to the shared formatter in [`ecl_obs::json`].
fn json_f64(v: f64) -> String {
    ecl_obs::json::fmt_f64(v)
}

impl BenchRecord {
    /// Serializes this record as one JSON object.
    pub fn to_json(&self) -> String {
        let verified = match &self.verified {
            None => "null".to_string(),
            Some(v) => format!(
                "{{\"pass\":{},\"components\":{},\"detail\":\"{}\"}}",
                v.pass,
                v.components,
                json_escape(&v.detail)
            ),
        };
        let mut extra = String::new();
        if let Some(s) = self.speedup_vs_serial {
            extra.push_str(&format!(",\"speedup_vs_serial\":{}", json_f64(s)));
        }
        if let Some(e) = self.sim_edges_per_sec {
            extra.push_str(&format!(",\"sim_edges_per_sec\":{}", json_f64(e)));
        }
        format!(
            "{{\"experiment\":\"{}\",\"graph\":\"{}\",\"code\":\"{}\",\
             \"device\":\"{}\",\"exec\":\"{}\",\
             \"time_ms\":{},\"simulated\":{},\"verified\":{}{}}}",
            json_escape(&self.experiment),
            json_escape(&self.graph),
            json_escape(&self.code),
            json_escape(&self.device),
            json_escape(&self.exec),
            json_f64(self.time_ms),
            self.simulated,
            verified,
            extra
        )
    }
}

/// Serializes a record set as a JSON document:
/// `{"records": [...], "all_verified": bool}`.
pub fn report_to_json(records: &[BenchRecord]) -> String {
    let body: Vec<String> = records
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let all_verified = records
        .iter()
        .filter_map(|r| r.verified.as_ref())
        .all(|v| v.pass);
    format!(
        "{{\n  \"records\": [\n{}\n  ],\n  \"all_verified\": {}\n}}\n",
        body.join(",\n"),
        all_verified
    )
}

/// Writes the report to a file.
pub fn write_report(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(report_to_json(records).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        BenchRecord {
            experiment: "verify-sweep".into(),
            graph: "rmat16.sym".into(),
            code: "ECL-CC".into(),
            time_ms: 1.5,
            simulated: true,
            verified: Some(VerifyOutcome {
                pass: true,
                components: 7,
                detail: String::new(),
            }),
            speedup_vs_serial: None,
            sim_edges_per_sec: None,
            device: "titan-x".into(),
            exec: "serial".into(),
        }
    }

    #[test]
    fn escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn record_shape() {
        let j = record().to_json();
        assert!(j.contains("\"experiment\":\"verify-sweep\""));
        assert!(j.contains("\"time_ms\":1.5"));
        assert!(j.contains("\"pass\":true"));
        assert!(j.contains("\"components\":7"));
        assert!(j.contains("\"device\":\"titan-x\""));
        assert!(j.contains("\"exec\":\"serial\""));
    }

    #[test]
    fn unverified_is_null() {
        let mut r = record();
        r.verified = None;
        assert!(r.to_json().contains("\"verified\":null"));
    }

    #[test]
    fn document_aggregates_pass_flag() {
        let ok = record();
        let mut bad = record();
        bad.verified = Some(VerifyOutcome {
            pass: false,
            components: 0,
            detail: "edge (1, 2) crosses labels".into(),
        });
        assert!(report_to_json(std::slice::from_ref(&ok)).contains("\"all_verified\": true"));
        let doc = report_to_json(&[ok, bad]);
        assert!(doc.contains("\"all_verified\": false"));
        assert!(doc.contains("crosses labels"));
    }

    #[test]
    fn optional_throughput_fields() {
        let mut r = record();
        assert!(!r.to_json().contains("speedup_vs_serial"));
        assert!(!r.to_json().contains("sim_edges_per_sec"));
        r.speedup_vs_serial = Some(1.25);
        r.sim_edges_per_sec = Some(2e6);
        let j = r.to_json();
        assert!(j.contains("\"speedup_vs_serial\":1.25"));
        assert!(j.contains("\"sim_edges_per_sec\":2000000"));
    }

    #[test]
    fn nan_becomes_null() {
        let mut r = record();
        r.time_ms = f64::NAN;
        assert!(r.to_json().contains("\"time_ms\":null"));
    }
}
