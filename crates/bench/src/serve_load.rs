//! Load generator + chaos harness for the `ecl-serve` server.
//!
//! Drives a real `ecl-cc serve` child process over TCP through three
//! phases and writes a JSON summary (`BENCH_serve.json` by default):
//!
//! 1. **Measured load** — many concurrent well-behaved connections
//!    mixing `ADD`/`CONN`/`COMP`/`STATS`/`PING`, recording per-request
//!    latency (p50/p90/p99/max) and aggregate QPS.
//! 2. **Chaos** — adversarial clients driven by the seeded
//!    `serve-chaos` [`FaultPlan`] knobs: truncated frames, stalled
//!    sockets, mid-stream disconnects, malformed and oversized lines.
//!    The server must answer every well-formed probe afterwards.
//! 3. **Kill + resume** — writers stream acknowledged edges while the
//!    server is `SIGKILL`ed mid-load; a `--resume` restart must answer
//!    `CONN u v -> OK true` for every edge a client was told `OK`
//!    about. (Extra durable-but-unacknowledged edges are allowed — the
//!    standard at-least-once envelope; exact-set equality at quiesced
//!    kill points is covered by `tests/serve_recovery.rs`.)
//!
//! Both server incarnations' stderr/stdout go to log files which are
//! scanned for `panic` — the zero-server-panics acceptance gate.

use ecl_gpu_sim::{FaultPlan, FaultRng};
use ecl_graph::catalog::Scale;
use ecl_obs::json::Obj;
use ecl_serve::Client;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct LoadShape {
    vertices: usize,
    measured_conns: usize,
    ops_per_conn: usize,
    chaos_conns: usize,
    chaos_ops: usize,
    kill_writers: usize,
}

fn shape(scale: Scale) -> LoadShape {
    match scale {
        Scale::Tiny => LoadShape {
            vertices: 20_000,
            measured_conns: 16,
            ops_per_conn: 120,
            chaos_conns: 12,
            chaos_ops: 40,
            kill_writers: 8,
        },
        Scale::Bench => LoadShape {
            vertices: 200_000,
            measured_conns: 200,
            ops_per_conn: 250,
            chaos_conns: 64,
            chaos_ops: 60,
            kill_writers: 24,
        },
        Scale::Large => LoadShape {
            vertices: 1_000_000,
            measured_conns: 400,
            ops_per_conn: 400,
            chaos_conns: 128,
            chaos_ops: 80,
            kill_writers: 48,
        },
    }
}

struct ServerHandle {
    child: Child,
    addr: String,
    _stdout_drain: std::thread::JoinHandle<()>,
}

/// Spawns `ecl-cc serve`, parses the `listening on ADDR` line, and
/// pipes the rest of its output to `log`.
fn spawn_server(bin: &Path, dir: &Path, log: &Path, resume: bool, vertices: usize) -> ServerHandle {
    let log_file = std::fs::File::create(log).expect("create server log");
    let stderr_file = log_file.try_clone().expect("clone log handle");
    let mut cmd = Command::new(bin);
    cmd.arg("serve")
        .arg("--dir")
        .arg(dir)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--vertices")
        .arg(vertices.to_string())
        .arg("--max-conns")
        .arg("2048")
        .arg("--idle-timeout-ms")
        .arg("5000")
        .arg("--snapshot-every")
        .arg("500")
        .stdout(Stdio::piped())
        .stderr(Stdio::from(stderr_file));
    if resume {
        cmd.arg("--resume");
    }
    let mut child = cmd.spawn().expect("spawn ecl-cc serve");
    let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
        .to_string();
    // Drain the remaining stdout into the log so the pipe never fills.
    let mut log_file = log_file;
    let drain = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        while let Ok(n) = reader.read(&mut buf) {
            if n == 0 {
                break;
            }
            let _ = log_file.write_all(&buf[..n]);
        }
    });
    ServerHandle {
        child,
        addr,
        _stdout_drain: drain,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn count_panics_in_log(path: &Path) -> u64 {
    match std::fs::read_to_string(path) {
        Ok(text) => text
            .lines()
            .filter(|l| l.contains("panicked at") || l.contains("thread panicked"))
            .count() as u64,
        Err(_) => 0,
    }
}

/// Phase 1: well-behaved measured load. Returns (latencies_ms,
/// acked_edges, protocol_errors, elapsed).
#[allow(clippy::type_complexity)]
fn measured_load(
    addr: &str,
    shp: &LoadShape,
    seed: u64,
) -> (Vec<f64>, Vec<(u32, u32)>, u64, Duration) {
    let latencies: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
    let acked: Arc<Mutex<Vec<(u32, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let errors = Arc::new(Mutex::new(0u64));
    let start = Instant::now();
    let threads: Vec<_> = (0..shp.measured_conns)
        .map(|t| {
            let addr = addr.to_string();
            let latencies = Arc::clone(&latencies);
            let acked = Arc::clone(&acked);
            let errors = Arc::clone(&errors);
            let n = shp.vertices as u32;
            let ops = shp.ops_per_conn;
            std::thread::spawn(move || {
                let mut rng = FaultRng::new(seed, t as u64);
                let Ok(mut c) = Client::connect(&addr) else {
                    *errors.lock().unwrap() += ops as u64;
                    return;
                };
                if !c.accepted() {
                    *errors.lock().unwrap() += ops as u64;
                    return;
                }
                let mut local_lat = Vec::with_capacity(ops);
                let mut local_acked = Vec::new();
                for _ in 0..ops {
                    let u = rng.below(n as u64) as u32;
                    let v = rng.below(n as u64) as u32;
                    let roll = rng.below(100);
                    let req = match roll {
                        0..=39 => format!("ADD {u} {v}"),
                        40..=69 => format!("CONN {u} {v}"),
                        70..=84 => format!("COMP {u}"),
                        85..=94 => "STATS".to_string(),
                        _ => "PING".to_string(),
                    };
                    let t0 = Instant::now();
                    match c.request(&req) {
                        Ok(resp) => {
                            local_lat.push(t0.elapsed().as_secs_f64() * 1e3);
                            if resp.starts_with("OK") {
                                if roll <= 39 {
                                    local_acked.push((u, v));
                                }
                            } else {
                                *errors.lock().unwrap() += 1;
                            }
                        }
                        Err(_) => {
                            *errors.lock().unwrap() += 1;
                            return;
                        }
                    }
                }
                let _ = c.request("QUIT");
                latencies.lock().unwrap().extend(local_lat);
                acked.lock().unwrap().extend(local_acked);
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
    let elapsed = start.elapsed();
    let lat = Arc::try_unwrap(latencies).unwrap().into_inner().unwrap();
    let ack = Arc::try_unwrap(acked).unwrap().into_inner().unwrap();
    let errs = *errors.lock().unwrap();
    (lat, ack, errs, elapsed)
}

/// Phase 2: seeded chaos clients. Returns the number of structured ERR
/// responses observed (expected to be > 0 — that's the point).
fn chaos_wave(addr: &str, shp: &LoadShape, plan: FaultPlan) -> u64 {
    let errs = Arc::new(Mutex::new(0u64));
    let threads: Vec<_> = (0..shp.chaos_conns)
        .map(|t| {
            let addr = addr.to_string();
            let errs = Arc::clone(&errs);
            let ops = shp.chaos_ops;
            let n = shp.vertices as u32;
            std::thread::spawn(move || {
                let mut rng = FaultRng::new(plan.seed, 0xc0a0 ^ t as u64);
                let Ok(mut c) = Client::connect(&addr) else {
                    return;
                };
                for _ in 0..ops {
                    if plan.disconnect_permille > 0 && rng.chance(plan.disconnect_permille) {
                        // Abrupt mid-stream disconnect; reconnect after.
                        let _ = c.send_raw(b"ADD 1");
                        drop(c);
                        match Client::connect(&addr) {
                            Ok(nc) => c = nc,
                            Err(_) => return,
                        }
                        continue;
                    }
                    if plan.frame_truncate_permille > 0 && rng.chance(plan.frame_truncate_permille)
                    {
                        // Half-written frame... finished later with
                        // garbage: the server must answer ERR, not die.
                        if c.send_raw(b"ADD 3").is_err() {
                            return;
                        }
                        if plan.stall_permille > 0 && rng.chance(plan.stall_permille) {
                            std::thread::sleep(Duration::from_millis(50));
                        }
                        if c.send_raw(b"x 9\n").is_err() {
                            return;
                        }
                        match c.read_line() {
                            Ok(resp) if resp.starts_with("ERR") => *errs.lock().unwrap() += 1,
                            Ok(_) => {}
                            Err(_) => return,
                        }
                        continue;
                    }
                    // Malformed / oversized / valid mix.
                    let req = match rng.below(5) {
                        0 => "FROB 1 2".to_string(),
                        1 => format!("ADD {} {}", u64::from(n) * 2, 0),
                        2 => format!("ADD {}", "9".repeat(1500)),
                        3 => format!("CONN {} {}", rng.below(n as u64), rng.below(n as u64)),
                        _ => format!("ADD {} {}", rng.below(n as u64), rng.below(n as u64)),
                    };
                    match c.request(&req) {
                        Ok(resp) if resp.starts_with("ERR") => *errs.lock().unwrap() += 1,
                        Ok(_) => {}
                        Err(_) => return,
                    }
                }
            })
        })
        .collect();
    for t in threads {
        let _ = t.join();
    }
    let count = *errs.lock().unwrap();
    count
}

/// Phase 3: writers stream edges until the server dies under them.
/// Returns every edge that was acknowledged before the kill.
fn kill_load(addr: &str, shp: &LoadShape, seed: u64, server: &mut Child) -> Vec<(u32, u32)> {
    let acked: Arc<Mutex<Vec<(u32, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let threads: Vec<_> = (0..shp.kill_writers)
        .map(|t| {
            let addr = addr.to_string();
            let acked = Arc::clone(&acked);
            let n = shp.vertices as u32;
            std::thread::spawn(move || {
                let mut rng = FaultRng::new(seed ^ 0xdead, t as u64);
                let Ok(mut c) = Client::connect(&addr) else {
                    return;
                };
                let mut local = Vec::new();
                loop {
                    let u = rng.below(n as u64) as u32;
                    let v = rng.below(n as u64) as u32;
                    match c.request(&format!("ADD {u} {v}")) {
                        Ok(resp) if resp.starts_with("OK") => local.push((u, v)),
                        Ok(_) => {}
                        // Server killed: stop, keep what was acked.
                        Err(_) => break,
                    }
                }
                acked.lock().unwrap().extend(local);
            })
        })
        .collect();
    // Let the writers build up momentum, then SIGKILL mid-load.
    std::thread::sleep(Duration::from_millis(1500));
    let _ = server.kill();
    let _ = server.wait();
    for t in threads {
        let _ = t.join();
    }
    Arc::try_unwrap(acked).unwrap().into_inner().unwrap()
}

/// Verifies every acknowledged edge on a (resumed) server. Returns the
/// number of failures (0 = all recovered).
fn verify_acked(addr: &str, acked: &[(u32, u32)]) -> u64 {
    let mut failures = 0u64;
    let mut c = match Client::connect(addr) {
        Ok(c) if c.accepted() => c,
        _ => return acked.len() as u64,
    };
    for &(u, v) in acked {
        match c.request(&format!("CONN {u} {v}")) {
            Ok(resp) if resp == "OK true" => {}
            _ => failures += 1,
        }
    }
    failures
}

/// Runs the whole experiment and writes the summary JSON. Exits
/// nonzero on infrastructure failure; verification results land in the
/// JSON (CI greps them).
pub fn serve_load(scale: Scale, plan: FaultPlan, json_path: &str) {
    let shp = shape(scale);
    let bin = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("exe dir")
        .join(format!("ecl-cc{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        eprintln!(
            "serve: {} not found — build the workspace first (cargo build --release)",
            bin.display()
        );
        std::process::exit(1);
    }
    let dir: PathBuf = std::env::temp_dir().join(format!("ecl_serve_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create harness dir");
    let state_dir = dir.join("state");
    let log1 = dir.join("server-1.log");
    let log2 = dir.join("server-2.log");

    println!("\n### serve: load + chaos + kill/resume (scale {scale:?})\n");
    println!(
        "fault plan: seed={} truncate={} stall={} disc={} (permille)",
        plan.seed, plan.frame_truncate_permille, plan.stall_permille, plan.disconnect_permille
    );

    let mut server = spawn_server(&bin, &state_dir, &log1, false, shp.vertices);
    println!(
        "server 1 up at {} (state in {})",
        server.addr,
        state_dir.display()
    );

    // Phase 1: measured load.
    let (mut lat, mut all_acked, proto_errors, elapsed) =
        measured_load(&server.addr, &shp, plan.seed);
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let qps = lat.len() as f64 / elapsed.as_secs_f64();
    let (p50, p90, p99, pmax) = (
        percentile(&lat, 50.0),
        percentile(&lat, 90.0),
        percentile(&lat, 99.0),
        lat.last().copied().unwrap_or(f64::NAN),
    );
    println!(
        "measured: {} conns x {} ops -> {} responses, {qps:.0} req/s, \
         p50 {p50:.3} ms, p90 {p90:.3} ms, p99 {p99:.3} ms, max {pmax:.3} ms, \
         {proto_errors} transport/protocol errors",
        shp.measured_conns,
        shp.ops_per_conn,
        lat.len(),
    );

    // Phase 2: chaos wave, then prove the server still answers.
    let chaos_errs = chaos_wave(&server.addr, &shp, plan);
    let alive = Client::connect(&server.addr)
        .ok()
        .filter(|c| c.accepted())
        .map(|mut c| c.request("PING").ok() == Some("OK pong".to_string()))
        .unwrap_or(false);
    println!(
        "chaos: {} clients x {} ops, {chaos_errs} structured ERR replies, \
         server alive after: {alive}",
        shp.chaos_conns, shp.chaos_ops
    );

    // Phase 3: SIGKILL mid-load, resume, verify every acked edge.
    let killed_acked = kill_load(&server.addr, &shp, plan.seed, &mut server.child);
    println!(
        "killed server mid-load: {} edges acked by writers before the kill",
        killed_acked.len()
    );
    all_acked.extend(killed_acked);

    let resumed = spawn_server(&bin, &state_dir, &log2, true, shp.vertices);
    println!("server 2 resumed at {}", resumed.addr);
    let resume_failures = verify_acked(&resumed.addr, &all_acked);
    let resume_verified = resume_failures == 0 && alive;
    println!(
        "resume verification: {} acked edges checked, {resume_failures} missing",
        all_acked.len()
    );

    // Graceful drain of the resumed server; it must exit 0.
    let clean_exit = match Client::connect(&resumed.addr) {
        Ok(mut c) if c.accepted() => {
            let _ = c.request("SHUTDOWN");
            let mut child = resumed.child;
            let mut waited = 0u64;
            loop {
                match child.try_wait() {
                    Ok(Some(status)) => break status.success(),
                    Ok(None) if waited < 30_000 => {
                        std::thread::sleep(Duration::from_millis(100));
                        waited += 100;
                    }
                    _ => {
                        let _ = child.kill();
                        break false;
                    }
                }
            }
        }
        _ => false,
    };
    let server_panics = count_panics_in_log(&log1) + count_panics_in_log(&log2);
    println!("clean drain: {clean_exit}, server panics in logs: {server_panics}");

    let json = Obj::new()
        .str("experiment", "serve")
        .str("scale", &format!("{scale:?}").to_lowercase())
        .u64("vertices", shp.vertices as u64)
        .u64("measured_conns", shp.measured_conns as u64)
        .u64("ops_per_conn", shp.ops_per_conn as u64)
        .u64("responses", lat.len() as u64)
        .f64("qps", qps)
        .f64("p50_ms", p50)
        .f64("p90_ms", p90)
        .f64("p99_ms", p99)
        .f64("max_ms", pmax)
        .u64("protocol_errors", proto_errors)
        .u64("chaos_conns", shp.chaos_conns as u64)
        .u64("chaos_err_replies", chaos_errs)
        .bool("alive_after_chaos", alive)
        .u64("acked_edges", all_acked.len() as u64)
        .u64("resume_failures", resume_failures)
        .bool("resume_verified", resume_verified)
        .bool("clean_drain", clean_exit)
        .u64("server_panics", server_panics)
        .u64("fault_seed", plan.seed)
        .build();
    std::fs::write(json_path, format!("{json}\n")).expect("write serve summary");
    println!("\nwrote serve summary to {json_path}");

    if !resume_verified || server_panics > 0 || !clean_exit {
        eprintln!("serve: FAILED (resume_verified={resume_verified}, panics={server_panics}, clean_drain={clean_exit})");
        std::process::exit(1);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
