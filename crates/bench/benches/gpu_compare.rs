//! Benches for Tables 5/6 (Figs. 11/12): the five GPU codes on
//! both device profiles. Host time to simulate tracks simulated cycles,
//! so the ratios reproduce the paper's relative runtimes.

use ecl_bench::microbench::Group;
use ecl_bench::quick_graphs;
use ecl_bench::runners::GPU_CODES;
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::catalog::Scale;
use std::hint::black_box;

fn bench_gpu_codes(profile: DeviceProfile, group_name: &str) {
    let group = Group::new(group_name);
    for (gname, g) in quick_graphs(Scale::Tiny) {
        for (cname, runner) in GPU_CODES {
            group.bench(&format!("{cname}/{gname}"), || {
                let mut gpu = Gpu::new(profile.clone());
                black_box(runner(&mut gpu, &g).1);
            });
        }
    }
}

fn main() {
    bench_gpu_codes(DeviceProfile::titan_x(), "table5_titan_x");
    bench_gpu_codes(DeviceProfile::k40(), "table6_k40");
}
