//! Criterion benches for Tables 5/6 (Figs. 11/12): the five GPU codes on
//! both device profiles. Host time to simulate tracks simulated cycles,
//! so the Criterion ratios reproduce the paper's relative runtimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_bench::quick_graphs;
use ecl_bench::runners::GPU_CODES;
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::catalog::Scale;
use std::hint::black_box;

fn bench_gpu_codes(c: &mut Criterion, profile: DeviceProfile, group_name: &str) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (gname, g) in quick_graphs(Scale::Tiny) {
        for (cname, runner) in GPU_CODES {
            group.bench_with_input(BenchmarkId::new(cname, gname), &g, |b, g| {
                b.iter(|| {
                    let mut gpu = Gpu::new(profile.clone());
                    black_box(runner(&mut gpu, g).1)
                });
            });
        }
    }
    group.finish();
}

fn titan(c: &mut Criterion) {
    bench_gpu_codes(c, DeviceProfile::titan_x(), "table5_titan_x");
}

fn k40(c: &mut Criterion) {
    bench_gpu_codes(c, DeviceProfile::k40(), "table6_k40");
}

criterion_group!(benches, titan, k40);
criterion_main!(benches);
