//! Benches for Tables 9/10 (Figs. 15/16): the five serial CPU
//! codes. One host stands in for both of the paper's machines (the
//! comparison is between the *codes*, which is host-independent).

use ecl_bench::microbench::Group;
use ecl_bench::quick_graphs;
use ecl_bench::runners::SERIAL_CODES;
use ecl_graph::catalog::Scale;
use std::hint::black_box;

fn main() {
    let group = Group::new("table9_serial");
    for (gname, g) in quick_graphs(Scale::Tiny) {
        for (cname, runner) in SERIAL_CODES {
            group.bench(&format!("{cname}/{gname}"), || {
                black_box(runner(&g));
            });
        }
    }
}
