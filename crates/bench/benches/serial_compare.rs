//! Criterion benches for Tables 9/10 (Figs. 15/16): the five serial CPU
//! codes. One host stands in for both of the paper's machines (the
//! comparison is between the *codes*, which is host-independent).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_bench::quick_graphs;
use ecl_bench::runners::SERIAL_CODES;
use ecl_graph::catalog::Scale;
use std::hint::black_box;

fn bench_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("table9_serial");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (gname, g) in quick_graphs(Scale::Tiny) {
        for (cname, runner) in SERIAL_CODES {
            group.bench_with_input(BenchmarkId::new(cname, gname), &g, |b, g| {
                b.iter(|| black_box(runner(g)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_serial);
criterion_main!(benches);
