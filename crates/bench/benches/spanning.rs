//! Benches for the spanning-forest extension (the paper's conclusion:
//! "[intermediate pointer jumping] should be able to accelerate other GPU
//! algorithms that are based on union find, such as Kruskal's algorithm").
//!
//! Two sweeps test that prediction directly:
//! * Kruskal with each sequential compression strategy,
//! * GPU Borůvka with each pointer-jumping variant inside its finds.

use ecl_bench::microbench::Group;
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::catalog::{PaperGraph, Scale};
use ecl_unionfind::concurrent::JumpKind;
use ecl_unionfind::Compression;
use std::hint::black_box;

fn bench_kruskal_compression() {
    let group = Group::new("kruskal_compression");
    for pg in [PaperGraph::EuropeOsm, PaperGraph::Rmat16] {
        let g = pg.generate(Scale::Tiny);
        let name = pg.info().name;
        for (vname, comp) in [
            ("none", Compression::None),
            ("full", Compression::Full),
            ("halving", Compression::Halving),
            ("splitting", Compression::Splitting),
        ] {
            group.bench(&format!("{vname}/{name}"), || {
                black_box(ecl_spanning::kruskal::run(&g, comp));
            });
        }
    }
}

fn bench_gpu_boruvka_jumps() {
    let group = Group::new("gpu_boruvka_jump");
    let g = PaperGraph::EuropeOsm.generate(Scale::Tiny);
    for (vname, jump) in [
        ("jump1_multiple", JumpKind::Multiple),
        ("jump2_single", JumpKind::Single),
        ("jump3_none", JumpKind::None),
        ("jump4_intermediate", JumpKind::Intermediate),
    ] {
        group.bench(vname, || {
            let mut gpu = Gpu::new(DeviceProfile::titan_x());
            black_box(ecl_spanning::gpu_boruvka::run(&mut gpu, &g, jump));
        });
    }
}

fn bench_boruvka_vs_kruskal() {
    let group = Group::new("msf_algorithms");
    let g = PaperGraph::Random4.generate(Scale::Tiny);
    group.bench("kruskal_halving", || {
        black_box(ecl_spanning::kruskal::run(&g, Compression::Halving));
    });
    group.bench("boruvka_par4", || {
        black_box(ecl_spanning::boruvka::run(&g, 4));
    });
}

fn main() {
    bench_kruskal_compression();
    bench_gpu_boruvka_jumps();
    bench_boruvka_vs_kruskal();
}
