//! Benches for the spanning-forest extension (the paper's conclusion:
//! "[intermediate pointer jumping] should be able to accelerate other GPU
//! algorithms that are based on union find, such as Kruskal's algorithm").
//!
//! Two sweeps test that prediction directly:
//! * Kruskal with each sequential compression strategy,
//! * GPU Borůvka with each pointer-jumping variant inside its finds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::catalog::{PaperGraph, Scale};
use ecl_unionfind::concurrent::JumpKind;
use ecl_unionfind::Compression;
use std::hint::black_box;

fn bench_kruskal_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("kruskal_compression");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for pg in [PaperGraph::EuropeOsm, PaperGraph::Rmat16] {
        let g = pg.generate(Scale::Tiny);
        let name = pg.info().name;
        for (vname, comp) in [
            ("none", Compression::None),
            ("full", Compression::Full),
            ("halving", Compression::Halving),
            ("splitting", Compression::Splitting),
        ] {
            group.bench_with_input(BenchmarkId::new(vname, name), &g, |b, g| {
                b.iter(|| black_box(ecl_spanning::kruskal::run(g, comp)));
            });
        }
    }
    group.finish();
}

fn bench_gpu_boruvka_jumps(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_boruvka_jump");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = PaperGraph::EuropeOsm.generate(Scale::Tiny);
    for (vname, jump) in [
        ("jump1_multiple", JumpKind::Multiple),
        ("jump2_single", JumpKind::Single),
        ("jump3_none", JumpKind::None),
        ("jump4_intermediate", JumpKind::Intermediate),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(vname), &g, |b, g| {
            b.iter(|| {
                let mut gpu = Gpu::new(DeviceProfile::titan_x());
                black_box(ecl_spanning::gpu_boruvka::run(&mut gpu, g, jump))
            });
        });
    }
    group.finish();
}

fn bench_boruvka_vs_kruskal(c: &mut Criterion) {
    let mut group = c.benchmark_group("msf_algorithms");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = PaperGraph::Random4.generate(Scale::Tiny);
    group.bench_function("kruskal_halving", |b| {
        b.iter(|| black_box(ecl_spanning::kruskal::run(&g, Compression::Halving)));
    });
    group.bench_function("boruvka_par4", |b| {
        b.iter(|| black_box(ecl_spanning::boruvka::run(&g, 4)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kruskal_compression,
    bench_gpu_boruvka_jumps,
    bench_boruvka_vs_kruskal
);
criterion_main!(benches);
