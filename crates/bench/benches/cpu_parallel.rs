//! Criterion benches for Tables 7/8 (Figs. 13/14): the seven parallel CPU
//! codes, at the two thread counts standing in for the paper's two hosts
//! (dual 10-core E5-2687W with HT → "40"; dual 6-core X5690 → "12";
//! clamped to what this machine offers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_bench::quick_graphs;
use ecl_bench::runners::CPU_PAR_CODES;
use ecl_graph::catalog::Scale;
use std::hint::black_box;

fn bench_at(c: &mut Criterion, threads: usize, group_name: &str) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (gname, g) in quick_graphs(Scale::Tiny) {
        for (cname, runner) in CPU_PAR_CODES {
            if runner(&g, threads).is_none() {
                continue; // CRONO n/a
            }
            group.bench_with_input(BenchmarkId::new(cname, gname), &g, |b, g| {
                b.iter(|| black_box(runner(g, threads)));
            });
        }
    }
    group.finish();
}

fn table7(c: &mut Criterion) {
    let t = ecl_parallel::default_threads().max(8);
    bench_at(c, t, "table7_e5_2687w");
}

fn table8(c: &mut Criterion) {
    let t = (ecl_parallel::default_threads().max(8) / 3).max(2);
    bench_at(c, t, "table8_x5690");
}

criterion_group!(benches, table7, table8);
criterion_main!(benches);
