//! Benches for Tables 7/8 (Figs. 13/14): the seven parallel CPU
//! codes, at the two thread counts standing in for the paper's two hosts
//! (dual 10-core E5-2687W with HT → "40"; dual 6-core X5690 → "12";
//! clamped to what this machine offers).

use ecl_bench::microbench::Group;
use ecl_bench::quick_graphs;
use ecl_bench::runners::CPU_PAR_CODES;
use ecl_graph::catalog::Scale;
use std::hint::black_box;

fn bench_at(threads: usize, group_name: &str) {
    let group = Group::new(group_name);
    for (gname, g) in quick_graphs(Scale::Tiny) {
        for (cname, runner) in CPU_PAR_CODES {
            if runner(&g, threads).is_none() {
                continue; // CRONO n/a
            }
            group.bench(&format!("{cname}/{gname}"), || {
                black_box(runner(&g, threads));
            });
        }
    }
}

fn main() {
    let t_big = ecl_parallel::default_threads().max(8);
    let t_small = (t_big / 3).max(2);
    bench_at(t_big, "table7_e5_2687w");
    bench_at(t_small, "table8_x5690");
}
