//! Criterion benches for the paper's §5.1 internal ablations:
//! Fig. 7 (Init1/2/3), Fig. 8 (Jump1/2/3/4), Fig. 9 (Fini1/2/3) — plus
//! the two ablations DESIGN.md adds beyond the paper: the degree-bucket
//! thresholds of the three compute kernels and the OpenMP-port loop
//! schedule.
//!
//! The measured quantity is host time to *simulate* the GPU run; since
//! the simulated cycle count is deterministic and dominates host time,
//! relative Criterion numbers track the relative simulated runtimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecl_bench::quick_graphs;
use ecl_cc::{EclConfig, FiniKind, InitKind, JumpKind};
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::catalog::Scale;
use std::hint::black_box;

fn bench_init_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_init");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (name, g) in quick_graphs(Scale::Tiny) {
        for (vname, init) in [
            ("init1", InitKind::VertexId),
            ("init2", InitKind::MinNeighbor),
            ("init3", InitKind::FirstSmaller),
        ] {
            group.bench_with_input(BenchmarkId::new(vname, name), &g, |b, g| {
                let cfg = EclConfig::with_init(init);
                b.iter(|| {
                    let mut gpu = Gpu::new(DeviceProfile::titan_x());
                    black_box(ecl_cc::gpu::run(&mut gpu, g, &cfg).1.total_cycles())
                });
            });
        }
    }
    group.finish();
}

fn bench_jump_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_jump");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (name, g) in quick_graphs(Scale::Tiny) {
        for (vname, jump) in [
            ("jump1", JumpKind::Multiple),
            ("jump2", JumpKind::Single),
            ("jump3", JumpKind::None),
            ("jump4", JumpKind::Intermediate),
        ] {
            group.bench_with_input(BenchmarkId::new(vname, name), &g, |b, g| {
                let cfg = EclConfig::with_jump(jump);
                b.iter(|| {
                    let mut gpu = Gpu::new(DeviceProfile::titan_x());
                    black_box(ecl_cc::gpu::run(&mut gpu, g, &cfg).1.total_cycles())
                });
            });
        }
    }
    group.finish();
}

fn bench_fini_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fini");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    for (name, g) in quick_graphs(Scale::Tiny) {
        for (vname, fini) in [
            ("fini1", FiniKind::Intermediate),
            ("fini2", FiniKind::Multiple),
            ("fini3", FiniKind::Single),
        ] {
            group.bench_with_input(BenchmarkId::new(vname, name), &g, |b, g| {
                let cfg = EclConfig::with_fini(fini);
                b.iter(|| {
                    let mut gpu = Gpu::new(DeviceProfile::titan_x());
                    black_box(ecl_cc::gpu::run(&mut gpu, g, &cfg).1.total_cycles())
                });
            });
        }
    }
    group.finish();
}

/// Beyond the paper: sweep the degree thresholds that route vertices into
/// the warp- and block-granularity kernels (the paper fixes 16/352 and
/// notes "varying them by quite a bit does not significantly affect the
/// performance" — this bench regenerates that claim).
fn bench_threshold_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_thresholds");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = ecl_graph::catalog::PaperGraph::Kron21.generate(Scale::Tiny);
    for (wt, bt) in [(4, 64), (16, 352), (64, 1024)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{wt}_{bt}")), &g, |b, g| {
            let cfg = EclConfig {
                warp_threshold: wt,
                block_threshold: bt,
                ..Default::default()
            };
            b.iter(|| {
                let mut gpu = Gpu::new(DeviceProfile::titan_x());
                black_box(ecl_cc::gpu::run(&mut gpu, g, &cfg).1.total_cycles())
            });
        });
    }
    group.finish();
}

/// Beyond the paper: the OpenMP port's loop schedule (the paper uses
/// guided; static loses on skewed degree distributions).
fn bench_schedule_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_schedules");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(800));
    let g = ecl_graph::catalog::PaperGraph::Kron21.generate(Scale::Tiny);
    let threads = 4;
    for (name, schedule) in [
        ("static", ecl_parallel::Schedule::Static),
        ("dynamic64", ecl_parallel::Schedule::Dynamic { chunk: 64 }),
        ("guided", ecl_parallel::Schedule::GUIDED),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &g, |b, g| {
            b.iter(|| {
                black_box(ecl_cc::parallel::run_with_schedule(
                    g,
                    threads,
                    schedule,
                    &EclConfig::default(),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_init_variants,
    bench_jump_variants,
    bench_fini_variants,
    bench_threshold_sweep,
    bench_schedule_sweep
);
criterion_main!(benches);
