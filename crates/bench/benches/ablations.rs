//! Benches for the paper's §5.1 internal ablations:
//! Fig. 7 (Init1/2/3), Fig. 8 (Jump1/2/3/4), Fig. 9 (Fini1/2/3) — plus
//! the two ablations DESIGN.md adds beyond the paper: the degree-bucket
//! thresholds of the three compute kernels and the OpenMP-port loop
//! schedule.
//!
//! The measured quantity is host time to *simulate* the GPU run; since
//! the simulated cycle count is deterministic and dominates host time,
//! relative numbers track the relative simulated runtimes.

use ecl_bench::microbench::Group;
use ecl_bench::quick_graphs;
use ecl_cc::{EclConfig, FiniKind, InitKind, JumpKind};
use ecl_gpu_sim::{DeviceProfile, Gpu};
use ecl_graph::catalog::Scale;
use std::hint::black_box;

fn bench_init_variants() {
    let group = Group::new("fig7_init");
    for (name, g) in quick_graphs(Scale::Tiny) {
        for (vname, init) in [
            ("init1", InitKind::VertexId),
            ("init2", InitKind::MinNeighbor),
            ("init3", InitKind::FirstSmaller),
        ] {
            let cfg = EclConfig::with_init(init);
            group.bench(&format!("{vname}/{name}"), || {
                let mut gpu = Gpu::new(DeviceProfile::titan_x());
                black_box(ecl_cc::gpu::run(&mut gpu, &g, &cfg).1.total_cycles());
            });
        }
    }
}

fn bench_jump_variants() {
    let group = Group::new("fig8_jump");
    for (name, g) in quick_graphs(Scale::Tiny) {
        for (vname, jump) in [
            ("jump1", JumpKind::Multiple),
            ("jump2", JumpKind::Single),
            ("jump3", JumpKind::None),
            ("jump4", JumpKind::Intermediate),
        ] {
            let cfg = EclConfig::with_jump(jump);
            group.bench(&format!("{vname}/{name}"), || {
                let mut gpu = Gpu::new(DeviceProfile::titan_x());
                black_box(ecl_cc::gpu::run(&mut gpu, &g, &cfg).1.total_cycles());
            });
        }
    }
}

fn bench_fini_variants() {
    let group = Group::new("fig9_fini");
    for (name, g) in quick_graphs(Scale::Tiny) {
        for (vname, fini) in [
            ("fini1", FiniKind::Intermediate),
            ("fini2", FiniKind::Multiple),
            ("fini3", FiniKind::Single),
        ] {
            let cfg = EclConfig::with_fini(fini);
            group.bench(&format!("{vname}/{name}"), || {
                let mut gpu = Gpu::new(DeviceProfile::titan_x());
                black_box(ecl_cc::gpu::run(&mut gpu, &g, &cfg).1.total_cycles());
            });
        }
    }
}

/// Beyond the paper: sweep the degree thresholds that route vertices into
/// the warp- and block-granularity kernels (the paper fixes 16/352 and
/// notes "varying them by quite a bit does not significantly affect the
/// performance" — this bench regenerates that claim).
fn bench_threshold_sweep() {
    let group = Group::new("ablation_thresholds");
    let g = ecl_graph::catalog::PaperGraph::Kron21.generate(Scale::Tiny);
    for (wt, bt) in [(4, 64), (16, 352), (64, 1024)] {
        let cfg = EclConfig {
            warp_threshold: wt,
            block_threshold: bt,
            ..Default::default()
        };
        group.bench(&format!("{wt}_{bt}"), || {
            let mut gpu = Gpu::new(DeviceProfile::titan_x());
            black_box(ecl_cc::gpu::run(&mut gpu, &g, &cfg).1.total_cycles());
        });
    }
}

/// Beyond the paper: the OpenMP port's loop schedule (the paper uses
/// guided; static loses on skewed degree distributions).
fn bench_schedule_sweep() {
    let group = Group::new("ablation_schedules");
    let g = ecl_graph::catalog::PaperGraph::Kron21.generate(Scale::Tiny);
    let threads = 4;
    for (name, schedule) in [
        ("static", ecl_parallel::Schedule::Static),
        ("dynamic64", ecl_parallel::Schedule::Dynamic { chunk: 64 }),
        ("guided", ecl_parallel::Schedule::GUIDED),
    ] {
        group.bench(name, || {
            black_box(ecl_cc::parallel::run_with_schedule(
                &g,
                threads,
                schedule,
                &EclConfig::default(),
            ));
        });
    }
}

fn main() {
    bench_init_variants();
    bench_jump_variants();
    bench_fini_variants();
    bench_threshold_sweep();
    bench_schedule_sweep();
}
