//! Fault-tolerant batch job engine for certified connected-components
//! runs.
//!
//! The rest of the workspace answers "run CC on *one* graph and prove
//! the answer" — the ladder in [`ecl_cc::ladder`] already degrades
//! gracefully when the simulated GPU misbehaves. This crate answers the
//! operational question one level up: run *hundreds* of CC jobs through
//! that ladder, on a machine that can lose its GPU mid-batch and a
//! process that can be `SIGKILL`ed mid-write, without losing work or
//! producing a byte of uncertified output.
//!
//! The moving parts, each in its own module:
//!
//! * [`queue`] — bounded MPMC job queue: backpressure by default,
//!   reject-with-[`QueueFull`](ecl_cc::EclError::QueueFull) admission
//!   control on request.
//! * [`backoff`] — deterministic seeded exponential backoff with equal
//!   jitter between retry rounds; reproducible per `(seed, job,
//!   attempt)` so batch runs replay exactly.
//! * [`breaker`] — per-backend circuit breakers
//!   (closed → open → half-open); a persistently failing GPU is skipped
//!   after a few trips and probed back in with the simulator's health
//!   probe, while jobs keep flowing down the CPU rungs.
//! * [`journal`] — crash-safe progress: an fsync'd append-only journal
//!   plus write-temp-then-rename result files, so a killed batch resumes
//!   from its last completed job and produces byte-identical results.
//! * [`spec`] — jobs-file parsing and deterministic graph specs.
//! * [`engine`] — the worker pool tying it all together.
//! * [`report`] — machine-readable batch report (hand-rolled JSON, like
//!   the bench harness: the workspace builds offline and std-only).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod breaker;
pub mod engine;
pub mod journal;
pub mod queue;
pub mod report;
pub mod spec;

pub use backoff::BackoffPolicy;
pub use breaker::{Admission, BreakerConfig, BreakerState};
pub use engine::{labels_to_bytes, run_batch, EngineConfig};
pub use report::{BatchReport, JobReport, JobStatus};
pub use spec::{parse_jobs, GraphSpec, JobSpec};
