//! Batch job specifications.
//!
//! A batch is described by a *jobs file*: one job per line, `<name>
//! <graph-spec>`, `#` comments and blank lines ignored. Graph specs are
//! colon-separated generator invocations (deterministic, so a resumed
//! run rebuilds byte-identical inputs) or `file:<path>` for on-disk
//! graphs:
//!
//! ```text
//! # name      spec
//! ring        cycle:5000
//! social      rmat:12:8:7
//! random-a    gnm:20000:60000:1
//! roads       file:data/usa.gr
//! ```
//!
//! Job ids are line-order indices, which is what makes them stable
//! across the original run and any number of resumes of the same file
//! (the journal additionally pins a digest of the parsed job list, so a
//! *changed* jobs file is rejected instead of silently misinterpreted).

use crate::journal::fnv1a;
use ecl_graph::{generate, io, CsrGraph};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a job's input graph is obtained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphSpec {
    /// `path:N` — path graph.
    Path(usize),
    /// `cycle:N` — cycle graph.
    Cycle(usize),
    /// `star:N` — star graph (exercises the block-granularity kernel).
    Star(usize),
    /// `complete:N` — complete graph.
    Complete(usize),
    /// `grid:W:H` — 2-D grid.
    Grid(usize, usize),
    /// `cliques:K:SIZE` — K disjoint cliques.
    Cliques(usize, usize),
    /// `gnm:N:M:SEED` — uniform random graph.
    Gnm(usize, usize, u64),
    /// `rmat:SCALE:DEG:SEED` — RMAT with the Galois parameters.
    Rmat(u32, usize, u64),
    /// `kronecker:SCALE:DEG:SEED` — Kronecker graph.
    Kronecker(u32, usize, u64),
    /// `file:PATH` — read from disk (format by extension:
    /// `.el`/`.txt` edge list, `.gr` DIMACS, `.mtx` Matrix Market,
    /// `.ecl` binary, `.sgr`/`.vgr` Galois).
    File(PathBuf),
}

impl GraphSpec {
    /// Parses a colon-separated spec string.
    pub fn parse(spec: &str) -> Result<GraphSpec, String> {
        let mut parts = spec.split(':');
        let kind = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        let usize_arg = |i: usize| -> Result<usize, String> {
            rest.get(i)
                .ok_or_else(|| format!("spec '{spec}': missing argument {}", i + 1))?
                .parse()
                .map_err(|e| format!("spec '{spec}': argument {}: {e}", i + 1))
        };
        let u64_arg = |i: usize| -> Result<u64, String> {
            rest.get(i)
                .ok_or_else(|| format!("spec '{spec}': missing argument {}", i + 1))?
                .parse()
                .map_err(|e| format!("spec '{spec}': argument {}: {e}", i + 1))
        };
        let arity = |n: usize| -> Result<(), String> {
            if rest.len() == n {
                Ok(())
            } else {
                Err(format!(
                    "spec '{spec}': {kind} takes {n} argument(s), got {}",
                    rest.len()
                ))
            }
        };
        match kind {
            "path" => arity(1).and(Ok(GraphSpec::Path(usize_arg(0)?))),
            "cycle" => arity(1).and(Ok(GraphSpec::Cycle(usize_arg(0)?))),
            "star" => arity(1).and(Ok(GraphSpec::Star(usize_arg(0)?))),
            "complete" => arity(1).and(Ok(GraphSpec::Complete(usize_arg(0)?))),
            "grid" => arity(2).and(Ok(GraphSpec::Grid(usize_arg(0)?, usize_arg(1)?))),
            "cliques" => arity(2).and(Ok(GraphSpec::Cliques(usize_arg(0)?, usize_arg(1)?))),
            "gnm" => arity(3).and(Ok(GraphSpec::Gnm(
                usize_arg(0)?,
                usize_arg(1)?,
                u64_arg(2)?,
            ))),
            "rmat" => arity(3).and(Ok(GraphSpec::Rmat(
                u64_arg(0)? as u32,
                usize_arg(1)?,
                u64_arg(2)?,
            ))),
            "kronecker" => arity(3).and(Ok(GraphSpec::Kronecker(
                u64_arg(0)? as u32,
                usize_arg(1)?,
                u64_arg(2)?,
            ))),
            "file" => {
                arity(1)?;
                Ok(GraphSpec::File(PathBuf::from(rest[0])))
            }
            other => Err(format!(
                "spec '{spec}': unknown graph kind '{other}' (path, cycle, star, complete, \
                 grid, cliques, gnm, rmat, kronecker, file)"
            )),
        }
    }

    /// The canonical spec string (inverse of [`GraphSpec::parse`]);
    /// feeds the job-list digest.
    pub fn canonical(&self) -> String {
        match self {
            GraphSpec::Path(n) => format!("path:{n}"),
            GraphSpec::Cycle(n) => format!("cycle:{n}"),
            GraphSpec::Star(n) => format!("star:{n}"),
            GraphSpec::Complete(n) => format!("complete:{n}"),
            GraphSpec::Grid(w, h) => format!("grid:{w}:{h}"),
            GraphSpec::Cliques(k, s) => format!("cliques:{k}:{s}"),
            GraphSpec::Gnm(n, m, s) => format!("gnm:{n}:{m}:{s}"),
            GraphSpec::Rmat(sc, d, s) => format!("rmat:{sc}:{d}:{s}"),
            GraphSpec::Kronecker(sc, d, s) => format!("kronecker:{sc}:{d}:{s}"),
            GraphSpec::File(p) => format!("file:{}", p.display()),
        }
    }

    /// Builds (or reads) the graph.
    pub fn build(&self) -> Result<CsrGraph, String> {
        Ok(match self {
            GraphSpec::Path(n) => generate::path(*n),
            GraphSpec::Cycle(n) => generate::cycle(*n),
            GraphSpec::Star(n) => generate::star(*n),
            GraphSpec::Complete(n) => generate::complete(*n),
            GraphSpec::Grid(w, h) => generate::grid2d(*w, *h),
            GraphSpec::Cliques(k, s) => generate::disjoint_cliques(*k, *s),
            GraphSpec::Gnm(n, m, s) => generate::gnm_random(*n, *m, *s),
            GraphSpec::Rmat(sc, d, s) => generate::rmat(*sc, *d, generate::RmatParams::GALOIS, *s),
            GraphSpec::Kronecker(sc, d, s) => generate::kronecker(*sc, *d, *s),
            GraphSpec::File(path) => read_graph_file(path)?,
        })
    }
}

fn read_graph_file(path: &Path) -> Result<CsrGraph, String> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let file = std::fs::File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let reader = std::io::BufReader::new(file);
    let res = match ext {
        "el" | "txt" | "edges" => io::read_edge_list(reader),
        "gr" | "dimacs" => io::read_dimacs(reader),
        "mtx" | "mm" => io::read_matrix_market(reader),
        "ecl" | "bin" => io::read_binary(reader),
        "sgr" | "vgr" => io::read_galois_gr(reader),
        other => return Err(format!("{}: unknown extension '{other}'", path.display())),
    };
    res.map_err(|e| format!("{}: {e}", path.display()))
}

/// One job of a batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Stable id: the job's index in the jobs file.
    pub id: u64,
    /// Human-readable name from the jobs file.
    pub name: String,
    /// Input graph description.
    pub graph: GraphSpec,
}

/// Parses a jobs file (see the module docs for the format).
pub fn parse_jobs(text: &str) -> Result<Vec<JobSpec>, String> {
    let mut jobs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (name, spec) = match (it.next(), it.next(), it.next()) {
            (Some(n), Some(s), None) => (n, s),
            _ => {
                return Err(format!(
                    "jobs file line {}: expected `<name> <spec>`, got {line:?}",
                    lineno + 1
                ))
            }
        };
        jobs.push(JobSpec {
            id: jobs.len() as u64,
            name: name.to_string(),
            graph: GraphSpec::parse(spec).map_err(|e| format!("line {}: {e}", lineno + 1))?,
        });
    }
    if jobs.is_empty() {
        return Err("jobs file contains no jobs".into());
    }
    Ok(jobs)
}

/// Deduplicating graph store shared by all engine workers.
///
/// Batches routinely repeat the same input graph — sweeps over fault
/// seeds, retries of flaky jobs, and resumed runs all rebuild identical
/// [`GraphSpec`]s. Building a graph (or re-reading it from disk) is the
/// most expensive per-job setup cost, so the store builds each distinct
/// spec once, keyed by its [`GraphSpec::canonical`] string, and hands out
/// cheap [`Arc`] clones. Failures are *not* cached: a job whose graph
/// file is missing should see the real error again on retry, after the
/// operator had a chance to fix it.
#[derive(Debug, Default)]
pub struct GraphStore {
    cache: Mutex<HashMap<String, Arc<CsrGraph>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl GraphStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        GraphStore::default()
    }

    /// Returns the graph for `spec`, building it on first use.
    ///
    /// The build runs *outside* the lock so a slow `file:` read on one
    /// worker never stalls the others; if two workers race on the same
    /// spec, the first insertion wins and the duplicate build is dropped.
    pub fn get(&self, spec: &GraphSpec) -> Result<Arc<CsrGraph>, String> {
        let key = spec.canonical();
        if let Some(g) = self.cache.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(g));
        }
        let built = Arc::new(spec.build()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::clone(
            self.cache.lock().unwrap().entry(key).or_insert(built),
        ))
    }

    /// (cache hits, builds) since creation — exposed for the batch
    /// summary so operators can see the dedup working.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct graphs currently held.
    pub fn len(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// True if no graph has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Digest of a parsed job list — pins a journal to its jobs file.
pub fn jobs_digest(jobs: &[JobSpec]) -> u64 {
    let mut text = String::new();
    for j in jobs {
        text.push_str(&j.id.to_string());
        text.push('\t');
        text.push_str(&j.name);
        text.push('\t');
        text.push_str(&j.graph.canonical());
        text.push('\n');
    }
    fnv1a(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_canonical() {
        for s in [
            "path:10",
            "cycle:5",
            "star:9",
            "complete:4",
            "grid:3:4",
            "cliques:2:6",
            "gnm:100:300:7",
            "rmat:8:8:3",
            "kronecker:7:6:2",
            "file:data/x.el",
        ] {
            let spec = GraphSpec::parse(s).unwrap();
            assert_eq!(spec.canonical(), s);
        }
        assert!(GraphSpec::parse("blob:3").is_err());
        assert!(GraphSpec::parse("path").is_err());
        assert!(GraphSpec::parse("path:3:4").is_err());
        assert!(GraphSpec::parse("gnm:a:b:c").is_err());
    }

    #[test]
    fn generated_specs_build() {
        let g = GraphSpec::parse("cliques:3:5").unwrap().build().unwrap();
        assert_eq!(g.num_vertices(), 15);
        let g = GraphSpec::parse("gnm:50:120:1").unwrap().build().unwrap();
        assert_eq!(g.num_vertices(), 50);
    }

    #[test]
    fn jobs_file_parses_with_comments_and_ids() {
        let jobs = parse_jobs("# batch\nring cycle:10\n\nrand gnm:20:40:1\n").unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, 0);
        assert_eq!(jobs[0].name, "ring");
        assert_eq!(jobs[1].id, 1);
        assert_eq!(jobs[1].graph, GraphSpec::Gnm(20, 40, 1));
        assert!(parse_jobs("").is_err());
        assert!(parse_jobs("just-a-name\n").is_err());
        assert!(parse_jobs("a b c\n").is_err());
    }

    #[test]
    fn graph_store_dedups_identical_specs() {
        let store = GraphStore::new();
        let spec = GraphSpec::parse("gnm:100:300:7").unwrap();
        let a = store.get(&spec).unwrap();
        let b = store.get(&spec).unwrap();
        // Same allocation, not merely an equal graph.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.stats(), (1, 1));
        assert_eq!(store.len(), 1);

        // A different spec is a fresh build.
        let c = store
            .get(&GraphSpec::parse("gnm:100:300:8").unwrap())
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.stats(), (1, 2));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn graph_store_does_not_cache_failures() {
        let store = GraphStore::new();
        let missing = GraphSpec::parse("file:/nonexistent/x.el").unwrap();
        assert!(store.get(&missing).is_err());
        assert!(store.get(&missing).is_err());
        assert!(store.is_empty());
        assert_eq!(store.stats(), (0, 0));
    }

    #[test]
    fn graph_store_is_shared_across_threads() {
        let store = Arc::new(GraphStore::new());
        let spec = GraphSpec::parse("cliques:4:8").unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let spec = spec.clone();
                std::thread::spawn(move || store.get(&spec).unwrap())
            })
            .collect();
        let graphs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // All threads converge on one cached entry; racing builds may
        // happen but exactly one allocation is handed out afterwards.
        assert_eq!(store.len(), 1);
        let canonical = store.get(&spec).unwrap();
        for g in &graphs {
            assert_eq!(g.num_vertices(), canonical.num_vertices());
        }
    }

    #[test]
    fn digest_tracks_content() {
        let a = parse_jobs("x cycle:10\n").unwrap();
        let b = parse_jobs("x cycle:10\n").unwrap();
        let c = parse_jobs("x cycle:11\n").unwrap();
        assert_eq!(jobs_digest(&a), jobs_digest(&b));
        assert_ne!(jobs_digest(&a), jobs_digest(&c));
    }
}
