//! Bounded MPMC job queue with admission control.
//!
//! The queue is the engine's backpressure point: producers either block
//! until a slot frees up (`push_blocking`, the default for batch runs) or
//! are rejected immediately (`try_push`, admission control for callers
//! that must not stall — the rejection surfaces as
//! [`ecl_cc::EclError::QueueFull`] in the engine's report).
//!
//! Plain `Mutex` + two `Condvar`s: the workloads here are whole
//! connected-components jobs, so queue overhead is noise and simplicity
//! wins over lock-free cleverness.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; no further items are accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (racy by nature; for reporting only).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when no items are queued (racy; for reporting only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push: rejects with [`PushError::Full`] when at
    /// capacity instead of waiting.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for a free slot (backpressure). Returns the
    /// item back if the queue was closed while waiting.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().unwrap();
        while s.items.len() >= self.capacity && !s.closed {
            s = self.not_full.wait(s).unwrap();
        }
        if s.closed {
            return Err(item);
        }
        s.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop: waits until an item arrives or the queue is closed
    /// *and* drained, in which case `None` signals workers to exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).unwrap();
        }
    }

    /// Closes the queue: queued items still drain, new pushes fail, and
    /// blocked consumers wake up once the queue empties.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_applies_backpressure() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(1).is_ok())
        };
        // The producer must be blocked: give it a moment, then drain.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(3));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        q.push_blocking(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut want: Vec<u32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }
}
