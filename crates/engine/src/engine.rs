//! The batch engine: worker pool, retry loop, breaker routing, and
//! checkpointing, glued around the certified fallback ladder.
//!
//! Lifecycle of one `run_batch` call:
//!
//! 1. **Resume scan** — if resuming, the journal is loaded, its job-list
//!    digest checked against the jobs actually submitted, and every
//!    recorded result re-hashed against its result file; entries that
//!    don't check out are demoted back to pending.
//! 2. **Admission** — pending jobs are pushed into the bounded queue,
//!    blocking for backpressure by default or rejecting with
//!    [`EclError::QueueFull`] under `reject_when_full`.
//! 3. **Workers** — each worker pops a job and runs the retry loop:
//!    breaker-filtered ladder stages, deterministic seeded backoff
//!    between rounds, a per-round cooperative deadline, and a
//!    [`health_probe`](ecl_gpu_sim::Gpu::health_probe) in front of any
//!    half-open GPU probe. Every ladder attempt's outcome is fed back
//!    into the breakers.
//! 4. **Checkpoint** — a certified result is persisted atomically
//!    (write-temp-then-rename), then journaled with an fsync before the
//!    job counts as finished. A kill between those two steps reruns one
//!    job on resume, deterministically producing the same bytes.
//!
//! The `kill_after_jobs` hook stops the whole engine dead — no drain, no
//! final report persistence — after the Nth journal append, which is how
//! the tests simulate `SIGKILL` at every possible checkpoint boundary
//! without spawning processes.

use crate::backoff::BackoffPolicy;
use crate::breaker::{Admission, BreakerConfig, BreakerSet, BACKENDS};
use crate::journal::{self, JournalEntry, JournalWriter};
use crate::queue::{BoundedQueue, PushError};
use crate::report::{AttemptReport, BatchReport, BreakerReport, ErrorReport, JobReport, JobStatus};
use crate::spec::{jobs_digest, GraphStore, JobSpec};
use ecl_cc::ladder::{self, AttemptOutcome, Backend, LadderConfig};
use ecl_cc::EclError;
use ecl_gpu_sim::{ExecMode, Gpu};
use ecl_obs::{Recorder, TraceEvent, PID_ENGINE};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Everything tunable about a batch run.
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads (min 1).
    pub workers: usize,
    /// Bounded-queue capacity (min 1).
    pub queue_capacity: usize,
    /// Per-round cooperative deadline in milliseconds, if any: a round
    /// whose certified answer arrives later than this is discarded and
    /// counted as a [`EclError::Timeout`] failure.
    pub deadline_ms: Option<u64>,
    /// Job-level retry rounds after the first try.
    pub retries: u32,
    /// Backoff schedule between retry rounds.
    pub backoff: BackoffPolicy,
    /// Circuit-breaker tuning (shared by all backends).
    pub breaker: BreakerConfig,
    /// Base ladder configuration: stages, device profile, fault plan,
    /// watchdog, CC config. Per job and retry round the fault seed is
    /// deterministically perturbed, like the ladder's own per-attempt
    /// reseed.
    pub ladder: LadderConfig,
    /// Journal file for checkpoint/resume; `None` disables journaling.
    pub journal_path: Option<PathBuf>,
    /// Directory for per-job result files; `None` disables persistence.
    pub results_dir: Option<PathBuf>,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
    /// Admission control: reject (rather than block) when the queue is
    /// full; rejected jobs fail with [`EclError::QueueFull`].
    pub reject_when_full: bool,
    /// Test hook simulating `SIGKILL`: stop the engine dead after this
    /// many journal appends in this run.
    pub kill_after_jobs: Option<usize>,
    /// Simulated devices per job: 1 (the default) runs jobs through the
    /// fallback ladder; N > 1 edge-cuts each job's graph across N
    /// devices with min-label exchange (`ecl-shard`). Counts against
    /// the core budget alongside workers — see [`budget_exec_mode`].
    pub shards_per_job: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            deadline_ms: None,
            retries: 2,
            backoff: BackoffPolicy::default(),
            breaker: BreakerConfig::default(),
            ladder: LadderConfig::default(),
            journal_path: None,
            results_dir: None,
            resume: false,
            reject_when_full: false,
            kill_after_jobs: None,
            shards_per_job: 1,
        }
    }
}

/// Serializes a labeling in the CLI's `vertex label` line format — the
/// bytes that must be identical between a resumed and an uninterrupted
/// run.
pub fn labels_to_bytes(labels: &[u32]) -> Vec<u8> {
    let mut out = String::with_capacity(labels.len() * 8);
    for (v, l) in labels.iter().enumerate() {
        out.push_str(&format!("{v} {l}\n"));
    }
    out.into_bytes()
}

struct Shared<'a> {
    cfg: &'a EngineConfig,
    queue: BoundedQueue<JobSpec>,
    breakers: BreakerSet,
    journal: Option<Mutex<JournalWriter>>,
    reports: Mutex<Vec<JobReport>>,
    recorded: AtomicUsize,
    killed: AtomicBool,
    /// Dedup cache: identical graph specs across jobs and retry rounds
    /// are built once and shared by `Arc`.
    graphs: GraphStore,
    /// GPU exec mode with `HostParallel(0)` (auto) already resolved
    /// against the worker count — see [`budget_exec_mode`].
    exec: ExecMode,
}

impl Shared<'_> {
    fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// The batch's recorder (from the ladder config), when recording is
    /// actually enabled.
    fn recorder(&self) -> Option<&Recorder> {
        self.cfg.ladder.recorder.as_ref().filter(|r| r.is_enabled())
    }

    /// Emits a queue-depth counter sample on the engine timeline.
    fn gauge_queue_depth(&self) {
        if let Some(rec) = self.recorder() {
            rec.record(TraceEvent::counter(
                "queue.depth",
                "queue",
                PID_ENGINE,
                rec.now_us(),
                self.queue.len() as f64,
            ));
        }
    }
}

/// Feeds one outcome to `backend`'s breaker, emitting a state-transition
/// instant event when the outcome flipped the breaker's state. The
/// before/after snapshots are racy under concurrent workers — acceptable
/// for an observability signal; the breaker itself stays authoritative.
fn feed_breaker(shared: &Shared<'_>, backend: Backend, success: bool) {
    let before = shared.breakers.snapshot(backend).0;
    if success {
        shared.breakers.record_success(backend);
    } else {
        shared.breakers.record_failure(backend);
    }
    let after = shared.breakers.snapshot(backend).0;
    if before == after {
        return;
    }
    if let Some(rec) = shared.recorder() {
        rec.record(
            TraceEvent::instant(
                &format!("breaker:{}", backend.name()),
                "breaker",
                PID_ENGINE,
                0,
                rec.now_us(),
            )
            .arg_str("from", before.name())
            .arg_str("to", after.name()),
        );
        rec.add_metric("engine.breaker_transitions", 1.0);
    }
}

/// Runs a batch to completion (or until killed). Returns the report;
/// `Err` only for setup problems (unusable journal or results dir) —
/// individual job failures are *in* the report, not an `Err`.
pub fn run_batch(jobs: &[JobSpec], cfg: &EngineConfig) -> Result<BatchReport, String> {
    let t0 = Instant::now();
    let digest = jobs_digest(jobs);

    // ---- resume scan ---------------------------------------------------
    let mut recovered: HashMap<u64, JournalEntry> = HashMap::new();
    if cfg.resume {
        let path = cfg
            .journal_path
            .as_ref()
            .ok_or("resume requested but no journal path configured")?;
        let snap = journal::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        if snap.jobs_digest != digest || snap.num_jobs != jobs.len() {
            return Err(format!(
                "journal {} was written for a different job list \
                 (digest {:016x}/{} jobs vs {:016x}/{} jobs); refusing to resume",
                path.display(),
                snap.jobs_digest,
                snap.num_jobs,
                digest,
                jobs.len()
            ));
        }
        for (id, entry) in snap.done {
            let trustworthy = match &cfg.results_dir {
                Some(dir) => std::fs::read(journal::result_path(dir, id))
                    .map(|bytes| journal::fnv1a(&bytes) == entry.digest)
                    .unwrap_or(false),
                None => true,
            };
            if trustworthy {
                recovered.insert(id, entry);
            }
            // Untrustworthy entries (torn or missing result file) are
            // dropped: the job reruns and rewrites both, idempotently.
        }
    }

    if let Some(dir) = &cfg.results_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    let journal_writer = match &cfg.journal_path {
        Some(path) => Some(Mutex::new(if cfg.resume {
            JournalWriter::append(path).map_err(|e| format!("{}: {e}", path.display()))?
        } else {
            JournalWriter::create(path, digest, jobs.len())
                .map_err(|e| format!("{}: {e}", path.display()))?
        })),
        None => None,
    };

    let shared = Shared {
        cfg,
        queue: BoundedQueue::new(cfg.queue_capacity),
        breakers: BreakerSet::new(cfg.breaker),
        journal: journal_writer,
        reports: Mutex::new(Vec::new()),
        recorded: AtomicUsize::new(0),
        killed: AtomicBool::new(false),
        graphs: GraphStore::new(),
        exec: budget_exec_mode(
            cfg.ladder.exec,
            cfg.workers.max(1) * cfg.shards_per_job.max(1),
        ),
    };

    // Recovered jobs go straight into the report.
    {
        let mut reports = shared.reports.lock().unwrap();
        for (id, e) in &recovered {
            let name = jobs
                .iter()
                .find(|j| j.id == *id)
                .map(|j| j.name.clone())
                .unwrap_or_default();
            reports.push(JobReport {
                id: *id,
                name,
                status: JobStatus::Resumed,
                backend: Some(e.backend.clone()),
                components: Some(e.components),
                retries: e.retries,
                attempts: Vec::new(),
                error: None,
                time_ms: 0.0,
            });
        }
    }

    let mut rejections = 0usize;
    std::thread::scope(|scope| {
        let shared = &shared;
        for worker in 0..cfg.workers.max(1) {
            scope.spawn(move || worker_loop(shared, worker));
        }
        // Admission: feed pending jobs, then close the queue so workers
        // drain and exit.
        for job in jobs {
            if recovered.contains_key(&job.id) {
                continue;
            }
            if shared.killed() {
                break;
            }
            if cfg.reject_when_full {
                match shared.queue.try_push(job.clone()) {
                    Ok(()) => {}
                    Err(PushError::Full(job)) => {
                        rejections += 1;
                        shared.reports.lock().unwrap().push(JobReport {
                            id: job.id,
                            name: job.name,
                            status: JobStatus::Failed,
                            backend: None,
                            components: None,
                            retries: 0,
                            attempts: Vec::new(),
                            error: Some(ErrorReport::from_ecl(&EclError::QueueFull {
                                capacity: cfg.queue_capacity,
                            })),
                            time_ms: 0.0,
                        });
                    }
                    Err(PushError::Closed(_)) => break,
                }
            } else if shared.queue.push_blocking(job.clone()).is_err() {
                break;
            }
            shared.gauge_queue_depth();
        }
        shared.queue.close();
    });

    let mut job_reports = shared.reports.into_inner().unwrap();
    job_reports.sort_by_key(|j| j.id);
    let breakers = BACKENDS
        .iter()
        .map(|&b| {
            let (state, trips, failures, successes) = shared.breakers.snapshot(b);
            BreakerReport {
                backend: b.name().to_string(),
                state: state.name().to_string(),
                trips,
                failures,
                successes,
            }
        })
        .collect();

    Ok(BatchReport {
        jobs: job_reports,
        breakers,
        expected_jobs: jobs.len(),
        workers: cfg.workers.max(1),
        queue_capacity: cfg.queue_capacity.max(1),
        queue_rejections: rejections,
        aborted: shared.killed.load(Ordering::SeqCst),
        total_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

/// Divides the host's cores between engine workers and per-worker SM
/// simulation threads. `HostParallel(0)` means "auto": with W engine
/// workers each already running jobs concurrently, each simulated device
/// gets `cores / W` SM threads (at least 1, where `HostParallel(1)`
/// collapses to the cheaper serial path in the device). Sharded runs
/// multiply the divisor: W workers × S shards devices may execute at
/// once, so each gets `cores / (W*S)` threads. Explicit modes pass
/// through untouched — the operator asked for exactly that.
fn budget_exec_mode(requested: ExecMode, workers: usize) -> ExecMode {
    match requested {
        ExecMode::HostParallel(0) => {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            ExecMode::HostParallel((cores / workers.max(1)).max(1))
        }
        other => other,
    }
}

fn worker_loop(shared: &Shared<'_>, worker: usize) {
    // Per-worker ring buffer: job spans accumulate locally and are
    // merged into the shared recorder once per job, keeping the worker
    // hot path free of recorder locks.
    let rec = shared.recorder().cloned();
    let mut buf = rec
        .as_ref()
        .map(Recorder::local)
        .unwrap_or_else(|| Recorder::disabled().local());
    while let Some(job) = shared.queue.pop() {
        shared.gauge_queue_depth();
        if shared.killed() {
            // SIGKILL semantics: in-flight and queued work evaporates.
            return;
        }
        let span_start = rec.as_ref().map(|r| r.now_us());
        let report = process_job(shared, &job);
        if let (Some(r), Some(start)) = (&rec, span_start) {
            let mut ev = TraceEvent::span(
                &format!("job:{}", job.name),
                "job",
                PID_ENGINE,
                worker as u32 + 1,
                start,
                r.now_us().saturating_sub(start),
            )
            .arg_u64("job_id", job.id)
            .arg_u64("worker", worker as u64);
            match &report {
                Some(rep) => {
                    ev = ev
                        .arg_str("status", rep.status.name())
                        .arg_u64("retries", rep.retries as u64)
                        .arg_u64("ladder_attempts", rep.attempts.len() as u64);
                }
                None => ev = ev.arg_str("status", "killed"),
            }
            buf.push(ev);
            r.add_metric("engine.jobs", 1.0);
            r.merge(&mut buf);
        }
        if let Some(report) = report {
            shared.reports.lock().unwrap().push(report);
        }
    }
}

/// Runs one job's retry loop. Returns `None` when the engine was killed
/// mid-job (the job vanishes, exactly as under a real SIGKILL).
fn process_job(shared: &Shared<'_>, job: &JobSpec) -> Option<JobReport> {
    let cfg = shared.cfg;
    let t0 = Instant::now();

    let graph = match shared.graphs.get(&job.graph) {
        Ok(g) => g,
        Err(e) => {
            // Inputs do not heal: fail without burning retries.
            return Some(JobReport {
                id: job.id,
                name: job.name.clone(),
                status: JobStatus::Failed,
                backend: None,
                components: None,
                retries: 0,
                attempts: Vec::new(),
                error: Some(ErrorReport::input(e)),
                time_ms: t0.elapsed().as_secs_f64() * 1e3,
            });
        }
    };

    if cfg.shards_per_job > 1 {
        return process_job_sharded(shared, job, &graph, t0);
    }

    let mut attempts: Vec<AttemptReport> = Vec::new();
    let mut last_error = EclError::Exhausted {
        attempts: 0,
        last: None,
    };

    for round in 0..=cfg.retries {
        if round > 0 {
            let delay = cfg.backoff.delay_ms(job.id, round);
            if delay > 0 {
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
        }
        if shared.killed() {
            return None;
        }

        // Per-round fault-seed perturbation, like the ladder's own
        // per-attempt reseed: deterministic, but transient injected
        // faults do not repeat across rounds.
        let mut ladder_cfg = cfg.ladder.clone();
        ladder_cfg.exec = shared.exec;
        ladder_cfg.fault.seed = ladder_cfg
            .fault
            .seed
            .wrapping_add(job.id.wrapping_mul(0x9e37_79b9))
            .wrapping_add(round as u64 * 64);

        // Breaker-filtered stage list. Serial is the rung of last
        // resort and is never gated — a batch must always be able to
        // finish on the slowest correct backend.
        let mut stages = Vec::with_capacity(ladder_cfg.stages.len());
        let mut denied: Option<Backend> = None;
        for &backend in &cfg.ladder.stages {
            let admission = if backend == Backend::Serial {
                Admission::Allow
            } else {
                shared.breakers.admit(backend)
            };
            match admission {
                Admission::Allow => stages.push(backend),
                Admission::Deny => denied = Some(backend),
                Admission::Probe => {
                    if backend == Backend::GpuSim {
                        // Half-open: health-probe the simulated device
                        // under the job's fault plan before trusting it
                        // with real work.
                        let mut device = Gpu::new(ladder_cfg.profile.clone());
                        device.set_fault_plan(ladder_cfg.fault);
                        device.set_watchdog(ladder_cfg.watchdog);
                        match device.health_probe() {
                            Ok(()) => stages.push(backend),
                            Err(_) => {
                                feed_breaker(shared, backend, false);
                                denied = Some(backend);
                            }
                        }
                    } else {
                        // CPU backends have no cheap probe; the job
                        // itself is the probe.
                        stages.push(backend);
                    }
                }
            }
        }
        ladder_cfg.stages = stages;

        if ladder_cfg.stages.is_empty() {
            // Every configured backend is gated. Only possible when the
            // ladder was configured without a Serial rung.
            last_error = EclError::CircuitOpen {
                backend: denied.map(|b| b.name()).unwrap_or("all").to_string(),
            };
            attempts.push(AttemptReport {
                round,
                backend: "none".to_string(),
                attempt: 0,
                certified: false,
                error: Some(ErrorReport::from_ecl(&last_error)),
            });
            continue;
        }

        let round_start = Instant::now();
        let outcome = ladder::run_with_fallback(&graph, &ladder_cfg);

        // Feed every ladder attempt back into the breakers and the
        // audit trail.
        let trail: &[ladder::StageAttempt] = match &outcome {
            Ok(out) => &out.attempts,
            Err(_) => &[],
        };
        for a in trail {
            feed_breaker(
                shared,
                a.backend,
                matches!(a.outcome, AttemptOutcome::Certified { .. }),
            );
            attempts.push(AttemptReport {
                round,
                backend: a.backend.name().to_string(),
                attempt: a.attempt,
                certified: matches!(a.outcome, AttemptOutcome::Certified { .. }),
                error: match &a.outcome {
                    AttemptOutcome::Failed { error } => Some(ErrorReport::from_ecl(error)),
                    AttemptOutcome::Certified { .. } => None,
                },
            });
        }

        match outcome {
            Ok(out) => {
                let elapsed_ms = round_start.elapsed().as_millis() as u64;
                if let Some(deadline) = cfg.deadline_ms {
                    if elapsed_ms > deadline {
                        last_error = EclError::Timeout {
                            elapsed_ms,
                            deadline_ms: deadline,
                        };
                        attempts.push(AttemptReport {
                            round,
                            backend: out.backend.name().to_string(),
                            attempt: 0,
                            certified: false,
                            error: Some(ErrorReport::from_ecl(&last_error)),
                        });
                        continue;
                    }
                }
                return finish_job(
                    shared,
                    job,
                    &out.result.labels,
                    out.backend.name(),
                    out.certificate.num_components,
                    round,
                    attempts,
                    t0,
                );
            }
            Err(e) => {
                // The ladder failed every stage; the failures were
                // already fed to the breakers from the (absent) trail —
                // recover them from the error's audit copy.
                if let EclError::Exhausted { .. } = &e {
                    // run_with_fallback returns no attempts on error, so
                    // charge the breakers for the stages we offered.
                    for &b in &ladder_cfg.stages {
                        feed_breaker(shared, b, false);
                    }
                    attempts.push(AttemptReport {
                        round,
                        backend: ladder_cfg
                            .stages
                            .last()
                            .map(|b| b.name())
                            .unwrap_or("none")
                            .to_string(),
                        attempt: 0,
                        certified: false,
                        error: Some(ErrorReport::from_ecl(&e)),
                    });
                }
                last_error = e;
            }
        }
    }

    Some(JobReport {
        id: job.id,
        name: job.name.clone(),
        status: JobStatus::Failed,
        backend: None,
        components: None,
        retries: cfg.retries,
        attempts,
        error: Some(ErrorReport::from_ecl(&last_error)),
        time_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

/// The sharded fast path: when `shards_per_job > 1` the job bypasses the
/// breaker-routed ladder — `ecl-shard` carries its own containment
/// (retransmission, checkpoint recovery, and a degrade-to-ladder rung of
/// last resort) — but keeps the engine's retry rounds, backoff, seed
/// perturbation, and deadline. Certified results checkpoint through the
/// same [`finish_job`] as ladder results, with backend `sharded:N` (or
/// `sharded:N(degraded)` when the crash budget was exceeded mid-run);
/// the journal digest covers label bytes only, so resume byte-identity
/// holds across shard counts.
fn process_job_sharded(
    shared: &Shared<'_>,
    job: &JobSpec,
    graph: &ecl_graph::CsrGraph,
    t0: Instant,
) -> Option<JobReport> {
    let cfg = shared.cfg;
    let mut attempts: Vec<AttemptReport> = Vec::new();
    let mut last_error = EclError::Exhausted {
        attempts: 0,
        last: None,
    };

    for round in 0..=cfg.retries {
        if round > 0 {
            let delay = cfg.backoff.delay_ms(job.id, round);
            if delay > 0 {
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
        }
        if shared.killed() {
            return None;
        }

        let mut fault = cfg.ladder.fault;
        fault.seed = fault
            .seed
            .wrapping_add(job.id.wrapping_mul(0x9e37_79b9))
            .wrapping_add(round as u64 * 64);
        let shard_cfg = ecl_shard::ShardConfig {
            shards: cfg.shards_per_job,
            cc: cfg.ladder.cc,
            profile: cfg.ladder.profile.clone(),
            fault,
            watchdog: cfg.ladder.watchdog,
            exec: shared.exec,
            threads: cfg.ladder.threads,
            recorder: shared.recorder().cloned(),
            ..ecl_shard::ShardConfig::default()
        };

        let round_start = Instant::now();
        match ecl_shard::run_sharded(graph, &shard_cfg) {
            Ok(out) => {
                let backend = if out.report.degraded {
                    format!("sharded:{}(degraded)", cfg.shards_per_job)
                } else {
                    format!("sharded:{}", cfg.shards_per_job)
                };
                let elapsed_ms = round_start.elapsed().as_millis() as u64;
                if let Some(deadline) = cfg.deadline_ms {
                    if elapsed_ms > deadline {
                        last_error = EclError::Timeout {
                            elapsed_ms,
                            deadline_ms: deadline,
                        };
                        attempts.push(AttemptReport {
                            round,
                            backend,
                            attempt: 0,
                            certified: false,
                            error: Some(ErrorReport::from_ecl(&last_error)),
                        });
                        continue;
                    }
                }
                attempts.push(AttemptReport {
                    round,
                    backend: backend.clone(),
                    attempt: 0,
                    certified: true,
                    error: None,
                });
                return finish_job(
                    shared,
                    job,
                    &out.result.labels,
                    &backend,
                    out.certificate.num_components,
                    round,
                    attempts,
                    t0,
                );
            }
            Err(e) => {
                attempts.push(AttemptReport {
                    round,
                    backend: format!("sharded:{}", cfg.shards_per_job),
                    attempt: 0,
                    certified: false,
                    error: Some(ErrorReport::from_ecl(&e)),
                });
                last_error = e;
            }
        }
    }

    Some(JobReport {
        id: job.id,
        name: job.name.clone(),
        status: JobStatus::Failed,
        backend: None,
        components: None,
        retries: cfg.retries,
        attempts,
        error: Some(ErrorReport::from_ecl(&last_error)),
        time_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}

/// Persists and journals a certified result; flips the kill switch when
/// the `kill_after_jobs` checkpoint count is reached. Takes the labels,
/// backend tag, and component count directly so both the ladder path and
/// the sharded path can checkpoint through the same code — the journal
/// digest covers label bytes only, so a sharded run and a serial run of
/// the same job resume interchangeably.
#[allow(clippy::too_many_arguments)]
fn finish_job(
    shared: &Shared<'_>,
    job: &JobSpec,
    labels: &[u32],
    backend: &str,
    components: usize,
    retries: u32,
    attempts: Vec<AttemptReport>,
    t0: Instant,
) -> Option<JobReport> {
    let bytes = labels_to_bytes(labels);
    let digest = journal::fnv1a(&bytes);

    if let Some(dir) = &shared.cfg.results_dir {
        if let Err(e) = journal::write_atomic(&journal::result_path(dir, job.id), &bytes) {
            return Some(JobReport {
                id: job.id,
                name: job.name.clone(),
                status: JobStatus::Failed,
                backend: None,
                components: None,
                retries,
                attempts,
                error: Some(ErrorReport::input(format!("persisting result: {e}"))),
                time_ms: t0.elapsed().as_secs_f64() * 1e3,
            });
        }
    }
    if let Some(journal) = &shared.journal {
        let entry = JournalEntry {
            job_id: job.id,
            backend: backend.to_string(),
            components,
            retries,
            digest,
        };
        if let Err(e) = journal.lock().unwrap().record(&entry) {
            return Some(JobReport {
                id: job.id,
                name: job.name.clone(),
                status: JobStatus::Failed,
                backend: None,
                components: None,
                retries,
                attempts,
                error: Some(ErrorReport::input(format!("journaling result: {e}"))),
                time_ms: t0.elapsed().as_secs_f64() * 1e3,
            });
        }
    }

    let recorded = shared.recorded.fetch_add(1, Ordering::SeqCst) + 1;
    if let Some(kill_after) = shared.cfg.kill_after_jobs {
        if recorded >= kill_after {
            shared.killed.store(true, Ordering::SeqCst);
            shared.queue.close();
            // SIGKILL semantics: this job's journal entry is durable,
            // but its report (and everything after) is lost.
            return None;
        }
    }

    Some(JobReport {
        id: job.id,
        name: job.name.clone(),
        status: JobStatus::Done,
        backend: Some(backend.to_string()),
        components: Some(components),
        retries,
        attempts,
        error: None,
        time_ms: t0.elapsed().as_secs_f64() * 1e3,
    })
}
