//! Crash-safe progress journal and atomic result persistence.
//!
//! Two complementary mechanisms make a killed batch resumable:
//!
//! * **Per-job result files** are written with the classic
//!   write-temp-then-rename dance: the labels land in
//!   `<results>/.tmp-job-<id>`, are fsync'd, and only then renamed to
//!   `<results>/job-<id>.labels`. A kill can leave a stale temp file
//!   behind but never a torn final file.
//! * **The journal** is an append-only, line-oriented log. Each
//!   completed job appends one `done` line *after* its result file is in
//!   place, flushed and fsync'd before the engine considers the job
//!   finished. A kill mid-append leaves at most one torn trailing line,
//!   which the loader silently discards — the worst case is re-running
//!   one job whose result was already durable, which is idempotent
//!   because results are deterministic.
//!
//! The journal's first line pins a digest of the job list, so resuming
//! against a different `--jobs` file is rejected instead of silently
//! mixing two batches. Every `done` line carries the FNV-1a digest of
//! the result file's bytes; on resume the file is re-hashed and a
//! mismatch (torn rename, manual tampering) demotes the job back to
//! pending.
//!
//! The format is deliberately TSV, not JSON: it must be parseable after
//! arbitrary truncation, and a tab-separated line either has all its
//! fields or it doesn't.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Journal format version; bumped on incompatible changes.
const VERSION: u32 = 1;

/// One completed job, as recorded in (and recovered from) the journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// The job's stable id (its index in the job list).
    pub job_id: u64,
    /// Backend whose certified answer was accepted.
    pub backend: String,
    /// Certified component count.
    pub components: usize,
    /// Job-level retries that were needed.
    pub retries: u32,
    /// FNV-1a digest of the result file's bytes.
    pub digest: u64,
}

/// Append-side handle: owns the journal file, fsyncs every record.
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates (truncating) a fresh journal for a batch whose job list
    /// hashes to `jobs_digest`.
    pub fn create(path: &Path, jobs_digest: u64, num_jobs: usize) -> io::Result<JournalWriter> {
        let mut file = File::create(path)?;
        writeln!(file, "meta\t{VERSION}\t{jobs_digest:016x}\t{num_jobs}")?;
        file.sync_data()?;
        Ok(JournalWriter { file })
    }

    /// Reopens an existing journal for appending (resume).
    pub fn append(path: &Path) -> io::Result<JournalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Durably appends one completed job. Returns only after the bytes
    /// are flushed and fsync'd — the crash-consistency point.
    pub fn record(&mut self, e: &JournalEntry) -> io::Result<()> {
        writeln!(
            self.file,
            "done\t{}\t{}\t{}\t{}\t{:016x}",
            e.job_id, e.backend, e.components, e.retries, e.digest
        )?;
        self.file.sync_data()
    }
}

/// Everything recovered from a journal on resume.
#[derive(Debug)]
pub struct JournalSnapshot {
    /// The job-list digest the batch was started with.
    pub jobs_digest: u64,
    /// The job count the batch was started with.
    pub num_jobs: usize,
    /// Completed jobs by id (later duplicates win, though duplicates
    /// only arise from a re-run of an already-durable job).
    pub done: HashMap<u64, JournalEntry>,
}

/// Loads a journal, discarding any torn trailing line. Fails if the
/// file is missing or its meta line is unreadable.
pub fn load(path: &Path) -> io::Result<JournalSnapshot> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let meta = lines
        .next()
        .transpose()?
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "journal is empty"))?;
    let mut mf = meta.split('\t');
    let (jobs_digest, num_jobs) = match (mf.next(), mf.next(), mf.next(), mf.next()) {
        (Some("meta"), Some(v), Some(digest), Some(n)) if v == VERSION.to_string() => {
            let digest = u64::from_str_radix(digest, 16)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            let n: usize = n
                .parse()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            (digest, n)
        }
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad journal meta line: {meta:?}"),
            ))
        }
    };
    let mut done = HashMap::new();
    for line in lines {
        let line = line?;
        if let Some(entry) = parse_done_line(&line) {
            done.insert(entry.job_id, entry);
        }
        // Anything unparseable is treated as a torn tail and skipped;
        // the corresponding job simply reruns.
    }
    Ok(JournalSnapshot {
        jobs_digest,
        num_jobs,
        done,
    })
}

fn parse_done_line(line: &str) -> Option<JournalEntry> {
    let mut f = line.split('\t');
    match (
        f.next(),
        f.next(),
        f.next(),
        f.next(),
        f.next(),
        f.next(),
        f.next(),
    ) {
        (Some("done"), Some(id), Some(backend), Some(comp), Some(retries), Some(digest), None) => {
            Some(JournalEntry {
                job_id: id.parse().ok()?,
                backend: backend.to_string(),
                components: comp.parse().ok()?,
                retries: retries.parse().ok()?,
                digest: u64::from_str_radix(digest, 16).ok()?,
            })
        }
        _ => None,
    }
}

/// FNV-1a 64-bit hash — the digest pinning result files to journal
/// entries (fast, dependency-free; not cryptographic, and does not need
/// to be: it detects torn writes, not adversaries).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename. Readers never observe a partial file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp: PathBuf = dir.join(format!(".tmp-{}", name.to_string_lossy()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The result-file path for a job id inside a results directory.
pub fn result_path(results_dir: &Path, job_id: u64) -> PathBuf {
    results_dir.join(format!("job-{job_id}.labels"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ecl_journal_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry(id: u64) -> JournalEntry {
        JournalEntry {
            job_id: id,
            backend: "gpu-sim".into(),
            components: 3,
            retries: 1,
            digest: 0xdead_beef,
        }
    }

    #[test]
    fn roundtrip_create_record_load() {
        let d = tmpdir("roundtrip");
        let p = d.join("j.journal");
        let mut w = JournalWriter::create(&p, 0xabc, 5).unwrap();
        w.record(&entry(0)).unwrap();
        w.record(&entry(3)).unwrap();
        drop(w);
        let snap = load(&p).unwrap();
        assert_eq!(snap.jobs_digest, 0xabc);
        assert_eq!(snap.num_jobs, 5);
        assert_eq!(snap.done.len(), 2);
        assert_eq!(snap.done[&3], entry(3));
        // Resume-side append.
        let mut w = JournalWriter::append(&p).unwrap();
        w.record(&entry(4)).unwrap();
        drop(w);
        assert_eq!(load(&p).unwrap().done.len(), 3);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let d = tmpdir("torn");
        let p = d.join("j.journal");
        let mut w = JournalWriter::create(&p, 1, 4).unwrap();
        w.record(&entry(0)).unwrap();
        drop(w);
        // Simulate a kill mid-append: a truncated record at the tail.
        let mut f = OpenOptions::new().append(true).open(&p).unwrap();
        write!(f, "done\t1\tgpu-si").unwrap();
        drop(f);
        let snap = load(&p).unwrap();
        assert_eq!(snap.done.len(), 1);
        assert!(snap.done.contains_key(&0));
    }

    #[test]
    fn missing_or_corrupt_meta_rejected() {
        let d = tmpdir("meta");
        let p = d.join("j.journal");
        assert!(load(&p).is_err(), "missing file");
        std::fs::write(&p, "").unwrap();
        assert!(load(&p).is_err(), "empty file");
        std::fs::write(&p, "done\t0\tserial\t1\t0\t0\n").unwrap();
        assert!(load(&p).is_err(), "no meta line");
        std::fs::write(&p, "meta\t999\tzz\tnope\n").unwrap();
        assert!(load(&p).is_err(), "wrong version / garbage");
    }

    #[test]
    fn atomic_write_replaces_whole_file() {
        let d = tmpdir("atomic");
        let p = d.join("out.labels");
        write_atomic(&p, b"first").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"first");
        write_atomic(&p, b"second-longer").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"second-longer");
        // No temp residue after a clean write.
        assert!(!d.join(".tmp-out.labels").exists());
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"labels"), fnv1a(b"labels"));
    }
}
