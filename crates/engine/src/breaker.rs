//! Per-backend circuit breakers.
//!
//! A backend that keeps failing (a GPU tripping its watchdog on every
//! kernel, say) should not be handed every incoming job just so each one
//! can burn its retry budget rediscovering the outage. The breaker is
//! the standard three-state machine:
//!
//! ```text
//!            failures >= threshold
//!   Closed ────────────────────────► Open
//!     ▲                                │ cooldown elapses
//!     │  probe successes >= quota      ▼
//!     └──────────────────────────── HalfOpen ──► Open (probe fails)
//! ```
//!
//! * **Closed** — jobs flow normally; consecutive failures are counted.
//! * **Open** — the backend is skipped entirely until the cooldown
//!   elapses, so jobs route straight down the fallback ladder.
//! * **HalfOpen** — a limited number of probe jobs (preceded by the
//!   simulator's [`health_probe`](ecl_gpu_sim::Gpu::health_probe)) are
//!   let through; enough successes close the breaker, any failure
//!   reopens it.
//!
//! State is per backend and shared by all workers (one mutex per set —
//! transitions are rare and cheap next to a CC job).

use ecl_cc::ladder::Backend;
use std::sync::Mutex;
use std::time::Instant;

/// Breaker tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// How long an Open breaker waits before allowing half-open probes,
    /// in milliseconds.
    pub cooldown_ms: u64,
    /// Probe successes required to close a half-open breaker.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 1_000,
            half_open_successes: 2,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: jobs flow, failures are counted.
    Closed,
    /// Tripped: the backend is skipped until the cooldown elapses.
    Open,
    /// Probing: limited traffic decides between Closed and Open.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Admission decision for one job on one backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Breaker closed: run normally.
    Allow,
    /// Breaker half-open: run, but health-probe the backend first.
    Probe,
    /// Breaker open: skip this backend.
    Deny,
}

/// One backend's breaker.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    half_open_successes: u32,
    opened_at: Option<Instant>,
    /// Closed→Open and HalfOpen→Open transitions, for reports.
    trips: u64,
    total_failures: u64,
    total_successes: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            half_open_successes: 0,
            opened_at: None,
            trips: 0,
            total_failures: 0,
            total_successes: 0,
        }
    }

    /// Current state (advancing Open → HalfOpen if the cooldown elapsed).
    pub fn state(&mut self) -> BreakerState {
        self.advance_cooldown();
        self.state
    }

    /// Decides whether a job may use this backend right now.
    pub fn admit(&mut self) -> Admission {
        self.advance_cooldown();
        match self.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::Open => Admission::Deny,
            BreakerState::HalfOpen => Admission::Probe,
        }
    }

    fn advance_cooldown(&mut self) {
        if self.state == BreakerState::Open {
            let waited = self
                .opened_at
                .map(|t| t.elapsed().as_millis() as u64)
                .unwrap_or(u64::MAX);
            if waited >= self.cfg.cooldown_ms {
                self.state = BreakerState::HalfOpen;
                self.half_open_successes = 0;
            }
        }
    }

    /// Records a successful use of the backend.
    pub fn record_success(&mut self) {
        self.total_successes += 1;
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.half_open_successes += 1;
                if self.half_open_successes >= self.cfg.half_open_successes.max(1) {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                }
            }
            // A success racing the trip: harmless, ignore.
            BreakerState::Open => {}
        }
    }

    /// Records a failed use of the backend.
    pub fn record_failure(&mut self) {
        self.total_failures += 1;
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold.max(1) {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.opened_at = Some(Instant::now());
        self.trips += 1;
    }

    /// Times the breaker tripped (Closed/HalfOpen → Open).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Total recorded failures.
    pub fn total_failures(&self) -> u64 {
        self.total_failures
    }

    /// Total recorded successes.
    pub fn total_successes(&self) -> u64 {
        self.total_successes
    }
}

/// The breakers for every ladder backend, shared across workers.
pub struct BreakerSet {
    inner: Mutex<[CircuitBreaker; 3]>,
}

/// All backends a breaker is tracked for, in ladder order.
pub const BACKENDS: [Backend; 3] = [Backend::GpuSim, Backend::ParallelCpu, Backend::Serial];

fn slot(backend: Backend) -> usize {
    match backend {
        Backend::GpuSim => 0,
        Backend::ParallelCpu => 1,
        Backend::Serial => 2,
    }
}

impl BreakerSet {
    /// One closed breaker per backend, all with the same tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        BreakerSet {
            inner: Mutex::new([
                CircuitBreaker::new(cfg),
                CircuitBreaker::new(cfg),
                CircuitBreaker::new(cfg),
            ]),
        }
    }

    /// Admission decision for `backend`.
    pub fn admit(&self, backend: Backend) -> Admission {
        self.inner.lock().unwrap()[slot(backend)].admit()
    }

    /// Records a success for `backend`.
    pub fn record_success(&self, backend: Backend) {
        self.inner.lock().unwrap()[slot(backend)].record_success();
    }

    /// Records a failure for `backend`.
    pub fn record_failure(&self, backend: Backend) {
        self.inner.lock().unwrap()[slot(backend)].record_failure();
    }

    /// Snapshot of `(state, trips, failures, successes)` for `backend`.
    pub fn snapshot(&self, backend: Backend) -> (BreakerState, u64, u64, u64) {
        let mut set = self.inner.lock().unwrap();
        let b = &mut set[slot(backend)];
        (
            b.state(),
            b.trips(),
            b.total_failures(),
            b.total_successes(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ms: u64, probes: u32) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: threshold,
            cooldown_ms,
            half_open_successes: probes,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(cfg(3, 60_000, 1));
        b.record_failure();
        b.record_failure();
        b.record_success(); // resets the streak
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(), Admission::Deny);
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn cooldown_elapses_into_half_open_probes() {
        let mut b = CircuitBreaker::new(cfg(1, 0, 2));
        b.record_failure();
        // Zero cooldown: immediately probing.
        assert_eq!(b.admit(), Admission::Probe);
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "one probe is not enough");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(cfg(1, 0, 1));
        b.record_failure();
        assert_eq!(b.admit(), Admission::Probe);
        b.record_failure();
        // Cooldown is zero so it is immediately probing again, but the
        // re-trip was counted.
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn long_cooldown_stays_open() {
        let mut b = CircuitBreaker::new(cfg(1, 3_600_000, 1));
        b.record_failure();
        assert_eq!(b.admit(), Admission::Deny);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn set_is_per_backend() {
        let set = BreakerSet::new(cfg(1, 3_600_000, 1));
        set.record_failure(Backend::GpuSim);
        assert_eq!(set.admit(Backend::GpuSim), Admission::Deny);
        assert_eq!(set.admit(Backend::ParallelCpu), Admission::Allow);
        assert_eq!(set.admit(Backend::Serial), Admission::Allow);
        let (state, trips, fails, _) = set.snapshot(Backend::GpuSim);
        assert_eq!(state, BreakerState::Open);
        assert_eq!((trips, fails), (1, 1));
    }
}
