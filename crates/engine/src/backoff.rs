//! Deterministic seeded exponential backoff with jitter.
//!
//! Retry storms are a classic self-inflicted outage: if every failed job
//! retries on the same schedule, the backend that just buckled gets hit
//! by a synchronized wave. Exponential backoff spreads retries out in
//! time; jitter decorrelates them across jobs. Unlike most
//! implementations, the jitter here is *seeded and deterministic* —
//! derived from `(policy seed, job id, attempt)` via the same SplitMix64
//! generator the fault-injection machinery uses — so a batch replays
//! with bit-identical retry timing, which is what makes chaos runs and
//! the kill/resume acceptance tests reproducible.

use ecl_gpu_sim::FaultRng;

/// Backoff schedule parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Multiplier applied per subsequent retry (≥ 1).
    pub factor: u64,
    /// Ceiling on the uncapped exponential term, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 10,
            factor: 2,
            cap_ms: 2_000,
            seed: 0x0ff_ba11,
        }
    }
}

impl BackoffPolicy {
    /// Deterministic "equal jitter" delay for the given retry: half the
    /// capped exponential term is kept, the other half is drawn uniformly
    /// from the `(seed, job id, attempt)` stream. `attempt` is 1-based
    /// (the first retry is attempt 1).
    pub fn delay_ms(&self, job_id: u64, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(self.factor.max(1).saturating_pow(attempt.saturating_sub(1)))
            .min(self.cap_ms.max(self.base_ms));
        if exp == 0 {
            return 0;
        }
        let mut rng = FaultRng::new(
            self.seed ^ job_id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            attempt as u64,
        );
        let half = exp / 2;
        half + rng.below(exp - half + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_job_and_attempt() {
        let p = BackoffPolicy::default();
        assert_eq!(p.delay_ms(3, 1), p.delay_ms(3, 1));
        assert_ne!(
            (p.delay_ms(3, 1), p.delay_ms(3, 2), p.delay_ms(3, 3)),
            (p.delay_ms(4, 1), p.delay_ms(4, 2), p.delay_ms(4, 3)),
            "different jobs must not retry in lockstep"
        );
    }

    #[test]
    fn grows_exponentially_and_caps() {
        let p = BackoffPolicy {
            base_ms: 100,
            factor: 2,
            cap_ms: 1_000,
            seed: 9,
        };
        for attempt in 1..=10u32 {
            let exp = (100u64 * 2u64.pow(attempt - 1)).min(1_000);
            let d = p.delay_ms(0, attempt);
            assert!(
                d >= exp / 2 && d <= exp,
                "attempt {attempt}: {d} not in [{}, {exp}]",
                exp / 2
            );
        }
    }

    #[test]
    fn zero_base_means_no_delay() {
        let p = BackoffPolicy {
            base_ms: 0,
            factor: 2,
            cap_ms: 0,
            seed: 1,
        };
        assert_eq!(p.delay_ms(5, 1), 0);
        assert_eq!(p.delay_ms(5, 9), 0);
    }

    #[test]
    fn no_overflow_at_extreme_attempts() {
        let p = BackoffPolicy {
            base_ms: u64::MAX / 2,
            factor: u64::MAX,
            cap_ms: u64::MAX,
            seed: 1,
        };
        // Must not panic.
        let _ = p.delay_ms(u64::MAX, u32::MAX);
    }
}
