//! Machine-readable batch reports.
//!
//! The engine's contract with operators: every job, every attempt,
//! every retry, every breaker trip shows up here — including for jobs
//! recovered from a journal on resume. JSON is hand-rolled (the
//! workspace builds offline with no serde); the shape is flat and
//! stable so `ci.sh` and dashboards can grep/parse it.

use ecl_cc::EclError;

/// Escapes a string for inclusion in a JSON string literal. Delegates to
/// the workspace's single JSON implementation in [`ecl_obs::json`].
fn esc(s: &str) -> String {
    ecl_obs::json::escape(s)
}

fn opt_num<T: std::fmt::Display>(v: &Option<T>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(v) => format!("\"{}\"", esc(v)),
        None => "null".to_string(),
    }
}

/// A structured failure, preserving the originating kernel name and
/// cycle counts when the root cause was a simulated-GPU abort.
#[derive(Clone, Debug)]
pub struct ErrorReport {
    /// Stable kind tag (see [`EclError::kind`]) or `"input"` for
    /// graph-loading failures.
    pub kind: String,
    /// Human-readable message.
    pub message: String,
    /// Originating kernel, when the failure chain roots in a kernel.
    pub kernel: Option<String>,
    /// Cycles spent when a watchdog fired.
    pub spent_cycles: Option<u64>,
    /// The watchdog budget that was exceeded.
    pub budget_cycles: Option<u64>,
}

impl ErrorReport {
    /// Builds a report from the structured error chain.
    pub fn from_ecl(e: &EclError) -> ErrorReport {
        let (spent, budget) = match e.watchdog_cycles() {
            Some((s, b)) => (Some(s), Some(b)),
            None => (None, None),
        };
        ErrorReport {
            kind: e.kind().to_string(),
            message: e.to_string(),
            kernel: e.kernel_name().map(str::to_string),
            spent_cycles: spent,
            budget_cycles: budget,
        }
    }

    /// A graph-input failure (file unreadable, bad spec).
    pub fn input(message: String) -> ErrorReport {
        ErrorReport {
            kind: "input".to_string(),
            message,
            kernel: None,
            spent_cycles: None,
            budget_cycles: None,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"message\":\"{}\",\"kernel\":{},\
             \"spent_cycles\":{},\"budget_cycles\":{}}}",
            esc(&self.kind),
            esc(&self.message),
            opt_str(&self.kernel),
            opt_num(&self.spent_cycles),
            opt_num(&self.budget_cycles)
        )
    }
}

/// One ladder attempt inside one retry round of one job.
#[derive(Clone, Debug)]
pub struct AttemptReport {
    /// Retry round (0 = first try).
    pub round: u32,
    /// Backend that ran.
    pub backend: String,
    /// 1-based attempt number within that backend's ladder stage.
    pub attempt: usize,
    /// Whether the attempt's labeling was certified.
    pub certified: bool,
    /// The structured failure, when not certified.
    pub error: Option<ErrorReport>,
}

impl AttemptReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"round\":{},\"backend\":\"{}\",\"attempt\":{},\"certified\":{},\"error\":{}}}",
            self.round,
            esc(&self.backend),
            self.attempt,
            self.certified,
            self.error.as_ref().map_or("null".into(), |e| e.to_json())
        )
    }
}

/// Terminal state of one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Completed (certified) in this run.
    Done,
    /// Recovered from the journal: completed by an earlier (killed) run.
    Resumed,
    /// All retries exhausted without a certified answer.
    Failed,
}

impl JobStatus {
    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Done => "done",
            JobStatus::Resumed => "resumed",
            JobStatus::Failed => "failed",
        }
    }
}

/// Everything that happened to one job.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Stable job id.
    pub id: u64,
    /// Job name from the jobs file.
    pub name: String,
    /// Terminal state.
    pub status: JobStatus,
    /// Backend whose answer was accepted, when done/resumed.
    pub backend: Option<String>,
    /// Certified component count, when done/resumed.
    pub components: Option<usize>,
    /// Job-level retry rounds consumed (0 = first try sufficed).
    pub retries: u32,
    /// Every ladder attempt made in this run (empty for resumed jobs).
    pub attempts: Vec<AttemptReport>,
    /// Terminal error for failed jobs.
    pub error: Option<ErrorReport>,
    /// Wall-clock milliseconds spent on the job in this run.
    pub time_ms: f64,
}

impl JobReport {
    fn to_json(&self) -> String {
        let attempts: Vec<String> = self.attempts.iter().map(|a| a.to_json()).collect();
        format!(
            "{{\"id\":{},\"name\":\"{}\",\"status\":\"{}\",\"backend\":{},\
             \"components\":{},\"retries\":{},\"time_ms\":{:.3},\"attempts\":[{}],\"error\":{}}}",
            self.id,
            esc(&self.name),
            self.status.name(),
            opt_str(&self.backend),
            opt_num(&self.components),
            self.retries,
            self.time_ms,
            attempts.join(","),
            self.error.as_ref().map_or("null".into(), |e| e.to_json())
        )
    }
}

/// Final health of one backend's circuit breaker.
#[derive(Clone, Debug)]
pub struct BreakerReport {
    /// Backend name.
    pub backend: String,
    /// Final state (`closed` / `open` / `half-open`).
    pub state: String,
    /// Times the breaker tripped.
    pub trips: u64,
    /// Total failures recorded against the backend.
    pub failures: u64,
    /// Total successes recorded for the backend.
    pub successes: u64,
}

impl BreakerReport {
    fn to_json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"state\":\"{}\",\"trips\":{},\
             \"failures\":{},\"successes\":{}}}",
            esc(&self.backend),
            esc(&self.state),
            self.trips,
            self.failures,
            self.successes
        )
    }
}

/// The whole batch: per-job outcomes, breaker health, and run totals.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Jobs in id order (done, resumed, and failed alike).
    pub jobs: Vec<JobReport>,
    /// Per-backend breaker outcomes.
    pub breakers: Vec<BreakerReport>,
    /// Jobs the batch was asked to run (jobs-file count).
    pub expected_jobs: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Bounded-queue capacity.
    pub queue_capacity: usize,
    /// Submissions rejected by admission control.
    pub queue_rejections: usize,
    /// True when the run was stopped by the kill switch before
    /// finishing (resume to complete it).
    pub aborted: bool,
    /// Wall-clock milliseconds for the whole batch.
    pub total_ms: f64,
}

impl BatchReport {
    /// Jobs certified in this run.
    pub fn done(&self) -> usize {
        self.count(JobStatus::Done)
    }

    /// Jobs recovered from the journal.
    pub fn resumed(&self) -> usize {
        self.count(JobStatus::Resumed)
    }

    /// Jobs that exhausted their retries.
    pub fn failed(&self) -> usize {
        self.count(JobStatus::Failed)
    }

    fn count(&self, s: JobStatus) -> usize {
        self.jobs.iter().filter(|j| j.status == s).count()
    }

    /// True when every expected job has a certified answer (fresh or
    /// resumed) — the "zero lost jobs" acceptance condition.
    pub fn is_complete(&self) -> bool {
        !self.aborted && self.failed() == 0 && self.done() + self.resumed() == self.expected_jobs
    }

    /// Total job-level retry rounds consumed across the batch.
    pub fn total_retries(&self) -> u64 {
        self.jobs.iter().map(|j| j.retries as u64).sum()
    }

    /// Total breaker trips across all backends.
    pub fn total_trips(&self) -> u64 {
        self.breakers.iter().map(|b| b.trips).sum()
    }

    /// Serializes the report as a JSON document.
    pub fn to_json(&self) -> String {
        let jobs: Vec<String> = self
            .jobs
            .iter()
            .map(|j| format!("    {}", j.to_json()))
            .collect();
        let breakers: Vec<String> = self
            .breakers
            .iter()
            .map(|b| format!("    {}", b.to_json()))
            .collect();
        format!(
            "{{\n  \"expected_jobs\": {},\n  \"done\": {},\n  \"resumed\": {},\n  \
             \"failed\": {},\n  \"complete\": {},\n  \"aborted\": {},\n  \
             \"workers\": {},\n  \"queue_capacity\": {},\n  \"queue_rejections\": {},\n  \
             \"total_retries\": {},\n  \"breaker_trips\": {},\n  \"total_ms\": {:.3},\n  \
             \"jobs\": [\n{}\n  ],\n  \"breakers\": [\n{}\n  ]\n}}\n",
            self.expected_jobs,
            self.done(),
            self.resumed(),
            self.failed(),
            self.is_complete(),
            self.aborted,
            self.workers,
            self.queue_capacity,
            self.queue_rejections,
            self.total_retries(),
            self.total_trips(),
            self.total_ms,
            jobs.join(",\n"),
            breakers.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_gpu_sim::SimError;

    fn job(id: u64, status: JobStatus) -> JobReport {
        JobReport {
            id,
            name: format!("job{id}"),
            status,
            backend: Some("gpu-sim".into()),
            components: Some(3),
            retries: 1,
            attempts: vec![AttemptReport {
                round: 0,
                backend: "gpu-sim".into(),
                attempt: 1,
                certified: status != JobStatus::Failed,
                error: None,
            }],
            error: None,
            time_ms: 1.25,
        }
    }

    fn report(jobs: Vec<JobReport>, expected: usize) -> BatchReport {
        BatchReport {
            jobs,
            breakers: vec![BreakerReport {
                backend: "gpu-sim".into(),
                state: "open".into(),
                trips: 2,
                failures: 6,
                successes: 1,
            }],
            expected_jobs: expected,
            workers: 2,
            queue_capacity: 8,
            queue_rejections: 0,
            aborted: false,
            total_ms: 10.0,
        }
    }

    #[test]
    fn completeness_requires_every_job() {
        let r = report(vec![job(0, JobStatus::Done), job(1, JobStatus::Resumed)], 2);
        assert!(r.is_complete());
        let r = report(vec![job(0, JobStatus::Done)], 2);
        assert!(!r.is_complete(), "missing job");
        let r = report(vec![job(0, JobStatus::Done), job(1, JobStatus::Failed)], 2);
        assert!(!r.is_complete(), "failed job");
        let mut r = report(vec![job(0, JobStatus::Done), job(1, JobStatus::Done)], 2);
        r.aborted = true;
        assert!(!r.is_complete(), "aborted run");
    }

    #[test]
    fn json_shape_is_greppable() {
        let r = report(vec![job(0, JobStatus::Done)], 1);
        let j = r.to_json();
        assert!(j.contains("\"complete\": true"));
        assert!(j.contains("\"breaker_trips\": 2"));
        assert!(j.contains("\"status\":\"done\""));
        assert!(j.contains("\"state\":\"open\""));
    }

    #[test]
    fn error_report_keeps_kernel_and_cycles() {
        let e = EclError::Exhausted {
            attempts: 2,
            last: Some(Box::new(EclError::Sim(SimError::Watchdog {
                kernel: "compute1".into(),
                budget: 10,
                spent: 22,
            }))),
        };
        let er = ErrorReport::from_ecl(&e);
        assert_eq!(er.kernel.as_deref(), Some("compute1"));
        assert_eq!(er.spent_cycles, Some(22));
        assert_eq!(er.budget_cycles, Some(10));
        let j = er.to_json();
        assert!(j.contains("\"kernel\":\"compute1\""));
        assert!(j.contains("\"spent_cycles\":22"));
    }
}
