//! Result type shared by every CC implementation in the workspace.

use ecl_graph::{stats, CsrGraph, Vertex};

/// The outcome of a connected-components run: one label per vertex.
///
/// Labels are representative vertex IDs; with ECL-CC's smaller-ID-wins
/// hooking the label of every component is its minimum vertex ID.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CcResult {
    /// `labels[v]` = component representative of vertex `v`.
    pub labels: Vec<Vertex>,
}

impl CcResult {
    /// Wraps a label array.
    pub fn new(labels: Vec<Vertex>) -> Self {
        CcResult { labels }
    }

    /// Number of distinct components.
    pub fn num_components(&self) -> usize {
        let mut sorted: Vec<Vertex> = self.labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len()
    }

    /// Verifies this labeling against the BFS ground truth for `g`
    /// (partition equality — representative choice is free), mirroring the
    /// paper's §4 verification step.
    pub fn verify(&self, g: &CsrGraph) -> Result<(), String> {
        stats::verify_labels(g, &self.labels)
    }

    /// True if vertices `u` and `v` are in the same component.
    pub fn same_component(&self, u: Vertex, v: Vertex) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }

    /// Sizes of all components, descending.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut counts: std::collections::HashMap<Vertex, usize> = std::collections::HashMap::new();
        for &l in &self.labels {
            *counts.entry(l).or_insert(0) += 1;
        }
        let mut sizes: Vec<usize> = counts.into_values().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecl_graph::generate;

    #[test]
    fn num_components_counts_distinct_labels() {
        let r = CcResult::new(vec![0, 0, 2, 2, 4]);
        assert_eq!(r.num_components(), 3);
    }

    #[test]
    fn same_component_checks_labels() {
        let r = CcResult::new(vec![0, 0, 2]);
        assert!(r.same_component(0, 1));
        assert!(!r.same_component(1, 2));
    }

    #[test]
    fn verify_against_reference() {
        let g = generate::disjoint_cliques(3, 4);
        let good = CcResult::new(stats::reference_labels(&g));
        good.verify(&g).unwrap();
        let bad = CcResult::new(vec![0; 12]);
        assert!(bad.verify(&g).is_err());
    }

    #[test]
    fn component_sizes_sorted() {
        let r = CcResult::new(vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(r.component_sizes(), vec![3, 2, 1]);
    }

    #[test]
    fn empty_result() {
        let r = CcResult::new(vec![]);
        assert_eq!(r.num_components(), 0);
        assert_eq!(r.component_sizes(), Vec::<usize>::new());
    }
}
