//! ECL-CC_OMP — the paper's parallel CPU port: the same three phases as
//! the GPU code, each an OpenMP-style `parallel for schedule(guided)` over
//! the vertices, with the lock-free atomic parent array from
//! `ecl-unionfind` (gcc's `__sync_val_compare_and_swap` becomes
//! `AtomicU32::compare_exchange`). No worklist, a single computation
//! function (§3).

use crate::config::{EclConfig, FiniKind};
use crate::result::CcResult;
use crate::serial::init_label;
use ecl_graph::{CsrGraph, Vertex};
use ecl_parallel::{parallel_for, Schedule};
use ecl_unionfind::concurrent::JumpKind;
use ecl_unionfind::AtomicParents;
use std::sync::atomic::Ordering;

/// Runs parallel ECL-CC with `threads` workers under `cfg`.
pub fn run(g: &CsrGraph, threads: usize, cfg: &EclConfig) -> CcResult {
    run_with_schedule(g, threads, Schedule::GUIDED, cfg)
}

/// Same as [`run`] but with an explicit loop schedule (used by the
/// scheduling ablation bench; the paper uses guided).
pub fn run_with_schedule(
    g: &CsrGraph,
    threads: usize,
    schedule: Schedule,
    cfg: &EclConfig,
) -> CcResult {
    let n = g.num_vertices();

    // --- Phase 1: initialization -------------------------------------
    // Allocate the atomic parent array once and write the initial labels
    // straight into it from the workers — no scratch `Vec<AtomicU32>`, no
    // unwrap-and-rewrap copy. The identity values `new` pre-fills are
    // immediately overwritten, which is exactly the GPU init kernel's
    // behaviour.
    let parents = AtomicParents::new(n);
    {
        let parents = &parents;
        parallel_for(threads, n, schedule, move |v| {
            parents.set_parent(v as Vertex, init_label(g, v as Vertex, cfg.init));
        });
    }

    // --- Phase 2: computation -----------------------------------------
    {
        let parents = &parents;
        let jump = cfg.jump;
        parallel_for(threads, n, schedule, move |v| {
            let v = v as Vertex;
            let mut v_rep = parents.find_with(v, jump);
            for &u in g.neighbors(v) {
                if v > u {
                    let u_rep = parents.find_with(u, jump);
                    v_rep = parents.hook(v_rep, u_rep);
                }
            }
        });
    }

    // --- Phase 3: finalization ----------------------------------------
    {
        let parents = &parents;
        let fini = cfg.fini;
        parallel_for(threads, n, schedule, move |v| {
            let v = v as Vertex;
            match fini {
                FiniKind::Single => {
                    // Walk once, then one store; hooking is over so the
                    // root is final and the plain store cannot be lost.
                    let root = parents.find_naive(v);
                    parents.set_parent(v, root);
                }
                FiniKind::Intermediate => {
                    // Halve while walking, then pin v to the root.
                    let root = parents.find_repres(v);
                    parents.set_parent(v, root);
                }
                FiniKind::Multiple => {
                    let _ = parents.find_with(v, JumpKind::Multiple);
                }
            }
        });
    }

    CcResult::new(parents.snapshot())
}

/// Per-run counters for the ablation benches: number of hooks attempted
/// and CAS retries observed (contention proxy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelRunStats {
    /// Edges processed (one direction only).
    pub edges_processed: u64,
    /// Hook invocations where the representatives differed.
    pub hooks: u64,
}

/// Instrumented variant of [`run`] that also reports work counters.
pub fn run_instrumented(
    g: &CsrGraph,
    threads: usize,
    cfg: &EclConfig,
) -> (CcResult, ParallelRunStats) {
    use std::sync::atomic::AtomicU64;
    let n = g.num_vertices();
    let parents = AtomicParents::from_vec(
        (0..n as Vertex)
            .map(|v| init_label(g, v, cfg.init))
            .collect(),
    );
    let edges = AtomicU64::new(0);
    let hooks = AtomicU64::new(0);
    {
        let parents = &parents;
        let edges = &edges;
        let hooks = &hooks;
        let jump = cfg.jump;
        parallel_for(threads, n, Schedule::GUIDED, move |v| {
            let v = v as Vertex;
            let mut v_rep = parents.find_with(v, jump);
            let mut local_edges = 0;
            let mut local_hooks = 0;
            for &u in g.neighbors(v) {
                if v > u {
                    local_edges += 1;
                    let u_rep = parents.find_with(u, jump);
                    if u_rep != v_rep {
                        local_hooks += 1;
                    }
                    v_rep = parents.hook(v_rep, u_rep);
                }
            }
            edges.fetch_add(local_edges, Ordering::Relaxed);
            hooks.fetch_add(local_hooks, Ordering::Relaxed);
        });
    }
    {
        let parents = &parents;
        parallel_for(threads, n, Schedule::GUIDED, move |v| {
            let _ = parents.find_with(v as Vertex, JumpKind::Multiple);
        });
    }
    (
        CcResult::new(parents.snapshot()),
        ParallelRunStats {
            edges_processed: edges.load(Ordering::Relaxed),
            hooks: hooks.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EclConfig, InitKind};
    use ecl_graph::generate;

    fn check(g: &CsrGraph, threads: usize, cfg: &EclConfig) {
        let r = run(g, threads, cfg);
        r.verify(g)
            .unwrap_or_else(|e| panic!("{cfg:?} x{threads}: {e}"));
        for (v, &l) in r.labels.iter().enumerate() {
            assert_eq!(r.labels[l as usize], l, "vertex {v} label not a root");
        }
    }

    #[test]
    fn matches_reference_on_varied_graphs() {
        let cfg = EclConfig::default();
        for g in [
            generate::path(1000),
            generate::star(1000),
            generate::disjoint_cliques(10, 20),
            generate::gnm_random(2000, 6000, 1),
            generate::rmat(11, 8, generate::RmatParams::GALOIS, 2),
            generate::road_network(40, 40, 0.3, 1.0, 3),
        ] {
            check(&g, 4, &cfg);
        }
    }

    #[test]
    fn single_thread_degenerates_gracefully() {
        let g = generate::gnm_random(500, 1200, 9);
        check(&g, 1, &EclConfig::default());
    }

    #[test]
    fn many_threads_small_graph() {
        let g = generate::cycle(10);
        check(&g, 16, &EclConfig::default());
    }

    #[test]
    fn all_variants_verify() {
        let g = generate::gnm_random(800, 2000, 11);
        for init in [
            InitKind::VertexId,
            InitKind::MinNeighbor,
            InitKind::FirstSmaller,
        ] {
            check(&g, 4, &EclConfig::with_init(init));
        }
        for jump in [
            JumpKind::Multiple,
            JumpKind::Single,
            JumpKind::None,
            JumpKind::Intermediate,
        ] {
            check(&g, 4, &EclConfig::with_jump(jump));
        }
        for fini in [FiniKind::Intermediate, FiniKind::Multiple, FiniKind::Single] {
            check(&g, 4, &EclConfig::with_fini(fini));
        }
    }

    #[test]
    fn schedules_all_verify() {
        let g = generate::rmat(10, 8, generate::RmatParams::GALOIS, 5);
        for s in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 32 },
            Schedule::Guided { min_chunk: 16 },
        ] {
            let r = run_with_schedule(&g, 4, s, &EclConfig::default());
            r.verify(&g).unwrap();
        }
    }

    #[test]
    fn repeated_runs_same_partition() {
        // Racy internals, deterministic outcome: the partition (and with
        // min-wins hooking even the labels) must be identical across runs.
        let g = generate::kronecker(10, 8, 6);
        let a = run(&g, 8, &EclConfig::default());
        for _ in 0..5 {
            let b = run(&g, 8, &EclConfig::default());
            assert_eq!(a.labels, b.labels);
        }
    }

    #[test]
    fn instrumented_counts_each_edge_once() {
        let g = generate::gnm_random(300, 800, 13);
        let (r, stats) = run_instrumented(&g, 4, &EclConfig::default());
        r.verify(&g).unwrap();
        assert_eq!(stats.edges_processed as usize, g.num_edges());
        // Hooks happen on a subset of edges (Init3 pre-merges chains).
        assert!(stats.hooks <= stats.edges_processed);
        assert!(stats.hooks > 0);
    }
}
