//! Structured errors for the ECL-CC execution pipeline.
//!
//! Hot paths used to panic on anything unexpected (oversized graphs,
//! simulator aborts, wrong labelings). Panics are fine for internal
//! invariant violations, but everything a *caller* can meaningfully react
//! to — by retrying, degrading to another backend, or reporting — is a
//! variant here.

use ecl_gpu_sim::SimError;
use ecl_verify::VerifyError;
use std::fmt;

/// An execution-pipeline failure a caller can react to.
#[derive(Clone, Debug)]
pub enum EclError {
    /// The graph does not fit the simulator's 32-bit device indices.
    GraphTooLarge {
        /// Vertex count of the offending graph.
        vertices: usize,
        /// Directed edge count of the offending graph.
        directed_edges: usize,
    },
    /// The simulated GPU aborted the run (watchdog trip or memory fault).
    Sim(SimError),
    /// A backend produced a labeling that failed certification.
    Verification(VerifyError),
    /// A backend stage panicked; the panic was contained at the stage
    /// boundary.
    StagePanicked {
        /// Which stage panicked (e.g. `"gpu-sim"`).
        stage: String,
        /// The panic message, if it was a string.
        detail: String,
    },
    /// Every rung of the fallback ladder failed.
    Exhausted {
        /// Total attempts made across all stages.
        attempts: usize,
        /// Failure reason of the last attempt.
        last: String,
    },
}

impl fmt::Display for EclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EclError::GraphTooLarge {
                vertices,
                directed_edges,
            } => write!(
                f,
                "graph too large for 32-bit device indices \
                 ({vertices} vertices, {directed_edges} directed edges)"
            ),
            EclError::Sim(e) => write!(f, "simulated GPU fault: {e}"),
            EclError::Verification(e) => write!(f, "result failed certification: {e}"),
            EclError::StagePanicked { stage, detail } => {
                write!(f, "stage `{stage}` panicked: {detail}")
            }
            EclError::Exhausted { attempts, last } => write!(
                f,
                "all fallback stages failed after {attempts} attempts (last: {last})"
            ),
        }
    }
}

impl std::error::Error for EclError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EclError::Sim(e) => Some(e),
            EclError::Verification(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for EclError {
    fn from(e: SimError) -> Self {
        EclError::Sim(e)
    }
}

impl From<VerifyError> for EclError {
    fn from(e: VerifyError) -> Self {
        EclError::Verification(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = EclError::GraphTooLarge {
            vertices: 7,
            directed_edges: 9,
        };
        assert!(e.to_string().contains("7 vertices"));
        let e = EclError::from(SimError::Watchdog {
            kernel: "compute1".into(),
            budget: 10,
            spent: 11,
        });
        assert!(e.to_string().contains("compute1"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
